"""Thread-pool execution backend: real concurrency for NumPy kernels.

NumPy's compiled inner loops (BLAS calls, ufunc loops over large
arrays) release the GIL, so kernels dispatched to a
``ThreadPoolExecutor`` genuinely overlap on multicore hosts — this is
the cheapest way to turn the simulated runtime into a real one: shared
memory means in-place operand writes are immediately visible, nothing
needs pickling, and all measurements share one ``perf_counter_ns``
clock domain (so span-overlap assertions are meaningful).

The engine preserves data-hazard order by joining a predecessor's
kernel future before dispatching a dependent kernel; *independent*
kernels run concurrently.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.errors import ExecBackendError
from repro.exec.base import ExecFuture, ExecutionBackend
from repro.exec.timing import timed_call

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task


class ThreadPoolBackend(ExecutionBackend):
    """Kernels on a ``ThreadPoolExecutor`` (shared memory, GIL-releasing).

    Parameters
    ----------
    max_workers:
        Pool width; defaults to ``ThreadPoolExecutor``'s CPU-derived
        default.  ``max_workers=1`` serializes kernels (useful to test
        queueing and cancellation deterministically).
    """

    name = "thread"
    inline = False

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ExecBackendError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-exec"
        )
        self._closed = False
        self._lock = threading.Lock()

    def _check_open(self) -> None:
        if self._closed:
            raise ExecBackendError("thread backend has been closed")

    def dispatch_task(self, task: "Task") -> ExecFuture:
        variant = task.chosen_variant
        assert variant is not None
        arrays = tuple(op.handle.array for op in task.operands)
        return self.submit_kernel(
            variant.fn,
            task.ctx,
            arrays,
            task.scalar_args,
            codelet=task.codelet.name,
            variant=variant.name,
            task_id=task.task_id,
        )

    def submit_kernel(
        self,
        fn: Callable,
        ctx: Mapping[str, object],
        arrays: Sequence,
        scalar_args: tuple = (),
        writes: Sequence[int] = (),
        *,
        codelet: str = "",
        variant: str = "",
        task_id: int = -1,
    ) -> ExecFuture:
        # shared memory: ``writes`` is irrelevant, mutations are visible
        self._check_open()
        inner = self._pool.submit(
            timed_call,
            fn,
            ctx,
            arrays,
            scalar_args,
            codelet=codelet,
            variant=variant,
            task_id=task_id,
            backend=self.name,
        )
        return ExecFuture(inner)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
