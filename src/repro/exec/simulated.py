"""The default backend: inline kernel execution, byte-identical.

``SimulatedBackend`` is the executable name for what the engine has
always done — run each kernel synchronously on the submitting thread at
schedule time, in dependency order.  With it (or with no backend at
all) the engine takes its original code path: no futures, no hazard
tracking, no measurements, and same-seed runs produce byte-identical
traces to every earlier release.

It still implements the full direct surface (``submit_kernel`` /
``measure``), returning already-resolved futures, so calibration code
written against :class:`~repro.exec.base.ExecutionBackend` runs
unchanged on all three backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.exec.base import ExecFuture, ExecutionBackend, _run_inline
from repro.exec.timing import timed_call

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task


class SimulatedBackend(ExecutionBackend):
    """Inline execution on the submitting thread (the default)."""

    name = "simulated"
    inline = True

    def dispatch_task(self, task: "Task") -> ExecFuture:
        # the engine never calls this for inline backends (it keeps the
        # original run_kernel path); provided for API completeness
        variant = task.chosen_variant
        assert variant is not None
        arrays = tuple(op.handle.array for op in task.operands)
        return _run_inline(
            lambda: timed_call(
                variant.fn,
                task.ctx,
                arrays,
                task.scalar_args,
                codelet=task.codelet.name,
                variant=variant.name,
                task_id=task.task_id,
                backend=self.name,
            )
        )

    def submit_kernel(
        self,
        fn: Callable,
        ctx: Mapping[str, object],
        arrays: Sequence,
        scalar_args: tuple = (),
        writes: Sequence[int] = (),
        *,
        codelet: str = "",
        variant: str = "",
        task_id: int = -1,
    ) -> ExecFuture:
        return _run_inline(
            lambda: timed_call(
                fn,
                ctx,
                arrays,
                scalar_args,
                codelet=codelet,
                variant=variant,
                task_id=task_id,
                backend=self.name,
            )
        )
