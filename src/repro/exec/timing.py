"""Wall-clock kernel timing: the measurement side of :mod:`repro.exec`.

Every kernel invocation a real backend runs is bracketed by
``time.perf_counter_ns`` *inside the worker that executes it* (pool
thread or worker process), so the span covers exactly the kernel — no
queueing, no future plumbing.  :class:`Measurement` carries the span in
nanoseconds plus enough identity (codelet, variant, backend, worker) to
feed the performance-model store's ``measured`` provenance and to let
tests assert that independent kernels genuinely overlapped.

Spans from one backend share a clock domain (``perf_counter_ns`` of the
host process for threads, of each worker process for process pools);
cross-process *span comparison* is therefore meaningless while
*durations* are always valid.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Measurement:
    """One wall-clock-timed kernel execution."""

    #: codelet the kernel belongs to ('' for bare submit_kernel calls)
    codelet: str
    #: variant name ('' for bare submit_kernel calls)
    variant: str
    #: engine task id (-1 for bare submit_kernel calls)
    task_id: int
    #: wall-clock seconds the kernel ran
    wall_s: float
    #: ``perf_counter_ns`` at kernel entry, in the executing worker
    start_ns: int
    #: ``perf_counter_ns`` at kernel exit, in the executing worker
    end_ns: int
    #: backend that ran the kernel ("simulated", "thread", "process")
    backend: str
    #: executing worker (thread name or ``pid:<n>``)
    worker: str = ""

    def overlaps(self, other: "Measurement") -> bool:
        """Whether two spans overlap (same clock domain only: spans of
        one thread backend, or of one worker process)."""
        return self.start_ns < other.end_ns and other.start_ns < self.end_ns

    def to_dict(self) -> dict:
        return {
            "codelet": self.codelet,
            "variant": self.variant,
            "task_id": self.task_id,
            "wall_s": self.wall_s,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "backend": self.backend,
            "worker": self.worker,
        }


def timed_call(
    fn,
    ctx,
    arrays,
    scalar_args=(),
    *,
    codelet: str = "",
    variant: str = "",
    task_id: int = -1,
    backend: str = "",
    worker: str | None = None,
) -> Measurement:
    """Run ``fn(ctx, *arrays, *scalar_args)`` bracketed by
    ``perf_counter_ns``; return the :class:`Measurement`.

    Runs in whichever worker calls it — this is the function backends
    ship to their pools, so the timestamps are taken where the kernel
    executes.
    """
    if worker is None:
        worker = threading.current_thread().name
    start_ns = time.perf_counter_ns()
    fn(ctx, *arrays, *scalar_args)
    end_ns = time.perf_counter_ns()
    return Measurement(
        codelet=codelet,
        variant=variant,
        task_id=task_id,
        wall_s=(end_ns - start_ns) * 1e-9,
        start_ns=start_ns,
        end_ns=end_ns,
        backend=backend,
        worker=worker,
    )
