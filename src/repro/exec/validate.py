"""Registration-time picklability validation for process backends.

A kernel function crosses the process boundary by *reference*: pickle
ships ``module:qualname`` and the worker re-imports it.  Lambdas,
closures, locally-defined functions and the composer's generated
backend-wrapper closures all fail that — and with no up-front check the
failure surfaces as an opaque ``PicklingError`` in the middle of a run.
This module performs the check when the codelet meets the backend
(:meth:`~repro.exec.process.ProcessPoolBackend.prepare_codelet`), and
raises :class:`~repro.errors.VariantNotPicklableError` naming the
codelet and variant.
"""

from __future__ import annotations

import importlib
import pickle
from typing import TYPE_CHECKING

from repro.errors import VariantNotPicklableError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.codelet import Codelet, ImplVariant


def picklability_problem(fn) -> str | None:
    """Why ``fn`` cannot be shipped to a worker process (None if it can).

    Checks, in order of diagnosability: the function is a module-level
    name (importable as ``module:qualname`` and resolving back to the
    same object), and it survives a pickle round-trip.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        return f"{fn!r} has no module/qualname"
    if "<lambda>" in qualname:
        return "kernel is a lambda"
    if "<locals>" in qualname:
        return f"kernel {qualname!r} is defined inside a function (a closure)"
    try:
        mod = importlib.import_module(module)
    except ImportError as exc:
        return f"kernel module {module!r} is not importable ({exc})"
    obj = mod
    try:
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except AttributeError:
        return f"{module}:{qualname} does not resolve in its module"
    if obj is not fn:
        return (
            f"{module}:{qualname} resolves to a different object "
            "(decorated or shadowed?)"
        )
    try:
        pickle.dumps(fn)
    except Exception as exc:  # pickle raises a zoo of types
        return f"pickling failed: {type(exc).__name__}: {exc}"
    return None


def validate_variant_picklable(codelet_name: str, variant: "ImplVariant") -> None:
    """Raise :class:`VariantNotPicklableError` unless the variant's
    kernel can run on a process pool."""
    reason = picklability_problem(variant.fn)
    if reason is not None:
        raise VariantNotPicklableError(codelet_name, variant.name, reason)


def validate_codelet_picklable(codelet: "Codelet") -> None:
    """Validate every variant of ``codelet`` (first failure raises)."""
    for variant in codelet.variants:
        validate_variant_picklable(codelet.name, variant)
