"""Call contexts and context-parameter declarations.

Composition is *context-aware*: the chosen implementation variant may
depend on the current call context — selected input parameter properties
(such as problem sizes) and currently available resources.  The subset of
properties that may influence callee selection is declared in the
interface descriptor; a *context instance* is a tuple of concrete values
for them (paper section III).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Mapping

from repro.errors import DescriptorError


@dataclass(frozen=True)
class ContextParamDecl:
    """Declaration of one context property in an interface descriptor.

    Attributes
    ----------
    name:
        Property name, usually matching a scalar function parameter
        (``nrows``, ``size`` ...) or a well-known resource (``ncores``).
    kind:
        ``"int"`` or ``"float"``.
    minimum / maximum:
        Optional declared range, used to generate training scenarios for
        static composition and to validate call contexts.
    """

    name: str
    kind: str = "int"
    minimum: float | None = None
    maximum: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float"):
            raise DescriptorError(
                f"context param {self.name!r}: kind must be int or float, "
                f"got {self.kind!r}"
            )
        if (
            self.minimum is not None
            and self.maximum is not None
            and self.minimum > self.maximum
        ):
            raise DescriptorError(
                f"context param {self.name!r}: min {self.minimum} > max {self.maximum}"
            )

    def validate(self, value) -> None:
        """Raise if ``value`` is outside the declared range."""
        if self.minimum is not None and value < self.minimum:
            raise DescriptorError(
                f"context param {self.name!r}: value {value} < min {self.minimum}"
            )
        if self.maximum is not None and value > self.maximum:
            raise DescriptorError(
                f"context param {self.name!r}: value {value} > max {self.maximum}"
            )

    def sample_points(self, n: int = 4) -> list[float]:
        """Representative values across the declared range (geometric
        spacing), used to build training scenarios off-line."""
        lo = self.minimum if self.minimum is not None else 1
        hi = self.maximum if self.maximum is not None else 1 << 20
        lo = max(float(lo), 1.0)
        hi = max(float(hi), lo)
        if n == 1 or hi == lo:
            return [lo]
        pts = [lo * (hi / lo) ** (i / (n - 1)) for i in range(n)]
        if self.kind == "int":
            return [float(int(round(p))) for p in pts]
        return pts


class ContextInstance(Mapping[str, object]):
    """An immutable tuple of concrete context-property values.

    Hashable, so dispatch tables can be keyed by context instances.
    """

    __slots__ = ("_items",)

    def __init__(self, values: Mapping[str, object]) -> None:
        self._items = tuple(sorted(values.items()))

    def __getitem__(self, key: str):
        for k, v in self._items:
            if k == key:
                return v
        raise KeyError(key)

    def __iter__(self):
        return (k for k, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other) -> bool:
        if isinstance(other, ContextInstance):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self._items)
        return f"ContextInstance({inner})"

    def as_dict(self) -> dict[str, object]:
        return dict(self._items)


def training_scenarios(
    decls: Iterable[ContextParamDecl], points_per_param: int = 4
) -> list[ContextInstance]:
    """Cartesian product of representative values for each declared
    context parameter — the "selected context scenarios" the tool
    evaluates prediction functions on for static composition."""
    decls = list(decls)
    if not decls:
        return [ContextInstance({})]
    grids = [d.sample_points(points_per_param) for d in decls]
    out = []
    for combo in product(*grids):
        values = {
            d.name: (int(v) if d.kind == "int" else float(v))
            for d, v in zip(decls, combo)
        }
        out.append(ContextInstance(values))
    return out
