"""Main-module descriptors.

The main module of a PEPPHER application is annotated by its own XML
descriptor, which states e.g. the target execution platform and the
overall optimization goal (paper section II), plus composition-time
switches like ``disableImpls`` and ``useHistoryModels`` (sections IV-A
and IV-G) and the architecture-dependent link command (section III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DescriptorError


@dataclass(frozen=True)
class MainDescriptor:
    """Application main-module metadata.

    Attributes
    ----------
    name:
        Application name.
    sources:
        Main-program source files.
    target_platform:
        Machine preset to build for (``"c2050"`` / ``"c1060"`` / ``"cpu"``).
    optimization_goal:
        Overall goal, e.g. ``"min_exec_time"``.
    components:
        Interfaces invoked from the main program (exploration roots).
    scheduler:
        Runtime scheduling policy (``dmda`` is PEPPHER's default
        dynamic composition mechanism).
    use_history_models:
        Enable performance-aware selection via runtime history models
        globally (section IV-G).
    disable_impls:
        Implementation variants excluded by user-guided static
        composition (section IV-A).
    link_cmd:
        Architecture-dependent link command for the final executable.
    """

    name: str
    sources: tuple[str, ...] = ("main.cpp",)
    target_platform: str = "c2050"
    optimization_goal: str = "min_exec_time"
    components: tuple[str, ...] = ()
    scheduler: str = "dmda"
    use_history_models: bool = True
    disable_impls: tuple[str, ...] = ()
    link_cmd: str = "g++ -o {app} {objects} -lpeppher -lstarpu"

    def __post_init__(self) -> None:
        if not self.name:
            raise DescriptorError("main descriptor needs an application name")
        if not self.components:
            raise DescriptorError(
                f"main descriptor {self.name!r}: declare at least one component"
            )
