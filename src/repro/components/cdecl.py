"""C/C++ function-declaration parsing for utility mode.

The composition tool can generate a basic skeleton of the XML and source
files required for writing PEPPHER components from a simple C/C++ method
declaration (paper section IV-I), e.g.::

    void spmv(float* values, int nnz, int nrows, int ncols, int first,
              size_t* colidxs, size_t* rowPtr, float* x, float* y);

The parser also detects template parameters and suggests values for the
data-access-pattern fields by analyzing ``const`` and pass-by-reference
semantics of the arguments: ``const T*`` / ``const T&`` are reads, other
pointers/references are (conservatively) read-write, and by-value scalars
are reads.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.components.interface import InterfaceDescriptor, ParamDecl
from repro.errors import CDeclError
from repro.runtime.access import AccessMode

_TEMPLATE_RE = re.compile(r"^\s*template\s*<([^>]*)>\s*", re.S)
_DECL_RE = re.compile(
    r"^\s*(?P<ret>[\w:<>\s\*&]+?)\s*"
    r"\b(?P<name>[A-Za-z_]\w*)\s*"
    r"\(\s*(?P<params>.*?)\s*\)\s*;?\s*$",
    re.S,
)
_PARAM_RE = re.compile(
    r"^(?P<type>.+?)\s*(?P<name>[A-Za-z_]\w*)\s*(?:\[\s*\])?$", re.S
)


@dataclass(frozen=True)
class ParsedParam:
    """One parsed formal parameter."""

    name: str
    ctype: str
    access: AccessMode
    is_operand: bool  # pointers/references carry operand data


@dataclass(frozen=True)
class ParsedDecl:
    """A parsed C/C++ function declaration."""

    name: str
    return_type: str
    params: tuple[ParsedParam, ...]
    type_params: tuple[str, ...] = ()


def _split_params(text: str) -> list[str]:
    """Split a parameter list on top-level commas (template-aware)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch in "<(":
            depth += 1
        elif ch in ">)":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_type_params(template_text: str) -> tuple[str, ...]:
    names = []
    for item in _split_params(template_text):
        m = re.match(r"^\s*(?:typename|class)\s+([A-Za-z_]\w*)\s*$", item)
        if not m:
            raise CDeclError(f"unsupported template parameter {item!r}")
        names.append(m.group(1))
    return tuple(names)


def _normalise(ctype: str) -> str:
    """Canonical spacing: ``const float *`` -> ``const float*``."""
    t = " ".join(ctype.split())
    t = t.replace(" *", "*").replace("* ", "*")
    t = t.replace(" &", "&").replace("& ", "&")
    return t


def _infer_access(ctype: str) -> tuple[AccessMode, bool]:
    """(suggested access mode, is-operand) from const/pointer semantics."""
    is_const = bool(re.search(r"\bconst\b", ctype))
    is_ptr = "*" in ctype
    is_ref = "&" in ctype
    if is_ptr or is_ref:
        return (AccessMode.R if is_const else AccessMode.RW), True
    return AccessMode.R, False


def parse_declaration(text: str) -> ParsedDecl:
    """Parse one C/C++ function declaration (optionally templated)."""
    body = text.strip()
    if not body:
        raise CDeclError("empty declaration")
    type_params: tuple[str, ...] = ()
    m = _TEMPLATE_RE.match(body)
    if m:
        type_params = _parse_type_params(m.group(1))
        body = body[m.end():]
    m = _DECL_RE.match(body)
    if not m:
        raise CDeclError(f"cannot parse declaration: {text.strip()!r}")
    params: list[ParsedParam] = []
    params_text = m.group("params").strip()
    if params_text and params_text != "void":
        for item in _split_params(params_text):
            pm = _PARAM_RE.match(item)
            if not pm:
                raise CDeclError(f"cannot parse parameter {item!r} in {text.strip()!r}")
            ctype = _normalise(pm.group("type"))
            access, is_operand = _infer_access(ctype)
            params.append(
                ParsedParam(
                    name=pm.group("name"),
                    ctype=ctype,
                    access=access,
                    is_operand=is_operand,
                )
            )
    return ParsedDecl(
        name=m.group("name"),
        return_type=_normalise(m.group("ret")),
        params=tuple(params),
        type_params=type_params,
    )


def parse_header(text: str) -> list[ParsedDecl]:
    """Parse every declaration in a header file's text.

    Comments and preprocessor lines are stripped; each remaining
    ``...;`` statement containing ``(`` is treated as a declaration.
    """
    no_block_comments = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    lines = []
    for line in no_block_comments.splitlines():
        line = re.sub(r"//.*$", "", line)
        if line.lstrip().startswith("#"):
            continue
        lines.append(line)
    joined = "\n".join(lines)
    decls = []
    for stmt in joined.split(";"):
        if "(" in stmt and ")" in stmt:
            decls.append(parse_declaration(stmt + ";"))
    if not decls:
        raise CDeclError("no function declarations found in header")
    return decls


def to_interface(decl: ParsedDecl) -> InterfaceDescriptor:
    """Lift a parsed declaration into an interface descriptor skeleton.

    Scalar integer parameters are suggested as context parameters by the
    utility-mode skeleton generator (they usually carry problem sizes).
    """
    from repro.components.context import ContextParamDecl

    params = tuple(
        ParamDecl(name=p.name, ctype=p.ctype, access=p.access) for p in decl.params
    )
    context_params = tuple(
        ContextParamDecl(name=p.name, kind="int")
        for p in decl.params
        if not p.is_operand and re.search(r"\b(int|size_t|long|unsigned)\b", p.ctype)
    )
    return InterfaceDescriptor(
        name=decl.name,
        params=params,
        return_type=decl.return_type,
        type_params=decl.type_params,
        context_params=context_params,
    )
