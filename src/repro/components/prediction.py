"""Performance prediction functions for static composition.

A component implementation may reference a (usually programmer-provided)
prediction function that is called with a context descriptor, and may use
performance data tables determined by micro-benchmarking on the target
platform (paper section II).  The composition tool evaluates these
off-line to build dispatch tables (static composition); the *runtime*
instead uses its own learned history models (:mod:`repro.runtime.perfmodel`).
"""

from __future__ import annotations

import importlib
import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import DescriptorError
from repro.hw.devices import DeviceSpec

#: prediction callable signature: (ctx, device) -> predicted seconds
PredictFn = Callable[[Mapping[str, object], DeviceSpec], float]


def resolve_ref(ref: str):
    """Resolve a ``"module:attribute"`` reference to a Python object.

    This is how XML descriptors point at kernel and prediction code —
    the analog of the paper's source-file + symbol deployment info.
    """
    if ":" not in ref:
        raise DescriptorError(
            f"bad code reference {ref!r}: expected 'module:attribute'"
        )
    module_name, _, attr_path = ref.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise DescriptorError(f"cannot import module {module_name!r}: {exc}") from exc
    obj = module
    for part in attr_path.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise DescriptorError(
                f"module {module_name!r} has no attribute {attr_path!r}"
            ) from None
    return obj


@dataclass
class MicrobenchTable:
    """Measured (size, seconds) samples with log-log interpolation.

    The composition tool can run micro-benchmarking code on the target
    platform and store the resulting table in the performance data
    repository; prediction then interpolates (and extrapolates at the
    ends with the nearest segment's slope).
    """

    samples: list[tuple[float, float]] = field(default_factory=list)

    def add(self, size: float, seconds: float) -> None:
        if size <= 0 or seconds <= 0:
            raise DescriptorError("microbench samples must be positive")
        self.samples.append((float(size), float(seconds)))
        self.samples.sort()

    def predict(self, size: float) -> float:
        if not self.samples:
            raise DescriptorError("microbench table is empty")
        if size <= 0:
            raise DescriptorError(f"size must be positive, got {size}")
        pts = self.samples
        if len(pts) == 1:
            # single sample: assume linear scaling in size
            s0, t0 = pts[0]
            return t0 * size / s0
        x = math.log(size)
        xs = [math.log(s) for s, _ in pts]
        ys = [math.log(t) for _, t in pts]
        # clamp to the outermost segments for extrapolation
        if x <= xs[0]:
            i = 0
        elif x >= xs[-1]:
            i = len(xs) - 2
        else:
            i = max(j for j in range(len(xs) - 1) if xs[j] <= x)
        x0, x1 = xs[i], xs[i + 1]
        y0, y1 = ys[i], ys[i + 1]
        if x1 == x0:
            return math.exp(y0)
        y = y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        return math.exp(y)


class PredictionFunction:
    """Uniform wrapper over callable or table-based predictions."""

    def __init__(
        self,
        fn: PredictFn | None = None,
        table: MicrobenchTable | None = None,
        size_key: str = "size",
        ref: str = "",
    ) -> None:
        if (fn is None) == (table is None):
            raise DescriptorError(
                "prediction needs exactly one of a callable or a table"
            )
        self._fn = fn
        self._table = table
        self._size_key = size_key
        self.ref = ref

    @classmethod
    def from_ref(cls, ref: str) -> "PredictionFunction":
        """Build from a ``module:attribute`` reference in a descriptor."""
        obj = resolve_ref(ref)
        if isinstance(obj, MicrobenchTable):
            return cls(table=obj, ref=ref)
        if callable(obj):
            return cls(fn=obj, ref=ref)
        raise DescriptorError(
            f"reference {ref!r} is neither callable nor a MicrobenchTable"
        )

    def predict(self, ctx: Mapping[str, object], device: DeviceSpec) -> float:
        """Predicted execution time in seconds for ``ctx`` on ``device``."""
        if self._fn is not None:
            t = float(self._fn(ctx, device))
        else:
            assert self._table is not None
            size = ctx.get(self._size_key)
            if size is None:
                raise DescriptorError(
                    f"context lacks size key {self._size_key!r} needed by "
                    "table-based prediction"
                )
            t = self._table.predict(float(size))
        if t < 0 or not math.isfinite(t):
            raise DescriptorError(f"prediction returned invalid time {t}")
        return t
