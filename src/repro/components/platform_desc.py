"""Platform descriptors.

The actual platform properties (programming model/language, target
architecture, resource name space) are defined separately in their own
XML documents [Sandrieser et al., HIPS 2011]; implementation descriptors
reference them by name.  Platform metadata is consulted by the
composition tool (to filter implementations that match the target
machine), and may also be looked up by the runtime or by component
developers (paper section II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DescriptorError
from repro.runtime.archs import Arch


@dataclass(frozen=True)
class PlatformDescriptor:
    """One execution platform (programming model + target architecture).

    Attributes
    ----------
    name:
        Platform name referenced by implementation descriptors
        (``"cpu_serial"``, ``"openmp"``, ``"cuda"``, ``"opencl"``).
    language:
        Source language / programming model of implementations.
    arch:
        The runtime backend architecture implementations map onto.
    compiler:
        Default compiler command for this platform (deployment info).
    properties:
        Free-form platform properties (the "target platform
        description's name space" resource requirements refer to).
    """

    name: str
    language: str
    arch: Arch
    compiler: str = "cc"
    properties: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise DescriptorError("platform descriptor needs a name")

    def property_map(self) -> dict[str, str]:
        return dict(self.properties)


def standard_platforms() -> list[PlatformDescriptor]:
    """The platform set used throughout the paper's evaluation."""
    return [
        PlatformDescriptor(
            name="cpu_serial",
            language="C++",
            arch=Arch.CPU,
            compiler="g++",
            properties=(("execution_units", "cpu_core"),),
        ),
        PlatformDescriptor(
            name="openmp",
            language="C++/OpenMP",
            arch=Arch.OPENMP,
            compiler="g++ -fopenmp",
            properties=(("execution_units", "cpu_gang"),),
        ),
        PlatformDescriptor(
            name="cuda",
            language="CUDA C",
            arch=Arch.CUDA,
            compiler="nvcc",
            properties=(("execution_units", "nvidia_gpu"),),
        ),
        PlatformDescriptor(
            name="opencl",
            language="OpenCL C",
            arch=Arch.OPENCL,
            compiler="g++ -lOpenCL",
            properties=(("execution_units", "gpu"),),
        ),
    ]
