"""Component implementation descriptors.

Each implementation variant provides its own component descriptor with
metadata: the provided and required interfaces, source files, deployment
information, a platform reference, resource requirements, an optional
prediction function reference, tunable parameters and selectability
constraints (paper section II).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from repro.components.constraints import Constraint, make_guard
from repro.components.prediction import PredictionFunction, resolve_ref
from repro.components.tunables import TunableParam, expand_tunables, mangle_tunable_suffix
from repro.errors import DescriptorError
from repro.runtime.archs import Arch
from repro.runtime.codelet import ImplVariant


@dataclass(frozen=True)
class ResourceRequirement:
    """Type and min/max amount of one resource required for execution,
    expressed in the target platform description's name space."""

    resource: str
    minimum: float = 0.0
    maximum: float | None = None

    def __post_init__(self) -> None:
        if self.maximum is not None and self.maximum < self.minimum:
            raise DescriptorError(
                f"resource {self.resource!r}: max {self.maximum} < min {self.minimum}"
            )


@dataclass(frozen=True)
class ImplementationDescriptor:
    """Metadata of one component implementation variant.

    Attributes
    ----------
    name:
        Variant name, unique within its interface.
    provides:
        Name of the PEPPHER interface this implementation realises.
    platform:
        Platform descriptor name (``cpu_serial`` / ``openmp`` / ``cuda``
        / ``opencl``), determining the backend architecture.
    requires:
        Interfaces whose functionality this implementation calls — the
        relation the composition tool processes bottom-up.
    sources:
        Source file names of the implementation (deployment info).
    compile_cmd:
        Compilation command/flags override (otherwise the platform's).
    kernel_ref:
        ``module:attribute`` reference to the executable kernel —
        signature ``fn(ctx, *arrays, *scalars)``.  In the paper this is
        the native function the backend-wrapper delegates to.
    cost_ref:
        ``module:attribute`` reference to the analytic cost model used
        by the simulated device (ground truth for the simulation).
    prediction_ref:
        Optional ``module:attribute`` reference to a programmer-provided
        prediction function (used for *static* composition decisions).
    resources:
        Resource requirements in the platform's name space.
    tunables:
        Tunable parameters; expansion generates one variant per value
        combination.
    constraints:
        Selectability constraints on the call context.
    """

    name: str
    provides: str
    platform: str
    requires: tuple[str, ...] = ()
    sources: tuple[str, ...] = ()
    compile_cmd: str = ""
    kernel_ref: str = ""
    cost_ref: str = ""
    prediction_ref: str = ""
    resources: tuple[ResourceRequirement, ...] = ()
    tunables: tuple[TunableParam, ...] = ()
    constraints: tuple[Constraint, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise DescriptorError("implementation descriptor needs a name")
        if not self.provides:
            raise DescriptorError(
                f"implementation {self.name!r}: missing provided interface"
            )
        if not self.platform:
            raise DescriptorError(f"implementation {self.name!r}: missing platform")

    # -- lowering to the runtime level -------------------------------------

    def arch_for(self, platforms: Mapping[str, "object"]) -> Arch:
        """Backend architecture via the referenced platform descriptor."""
        try:
            platform = platforms[self.platform]
        except KeyError:
            raise DescriptorError(
                f"implementation {self.name!r}: unknown platform {self.platform!r}"
            ) from None
        return platform.arch  # type: ignore[attr-defined]

    def prediction(self) -> PredictionFunction | None:
        """Resolve the prediction function reference, if any."""
        if not self.prediction_ref:
            return None
        return PredictionFunction.from_ref(self.prediction_ref)

    def to_variants(self, platforms: Mapping[str, "object"]) -> list[ImplVariant]:
        """Lower this descriptor to runtime implementation variants.

        Expands tunable parameters (one variant per value combination),
        resolves the kernel and cost-model references, and compiles the
        selectability constraints into a guard.
        """
        if not self.kernel_ref:
            raise DescriptorError(
                f"implementation {self.name!r}: no kernel reference to lower"
            )
        if not self.cost_ref:
            raise DescriptorError(
                f"implementation {self.name!r}: no cost-model reference to lower"
            )
        arch = self.arch_for(platforms)
        kernel = resolve_ref(self.kernel_ref)
        cost = resolve_ref(self.cost_ref)
        if not callable(kernel) or not callable(cost):
            raise DescriptorError(
                f"implementation {self.name!r}: kernel/cost refs must be callable"
            )
        guard = make_guard(list(self.constraints))
        variants = []
        for binding in expand_tunables(self.tunables):
            suffix = mangle_tunable_suffix(binding)
            variants.append(
                ImplVariant(
                    name=f"{self.name}{suffix}",
                    arch=arch,
                    fn=_bind_tunables(kernel, binding),
                    cost_model=_bind_tunables(cost, binding),
                    guard=guard,
                    tunables=binding,
                )
            )
        return variants

    def expand_generic(self, suffix: str) -> "ImplementationDescriptor":
        """Rename for a generic-interface instantiation (``sort`` ->
        ``sort_float``); kernel references stay shared, matching the
        paper's template expansion from a common source module."""
        return replace(
            self, name=f"{self.name}_{suffix}", provides=f"{self.provides}_{suffix}"
        )


def _bind_tunables(fn: Callable, binding: dict[str, object]) -> Callable:
    """Wrap a kernel/cost callable so the tunable binding rides in ctx."""
    if not binding:
        return fn

    def bound(ctx, *args, **kwargs):
        merged = dict(ctx)
        merged.update(binding)
        return fn(merged, *args, **kwargs)

    bound.__name__ = getattr(fn, "__name__", "bound")
    return bound
