"""The PEPPHER component model.

Interfaces, implementation variants, platforms and application main
modules — each described by a non-intrusive XML descriptor — plus the
repositories that organise them, call contexts, prediction functions,
tunable parameters, selectability constraints, and the C-declaration
parser that powers utility mode.
"""

from repro.components.cdecl import ParsedDecl, parse_declaration, parse_header, to_interface
from repro.components.constraints import (
    ExpressionConstraint,
    RangeConstraint,
    make_guard,
)
from repro.components.context import (
    ContextInstance,
    ContextParamDecl,
    training_scenarios,
)
from repro.components.implementation import (
    ImplementationDescriptor,
    ResourceRequirement,
)
from repro.components.interface import InterfaceDescriptor, ParamDecl
from repro.components.main_desc import MainDescriptor
from repro.components.platform_desc import PlatformDescriptor, standard_platforms
from repro.components.prediction import MicrobenchTable, PredictionFunction, resolve_ref
from repro.components.repository import Repository
from repro.components.tunables import TunableParam, expand_tunables
from repro.components.xml_io import (
    descriptor_to_string,
    load_descriptor,
    parse_descriptor_string,
    save_descriptor,
)

__all__ = [
    "ContextInstance",
    "ContextParamDecl",
    "ExpressionConstraint",
    "ImplementationDescriptor",
    "InterfaceDescriptor",
    "MainDescriptor",
    "MicrobenchTable",
    "ParamDecl",
    "ParsedDecl",
    "PlatformDescriptor",
    "PredictionFunction",
    "RangeConstraint",
    "Repository",
    "ResourceRequirement",
    "TunableParam",
    "descriptor_to_string",
    "expand_tunables",
    "load_descriptor",
    "make_guard",
    "parse_declaration",
    "parse_descriptor_string",
    "parse_header",
    "resolve_ref",
    "save_descriptor",
    "standard_platforms",
    "to_interface",
    "training_scenarios",
]
