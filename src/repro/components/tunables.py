"""Tunable parameters of component implementations.

A component implementation may expose tunable parameters such as buffer
or tile sizes.  Expansion for multiple values of tunable parameters
generates multiple implementation variants from a single source (paper
sections II and IV-B; completed here although the paper's prototype left
it as future work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterable

from repro.errors import DescriptorError


@dataclass(frozen=True)
class TunableParam:
    """One tunable parameter with its candidate values.

    Attributes
    ----------
    name:
        Parameter name, visible to the implementation's kernel and cost
        model through the call context / variant tunables.
    values:
        Explicit candidate values to expand over.
    default:
        Value used when the tool does not expand this tunable.
    """

    name: str
    values: tuple = ()
    default: object | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise DescriptorError("tunable parameter needs a name")
        if not self.values and self.default is None:
            raise DescriptorError(
                f"tunable {self.name!r}: needs candidate values or a default"
            )

    @property
    def effective_default(self):
        if self.default is not None:
            return self.default
        return self.values[0]


def expand_tunables(tunables: Iterable[TunableParam]) -> list[dict[str, object]]:
    """Cartesian product of candidate values over all tunables.

    Returns one binding dict per generated variant; a single dict of
    defaults when there is nothing to expand.
    """
    tunables = list(tunables)
    if not tunables:
        return [{}]
    axes: list[list[tuple[str, object]]] = []
    for t in tunables:
        vals = t.values or (t.effective_default,)
        axes.append([(t.name, v) for v in vals])
    return [dict(combo) for combo in product(*axes)]


def mangle_tunable_suffix(binding: dict[str, object]) -> str:
    """Stable name suffix for a tunable binding (``_tile16_buf4096``)."""
    if not binding:
        return ""
    parts = [f"{k}{v}" for k, v in sorted(binding.items())]
    return "_" + "_".join(parts)
