"""Selectability constraints for component implementations.

An implementation descriptor may declare constraints — e.g. parameter
ranges — restricting the call contexts in which the implementation is a
valid candidate (paper section II).  Constraints compile to guard
predicates evaluated on the call context, both by the composition tool
(static narrowing) and by the runtime (candidate filtering).
"""

from __future__ import annotations

import ast
import operator
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ConstraintError

#: operators permitted in constraint expressions
_CMP_OPS: dict[type, Callable] = {
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
}
_BIN_OPS: dict[type, Callable] = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
    ast.FloorDiv: operator.floordiv,
}


@dataclass(frozen=True)
class RangeConstraint:
    """``minimum <= ctx[param] <= maximum`` (either bound optional)."""

    param: str
    minimum: float | None = None
    maximum: float | None = None

    def __post_init__(self) -> None:
        if self.minimum is None and self.maximum is None:
            raise ConstraintError(
                f"range constraint on {self.param!r} needs at least one bound"
            )

    def evaluate(self, ctx: Mapping[str, object]) -> bool:
        if self.param not in ctx:
            return True  # property not supplied: cannot reject
        value = ctx[self.param]
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True

    def describe(self) -> str:
        parts = []
        if self.minimum is not None:
            parts.append(f"{self.minimum} <= {self.param}")
        if self.maximum is not None:
            parts.append(f"{self.param} <= {self.maximum}")
        return " and ".join(parts)


class ExpressionConstraint:
    """A restricted boolean expression over context properties.

    Descriptors may state constraints like ``"nnz / nrows <= 64"`` or
    ``"nrows >= 1024 and ncols >= 1024"``.  The expression is parsed with
    :mod:`ast` and evaluated against the context with a whitelist of
    operations — never ``eval`` on arbitrary text.
    """

    def __init__(self, expression: str) -> None:
        self.expression = expression
        try:
            tree = ast.parse(expression, mode="eval")
        except SyntaxError as exc:
            raise ConstraintError(
                f"invalid constraint expression {expression!r}: {exc}"
            ) from None
        self._tree = tree
        self._validate(tree.body)

    def _validate(self, node: ast.AST) -> None:
        if isinstance(node, ast.BoolOp) and isinstance(node.op, (ast.And, ast.Or)):
            for v in node.values:
                self._validate(v)
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.Not, ast.USub)):
            self._validate(node.operand)
        elif isinstance(node, ast.Compare):
            self._validate(node.left)
            for op in node.ops:
                if type(op) not in _CMP_OPS:
                    raise ConstraintError(
                        f"comparison {type(op).__name__} not allowed in constraints"
                    )
            for c in node.comparators:
                self._validate(c)
        elif isinstance(node, ast.BinOp):
            if type(node.op) not in _BIN_OPS:
                raise ConstraintError(
                    f"operator {type(node.op).__name__} not allowed in constraints"
                )
            self._validate(node.left)
            self._validate(node.right)
        elif isinstance(node, ast.Name):
            pass  # resolved from the context at evaluation time
        elif isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float, bool)
        ):
            pass
        else:
            raise ConstraintError(
                f"node {type(node).__name__} not allowed in constraint "
                f"{self.expression!r}"
            )

    def evaluate(self, ctx: Mapping[str, object]) -> bool:
        try:
            return bool(self._eval(self._tree.body, ctx))
        except KeyError:
            return True  # property not supplied: cannot reject

    def _eval(self, node: ast.AST, ctx: Mapping[str, object]):
        if isinstance(node, ast.BoolOp):
            results = (self._eval(v, ctx) for v in node.values)
            return all(results) if isinstance(node.op, ast.And) else any(results)
        if isinstance(node, ast.UnaryOp):
            val = self._eval(node.operand, ctx)
            return (not val) if isinstance(node.op, ast.Not) else -val
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, ctx)
            for op, comp in zip(node.ops, node.comparators):
                right = self._eval(comp, ctx)
                if not _CMP_OPS[type(op)](left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.BinOp):
            return _BIN_OPS[type(node.op)](
                self._eval(node.left, ctx), self._eval(node.right, ctx)
            )
        if isinstance(node, ast.Name):
            return ctx[node.id]  # KeyError propagates to evaluate()
        if isinstance(node, ast.Constant):
            return node.value
        raise ConstraintError(f"unexpected node {type(node).__name__}")

    def describe(self) -> str:
        return self.expression

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExpressionConstraint({self.expression!r})"


Constraint = RangeConstraint | ExpressionConstraint


def make_guard(constraints: list) -> Callable[[Mapping[str, object]], bool] | None:
    """Compile a constraint list into a single guard predicate."""
    if not constraints:
        return None

    def guard(ctx: Mapping[str, object]) -> bool:
        return all(c.evaluate(ctx) for c in constraints)

    return guard
