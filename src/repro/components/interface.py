"""PEPPHER interface descriptors.

A PEPPHER interface specifies the name, parameter types and access types
of a function to be implemented, which performance metrics prediction
functions must provide, and the context parameters considered for
composition.  Interfaces can be *generic* in static entities such as
element types; genericity is resolved statically by expansion, as with
C++ templates (paper section II).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.errors import DescriptorError
from repro.components.context import ContextParamDecl
from repro.runtime.access import AccessMode

_IDENT = re.compile(r"^[A-Za-z_]\w*$")


@dataclass(frozen=True)
class ParamDecl:
    """One formal parameter of an interface function.

    Attributes
    ----------
    name:
        Parameter name.
    ctype:
        C-style type text, e.g. ``"float*"``, ``"int"``, ``"size_t*"``,
        or a generic type such as ``"T*"`` for template interfaces.
    access:
        Declared access type (read / write / readwrite).  Only meaningful
        for operand (pointer/container) parameters; scalar value
        parameters are always read.
    """

    name: str
    ctype: str
    access: AccessMode = AccessMode.R

    def __post_init__(self) -> None:
        if not _IDENT.match(self.name):
            raise DescriptorError(f"invalid parameter name {self.name!r}")
        if not self.ctype.strip():
            raise DescriptorError(f"parameter {self.name!r}: empty type")

    @property
    def is_pointer(self) -> bool:
        return self.ctype.rstrip().endswith("*")

    @property
    def base_type(self) -> str:
        """Type without pointer/const decoration (``float*`` -> ``float``)."""
        t = self.ctype.replace("const", " ").replace("*", " ")
        return " ".join(t.split())

    def uses_type_param(self, type_params: tuple[str, ...]) -> bool:
        return self.base_type in type_params


@dataclass(frozen=True)
class InterfaceDescriptor:
    """A PEPPHER interface (functionality declaration).

    Attributes
    ----------
    name:
        Interface name, which is also the callable function name.
    params:
        Formal parameters in declaration order.
    return_type:
        C-style return type (PEPPHER composition points return ``void``;
        results travel through write-mode parameters).
    type_params:
        Template type parameters for generic interfaces (e.g. ``("T",)``).
    performance_metrics:
        Metrics that prediction functions of implementations must
        provide, e.g. ``("avg_exec_time",)``.
    context_params:
        Declared subset of call-context properties that may influence
        callee selection, with optional ranges.
    use_history_models:
        Per-component toggle for performance-aware selection (paper
        section IV-G: the boolean flag in the XML descriptor of the
        component interface).  When False, tasks of this component are
        placed greedily even under a performance-aware policy.
    """

    name: str
    params: tuple[ParamDecl, ...]
    return_type: str = "void"
    type_params: tuple[str, ...] = ()
    performance_metrics: tuple[str, ...] = ("avg_exec_time",)
    context_params: tuple[ContextParamDecl, ...] = ()
    use_history_models: bool = True

    def __post_init__(self) -> None:
        if not _IDENT.match(self.name):
            raise DescriptorError(f"invalid interface name {self.name!r}")
        seen: set[str] = set()
        for p in self.params:
            if p.name in seen:
                raise DescriptorError(
                    f"interface {self.name!r}: duplicate parameter {p.name!r}"
                )
            seen.add(p.name)
        for tp in self.type_params:
            if not _IDENT.match(tp):
                raise DescriptorError(
                    f"interface {self.name!r}: invalid type param {tp!r}"
                )

    @property
    def is_generic(self) -> bool:
        return bool(self.type_params)

    def param(self, name: str) -> ParamDecl:
        for p in self.params:
            if p.name == name:
                return p
        raise DescriptorError(f"interface {self.name!r} has no parameter {name!r}")

    def operand_params(self) -> list[ParamDecl]:
        """Parameters that carry operand data (pointers / containers)."""
        return [p for p in self.params if p.is_pointer]

    def scalar_params(self) -> list[ParamDecl]:
        """Plain value parameters (sizes, coefficients, ...)."""
        return [p for p in self.params if not p.is_pointer]

    def signature(self) -> str:
        """C-style signature text (used in generated headers)."""
        args = ", ".join(f"{p.ctype} {p.name}" for p in self.params)
        tpl = ""
        if self.type_params:
            tpl = "template <" + ", ".join(f"typename {t}" for t in self.type_params) + "> "
        return f"{tpl}{self.return_type} {self.name}({args})"

    def expand(self, bindings: dict[str, str]) -> "InterfaceDescriptor":
        """Bind generic type parameters to concrete types.

        Returns a new, non-generic interface with a mangled name
        (``sort<float>`` becomes ``sort_float``), mirroring C++ template
        instantiation.
        """
        missing = set(self.type_params) - set(bindings)
        if missing:
            raise DescriptorError(
                f"interface {self.name!r}: unbound type params {sorted(missing)}"
            )
        if not self.type_params:
            return self

        def subst(ctype: str) -> str:
            out = ctype
            for tp in self.type_params:
                out = re.sub(rf"\b{tp}\b", bindings[tp], out)
            return out

        new_params = tuple(replace(p, ctype=subst(p.ctype)) for p in self.params)
        suffix = "_".join(
            bindings[tp].replace(" ", "").replace("*", "p") for tp in self.type_params
        )
        return replace(
            self,
            name=f"{self.name}_{suffix}",
            params=new_params,
            return_type=subst(self.return_type),
            type_params=(),
        )
