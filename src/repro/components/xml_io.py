"""XML reading/writing for all PEPPHER descriptor kinds.

XML descriptors are chosen over code annotations as they are non-intrusive
to the actual source code (paper section II).  This module is the single
place that knows the schema; everything else works on the typed
descriptor dataclasses.

Root tags: ``peppherInterface``, ``peppherImplementation``,
``peppherPlatform``, ``peppherMain``.  :func:`load_descriptor` dispatches
on the root tag, which is how the repository scanner classifies files.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.components.constraints import ExpressionConstraint, RangeConstraint
from repro.components.context import ContextParamDecl
from repro.components.implementation import (
    ImplementationDescriptor,
    ResourceRequirement,
)
from repro.components.interface import InterfaceDescriptor, ParamDecl
from repro.components.main_desc import MainDescriptor
from repro.components.platform_desc import PlatformDescriptor
from repro.components.tunables import TunableParam
from repro.errors import DescriptorError
from repro.runtime.access import AccessMode
from repro.runtime.archs import Arch

_ACCESS_TEXT = {AccessMode.R: "read", AccessMode.W: "write", AccessMode.RW: "readwrite"}


def _parse_value(text: str):
    """Best-effort typed parse of an attribute value (int, float, str)."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _opt_float(elem: ET.Element, attr: str) -> float | None:
    raw = elem.get(attr)
    return None if raw is None else float(raw)


# ---------------------------------------------------------------------------
# interface descriptors
# ---------------------------------------------------------------------------

def interface_to_xml(desc: InterfaceDescriptor) -> ET.Element:
    root = ET.Element("peppherInterface", name=desc.name)
    if not desc.use_history_models:
        root.set("useHistoryModels", "false")
    fn = ET.SubElement(root, "function", returnType=desc.return_type)
    for p in desc.params:
        ET.SubElement(
            fn, "param", name=p.name, type=p.ctype, access=_ACCESS_TEXT[p.access]
        )
    if desc.type_params:
        tps = ET.SubElement(root, "typeParams")
        for tp in desc.type_params:
            ET.SubElement(tps, "typeParam", name=tp)
    metrics = ET.SubElement(root, "performanceMetrics")
    for m in desc.performance_metrics:
        ET.SubElement(metrics, "metric", name=m)
    if desc.context_params:
        cps = ET.SubElement(root, "contextParams")
        for cp in desc.context_params:
            attrs = {"name": cp.name, "kind": cp.kind}
            if cp.minimum is not None:
                attrs["min"] = repr(cp.minimum)
            if cp.maximum is not None:
                attrs["max"] = repr(cp.maximum)
            ET.SubElement(cps, "contextParam", **attrs)
    return root


def interface_from_xml(root: ET.Element) -> InterfaceDescriptor:
    if root.tag != "peppherInterface":
        raise DescriptorError(f"expected peppherInterface, got {root.tag!r}")
    name = root.get("name") or ""
    fn = root.find("function")
    if fn is None:
        raise DescriptorError(f"interface {name!r}: missing <function> element")
    params = tuple(
        ParamDecl(
            name=p.get("name") or "",
            ctype=p.get("type") or "",
            access=AccessMode.parse(p.get("access", "read")),
        )
        for p in fn.findall("param")
    )
    type_params = tuple(
        tp.get("name") or "" for tp in root.findall("typeParams/typeParam")
    )
    metrics = tuple(
        m.get("name") or "" for m in root.findall("performanceMetrics/metric")
    ) or ("avg_exec_time",)
    context_params = tuple(
        ContextParamDecl(
            name=cp.get("name") or "",
            kind=cp.get("kind", "int"),
            minimum=_opt_float(cp, "min"),
            maximum=_opt_float(cp, "max"),
        )
        for cp in root.findall("contextParams/contextParam")
    )
    return InterfaceDescriptor(
        name=name,
        params=params,
        return_type=fn.get("returnType", "void"),
        type_params=type_params,
        performance_metrics=metrics,
        context_params=context_params,
        use_history_models=(
            root.get("useHistoryModels", "true").lower() == "true"
        ),
    )


# ---------------------------------------------------------------------------
# implementation descriptors
# ---------------------------------------------------------------------------

def implementation_to_xml(desc: ImplementationDescriptor) -> ET.Element:
    root = ET.Element(
        "peppherImplementation",
        name=desc.name,
        provides=desc.provides,
        platform=desc.platform,
    )
    if desc.requires:
        req = ET.SubElement(root, "requires")
        for r in desc.requires:
            ET.SubElement(req, "interface", name=r)
    if desc.sources:
        srcs = ET.SubElement(root, "sources")
        for s in desc.sources:
            ET.SubElement(srcs, "source", file=s)
    if desc.compile_cmd:
        ET.SubElement(root, "deployment", compileCmd=desc.compile_cmd)
    if desc.kernel_ref:
        ET.SubElement(root, "kernel", ref=desc.kernel_ref)
    if desc.cost_ref:
        ET.SubElement(root, "costModel", ref=desc.cost_ref)
    if desc.prediction_ref:
        ET.SubElement(root, "prediction", ref=desc.prediction_ref)
    if desc.resources:
        res = ET.SubElement(root, "resources")
        for r in desc.resources:
            attrs = {"name": r.resource, "min": repr(r.minimum)}
            if r.maximum is not None:
                attrs["max"] = repr(r.maximum)
            ET.SubElement(res, "resource", **attrs)
    if desc.tunables:
        tuns = ET.SubElement(root, "tunables")
        for t in desc.tunables:
            attrs = {"name": t.name}
            if t.values:
                attrs["values"] = ",".join(str(v) for v in t.values)
            if t.default is not None:
                attrs["default"] = str(t.default)
            ET.SubElement(tuns, "tunable", **attrs)
    if desc.constraints:
        cons = ET.SubElement(root, "constraints")
        for c in desc.constraints:
            if isinstance(c, RangeConstraint):
                attrs = {"param": c.param}
                if c.minimum is not None:
                    attrs["min"] = repr(c.minimum)
                if c.maximum is not None:
                    attrs["max"] = repr(c.maximum)
                ET.SubElement(cons, "range", **attrs)
            else:
                expr = ET.SubElement(cons, "expr")
                expr.text = c.describe()
    return root


def implementation_from_xml(root: ET.Element) -> ImplementationDescriptor:
    if root.tag != "peppherImplementation":
        raise DescriptorError(f"expected peppherImplementation, got {root.tag!r}")

    def ref_of(tag: str) -> str:
        elem = root.find(tag)
        return (elem.get("ref") or "") if elem is not None else ""

    deployment = root.find("deployment")
    constraints: list = []
    for c in root.findall("constraints/range"):
        constraints.append(
            RangeConstraint(
                param=c.get("param") or "",
                minimum=_opt_float(c, "min"),
                maximum=_opt_float(c, "max"),
            )
        )
    for c in root.findall("constraints/expr"):
        constraints.append(ExpressionConstraint(c.text or ""))
    tunables = tuple(
        TunableParam(
            name=t.get("name") or "",
            values=tuple(
                _parse_value(v) for v in (t.get("values") or "").split(",") if v
            ),
            default=_parse_value(t.get("default")) if t.get("default") else None,
        )
        for t in root.findall("tunables/tunable")
    )
    return ImplementationDescriptor(
        name=root.get("name") or "",
        provides=root.get("provides") or "",
        platform=root.get("platform") or "",
        requires=tuple(
            r.get("name") or "" for r in root.findall("requires/interface")
        ),
        sources=tuple(s.get("file") or "" for s in root.findall("sources/source")),
        compile_cmd=(deployment.get("compileCmd") or "") if deployment is not None else "",
        kernel_ref=ref_of("kernel"),
        cost_ref=ref_of("costModel"),
        prediction_ref=ref_of("prediction"),
        resources=tuple(
            ResourceRequirement(
                resource=r.get("name") or "",
                minimum=float(r.get("min", "0")),
                maximum=_opt_float(r, "max"),
            )
            for r in root.findall("resources/resource")
        ),
        tunables=tunables,
        constraints=tuple(constraints),
    )


# ---------------------------------------------------------------------------
# platform descriptors
# ---------------------------------------------------------------------------

def platform_to_xml(desc: PlatformDescriptor) -> ET.Element:
    root = ET.Element(
        "peppherPlatform",
        name=desc.name,
        language=desc.language,
        arch=desc.arch.value,
        compiler=desc.compiler,
    )
    for key, value in desc.properties:
        ET.SubElement(root, "property", name=key, value=value)
    return root


def platform_from_xml(root: ET.Element) -> PlatformDescriptor:
    if root.tag != "peppherPlatform":
        raise DescriptorError(f"expected peppherPlatform, got {root.tag!r}")
    return PlatformDescriptor(
        name=root.get("name") or "",
        language=root.get("language") or "",
        arch=Arch.parse(root.get("arch", "cpu")),
        compiler=root.get("compiler", "cc"),
        properties=tuple(
            (p.get("name") or "", p.get("value") or "")
            for p in root.findall("property")
        ),
    )


# ---------------------------------------------------------------------------
# main-module descriptors
# ---------------------------------------------------------------------------

def main_to_xml(desc: MainDescriptor) -> ET.Element:
    root = ET.Element(
        "peppherMain",
        name=desc.name,
        targetPlatform=desc.target_platform,
        optimizationGoal=desc.optimization_goal,
        scheduler=desc.scheduler,
        useHistoryModels="true" if desc.use_history_models else "false",
        linkCmd=desc.link_cmd,
    )
    srcs = ET.SubElement(root, "sources")
    for s in desc.sources:
        ET.SubElement(srcs, "source", file=s)
    comps = ET.SubElement(root, "components")
    for c in desc.components:
        ET.SubElement(comps, "component", interface=c)
    if desc.disable_impls:
        dis = ET.SubElement(root, "disableImpls")
        for d in desc.disable_impls:
            ET.SubElement(dis, "impl", name=d)
    return root


def main_from_xml(root: ET.Element) -> MainDescriptor:
    if root.tag != "peppherMain":
        raise DescriptorError(f"expected peppherMain, got {root.tag!r}")
    return MainDescriptor(
        name=root.get("name") or "",
        sources=tuple(s.get("file") or "" for s in root.findall("sources/source"))
        or ("main.cpp",),
        target_platform=root.get("targetPlatform", "c2050"),
        optimization_goal=root.get("optimizationGoal", "min_exec_time"),
        components=tuple(
            c.get("interface") or "" for c in root.findall("components/component")
        ),
        scheduler=root.get("scheduler", "dmda"),
        use_history_models=(root.get("useHistoryModels", "true").lower() == "true"),
        disable_impls=tuple(
            d.get("name") or "" for d in root.findall("disableImpls/impl")
        ),
        link_cmd=root.get("linkCmd", MainDescriptor.__dataclass_fields__["link_cmd"].default),
    )


# ---------------------------------------------------------------------------
# file-level API
# ---------------------------------------------------------------------------

_TO_XML = {
    InterfaceDescriptor: interface_to_xml,
    ImplementationDescriptor: implementation_to_xml,
    PlatformDescriptor: platform_to_xml,
    MainDescriptor: main_to_xml,
}

_FROM_XML = {
    "peppherInterface": interface_from_xml,
    "peppherImplementation": implementation_from_xml,
    "peppherPlatform": platform_from_xml,
    "peppherMain": main_from_xml,
}


def descriptor_to_string(desc) -> str:
    """Serialise any descriptor to pretty-printed XML text."""
    try:
        to_xml = _TO_XML[type(desc)]
    except KeyError:
        raise DescriptorError(f"not a descriptor: {type(desc).__name__}") from None
    root = to_xml(desc)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


def save_descriptor(desc, path: str | Path) -> Path:
    """Write a descriptor as an XML file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(descriptor_to_string(desc))
    return path


def load_descriptor(path: str | Path):
    """Parse any descriptor XML file, dispatching on the root tag."""
    path = Path(path)
    try:
        root = ET.parse(path).getroot()
    except ET.ParseError as exc:
        raise DescriptorError(f"{path}: malformed XML: {exc}") from exc
    try:
        from_xml = _FROM_XML[root.tag]
    except KeyError:
        raise DescriptorError(
            f"{path}: unknown descriptor root tag {root.tag!r}"
        ) from None
    return from_xml(root)


def parse_descriptor_string(text: str):
    """Parse a descriptor from XML text (round-trip testing aid)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DescriptorError(f"malformed XML: {exc}") from exc
    try:
        from_xml = _FROM_XML[root.tag]
    except KeyError:
        raise DescriptorError(f"unknown descriptor root tag {root.tag!r}") from None
    return from_xml(root)
