"""Component repositories.

The PEPPHER framework keeps track of implementation variants by storing
their descriptors in repositories that the composition tool explores.
The on-disk layout mirrors the paper (section IV-C): one directory per
component interface, with implementations organized by platform type in
subdirectories, plus a global registry of interfaces, implementations and
platforms that helps the tool navigate the structure::

    repo/
      platforms/cuda.xml ...
      spmv/interface.xml
      spmv/cuda/spmv_cuda.xml
      spmv/cpu_serial/spmv_cpu.xml
      main.xml                      (application main descriptor)
"""

from __future__ import annotations

from pathlib import Path

from repro.components.implementation import ImplementationDescriptor
from repro.components.interface import InterfaceDescriptor
from repro.components.main_desc import MainDescriptor
from repro.components.platform_desc import PlatformDescriptor, standard_platforms
from repro.components.xml_io import load_descriptor, save_descriptor
from repro.errors import RepositoryError


class Repository:
    """In-memory registry of interfaces, implementations and platforms."""

    def __init__(self, with_standard_platforms: bool = True) -> None:
        self._interfaces: dict[str, InterfaceDescriptor] = {}
        self._implementations: dict[str, list[ImplementationDescriptor]] = {}
        self._platforms: dict[str, PlatformDescriptor] = {}
        self._mains: dict[str, MainDescriptor] = {}
        if with_standard_platforms:
            for p in standard_platforms():
                self.add_platform(p)

    # -- registration ---------------------------------------------------------

    def add_interface(self, desc: InterfaceDescriptor) -> None:
        if desc.name in self._interfaces:
            raise RepositoryError(f"interface {desc.name!r} already registered")
        self._interfaces[desc.name] = desc
        self._implementations.setdefault(desc.name, [])

    def add_implementation(self, desc: ImplementationDescriptor) -> None:
        impls = self._implementations.setdefault(desc.provides, [])
        if any(i.name == desc.name for i in impls):
            raise RepositoryError(
                f"implementation {desc.name!r} already registered for "
                f"interface {desc.provides!r}"
            )
        impls.append(desc)

    def add_platform(self, desc: PlatformDescriptor) -> None:
        if desc.name in self._platforms:
            raise RepositoryError(f"platform {desc.name!r} already registered")
        self._platforms[desc.name] = desc

    def add_main(self, desc: MainDescriptor) -> None:
        if desc.name in self._mains:
            raise RepositoryError(f"main descriptor {desc.name!r} already registered")
        self._mains[desc.name] = desc

    # -- lookup ------------------------------------------------------------------

    def interface(self, name: str) -> InterfaceDescriptor:
        try:
            return self._interfaces[name]
        except KeyError:
            raise RepositoryError(f"unknown interface {name!r}") from None

    def has_interface(self, name: str) -> bool:
        return name in self._interfaces

    def implementations_of(self, interface_name: str) -> list[ImplementationDescriptor]:
        if interface_name not in self._interfaces:
            raise RepositoryError(f"unknown interface {interface_name!r}")
        return list(self._implementations.get(interface_name, []))

    def implementation(self, name: str) -> ImplementationDescriptor:
        for impls in self._implementations.values():
            for impl in impls:
                if impl.name == name:
                    return impl
        raise RepositoryError(f"unknown implementation {name!r}")

    def platform(self, name: str) -> PlatformDescriptor:
        try:
            return self._platforms[name]
        except KeyError:
            raise RepositoryError(f"unknown platform {name!r}") from None

    @property
    def platforms(self) -> dict[str, PlatformDescriptor]:
        return dict(self._platforms)

    def main(self, name: str) -> MainDescriptor:
        try:
            return self._mains[name]
        except KeyError:
            raise RepositoryError(f"unknown main descriptor {name!r}") from None

    def interface_names(self) -> list[str]:
        return sorted(self._interfaces)

    def main_names(self) -> list[str]:
        return sorted(self._mains)

    # -- integrity -----------------------------------------------------------------

    def validate(self) -> list[str]:
        """Return a list of consistency problems (empty = healthy)."""
        problems: list[str] = []
        for iface, impls in self._implementations.items():
            if iface not in self._interfaces:
                problems.append(
                    f"implementations {[i.name for i in impls]} provide "
                    f"undeclared interface {iface!r}"
                )
            for impl in impls:
                if impl.platform not in self._platforms:
                    problems.append(
                        f"implementation {impl.name!r} references unknown "
                        f"platform {impl.platform!r}"
                    )
                for req in impl.requires:
                    if req not in self._interfaces:
                        problems.append(
                            f"implementation {impl.name!r} requires unknown "
                            f"interface {req!r}"
                        )
        for main in self._mains.values():
            for comp in main.components:
                if comp not in self._interfaces:
                    problems.append(
                        f"main {main.name!r} uses unknown interface {comp!r}"
                    )
        return problems

    # -- on-disk layout ---------------------------------------------------------------

    def save_to(self, root: str | Path) -> Path:
        """Write the repository in the paper's directory structure."""
        root = Path(root)
        platforms_dir = root / "platforms"
        for p in self._platforms.values():
            save_descriptor(p, platforms_dir / f"{p.name}.xml")
        for iface in self._interfaces.values():
            comp_dir = root / iface.name
            save_descriptor(iface, comp_dir / "interface.xml")
            for impl in self._implementations.get(iface.name, []):
                save_descriptor(impl, comp_dir / impl.platform / f"{impl.name}.xml")
        for main in self._mains.values():
            save_descriptor(main, root / f"{main.name}.xml")
        return root

    @classmethod
    def scan(cls, root: str | Path, with_standard_platforms: bool = False) -> "Repository":
        """Load a repository by scanning ``root`` recursively for XML
        descriptors, classifying each by its root tag."""
        root = Path(root)
        if not root.is_dir():
            raise RepositoryError(f"repository root {root} is not a directory")
        repo = cls(with_standard_platforms=with_standard_platforms)
        interfaces, impls, platforms, mains = [], [], [], []
        for path in sorted(root.rglob("*.xml")):
            desc = load_descriptor(path)
            if isinstance(desc, InterfaceDescriptor):
                interfaces.append(desc)
            elif isinstance(desc, ImplementationDescriptor):
                impls.append(desc)
            elif isinstance(desc, PlatformDescriptor):
                platforms.append(desc)
            elif isinstance(desc, MainDescriptor):
                mains.append(desc)
        # registration order: platforms and interfaces before impls/mains
        for p in platforms:
            if p.name not in repo._platforms:
                repo.add_platform(p)
        for i in interfaces:
            repo.add_interface(i)
        for im in impls:
            repo.add_implementation(im)
        for m in mains:
            repo.add_main(m)
        return repo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_impls = sum(len(v) for v in self._implementations.values())
        return (
            f"<Repository {len(self._interfaces)} interfaces, {n_impls} "
            f"implementations, {len(self._platforms)} platforms, "
            f"{len(self._mains)} mains>"
        )
