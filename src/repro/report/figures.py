"""Render experiment results as the paper's figures (SVG)."""

from __future__ import annotations

from pathlib import Path

from repro.experiments.fig5 import Fig5Row
from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import Fig7Point
from repro.report.svg import BarChart, LineChart, save_svg


def fig5_chart(rows: list[Fig5Row]) -> BarChart:
    """Figure 5: per-matrix speedup bars (direct CUDA = 1.0 baseline)."""
    return BarChart(
        title="Figure 5: SpMV speedup over direct CUDA (hybrid: 4 CPUs + C2050)",
        categories=[r.matrix for r in rows],
        series={
            "Direct CUDA": [1.0] * len(rows),
            "Hybrid": [r.speedup for r in rows],
        },
        y_label="speedup",
    )


def fig6_chart(result: Fig6Result) -> BarChart:
    """Figure 6: normalised execution time per app and mode."""
    norm = result.normalised()
    apps = sorted(norm)
    return BarChart(
        title=f"Figure 6 ({result.platform}): normalised execution time",
        categories=apps,
        series={
            "OpenMP": [norm[a]["openmp"] for a in apps],
            "CUDA": [norm[a]["cuda"] for a in apps],
            "TGPA": [norm[a]["tgpa"] for a in apps],
        },
        y_label="normalised exec. time",
    )


def fig7_chart(points: list[Fig7Point]) -> LineChart:
    """Figure 7: ODE solver execution time vs problem size, log y."""
    return LineChart(
        title="Figure 7: Runge-Kutta ODE solver execution time",
        x_values=[float(p.size) for p in points],
        series={
            "Direct - CPU": [p.direct_cpu_s for p in points],
            "Direct - CUDA": [p.direct_cuda_s for p in points],
            "Composition Tool - CUDA": [p.tool_cuda_s for p in points],
        },
        x_label="Problem Size",
        y_label="Execution time (seconds)",
        log_y=True,
    )


def render_all(
    out_dir: str | Path,
    fig5_rows: list[Fig5Row] | None = None,
    fig6_results: list[Fig6Result] | None = None,
    fig7_points: list[Fig7Point] | None = None,
) -> list[Path]:
    """Write SVGs for whichever results are supplied; returns the paths."""
    out_dir = Path(out_dir)
    written: list[Path] = []
    if fig5_rows:
        written.append(save_svg(fig5_chart(fig5_rows).to_svg(), out_dir / "fig5.svg"))
    for result in fig6_results or ():
        written.append(
            save_svg(
                fig6_chart(result).to_svg(), out_dir / f"fig6_{result.platform}.svg"
            )
        )
    if fig7_points:
        written.append(save_svg(fig7_chart(fig7_points).to_svg(), out_dir / "fig7.svg"))
    return written
