"""Figure rendering: dependency-free SVG charts of the reproduced results."""

from repro.report.figures import fig5_chart, fig6_chart, fig7_chart, render_all
from repro.report.svg import BarChart, LineChart, save_svg

__all__ = [
    "BarChart",
    "LineChart",
    "fig5_chart",
    "fig6_chart",
    "fig7_chart",
    "render_all",
    "save_svg",
]
