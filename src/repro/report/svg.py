"""Dependency-free SVG charts for the regenerated figures.

The benchmark harnesses print the paper's tables; this module renders
them as actual figures (grouped bar charts and log-scale line charts) so
a reproduction run can be compared against the paper's plots visually.
Pure stdlib — no matplotlib in the sandbox.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from xml.sax.saxutils import escape

#: a colour-blind-safe palette (Okabe-Ito)
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00")


@dataclass
class BarChart:
    """Grouped bar chart (the shape of the paper's Figures 5 and 6)."""

    title: str
    categories: list[str]  # x-axis groups (apps, matrices)
    series: dict[str, list[float]]  # legend label -> one value per category
    y_label: str = ""
    width: int = 760
    height: int = 360

    def validate(self) -> None:
        for label, values in self.series.items():
            if len(values) != len(self.categories):
                raise ValueError(
                    f"series {label!r} has {len(values)} values for "
                    f"{len(self.categories)} categories"
                )
        if not self.categories or not self.series:
            raise ValueError("chart needs categories and at least one series")

    def to_svg(self) -> str:
        self.validate()
        margin_l, margin_r, margin_t, margin_b = 64, 16, 44, 72
        plot_w = self.width - margin_l - margin_r
        plot_h = self.height - margin_t - margin_b
        y_max = max(max(v) for v in self.series.values()) * 1.08 or 1.0
        n_cat = len(self.categories)
        n_ser = len(self.series)
        group_w = plot_w / n_cat
        bar_w = group_w * 0.8 / n_ser

        parts = [_svg_open(self.width, self.height), _title(self.title, self.width)]
        parts.append(_y_axis(margin_l, margin_t, plot_h, y_max, self.y_label))
        # bars
        for si, (label, values) in enumerate(self.series.items()):
            colour = PALETTE[si % len(PALETTE)]
            for ci, value in enumerate(values):
                h = plot_h * value / y_max
                x = margin_l + ci * group_w + group_w * 0.1 + si * bar_w
                y = margin_t + plot_h - h
                parts.append(
                    f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                    f'height="{h:.1f}" fill="{colour}">'
                    f"<title>{escape(label)} / {escape(self.categories[ci])}: "
                    f"{value:.4g}</title></rect>"
                )
        # category labels (rotated)
        for ci, cat in enumerate(self.categories):
            x = margin_l + (ci + 0.5) * group_w
            y = margin_t + plot_h + 12
            parts.append(
                f'<text x="{x:.1f}" y="{y:.1f}" font-size="11" '
                f'text-anchor="end" transform="rotate(-35 {x:.1f} {y:.1f})">'
                f"{escape(cat)}</text>"
            )
        parts.append(
            _legend(self.series.keys(), margin_l, self.height - 14)
        )
        parts.append("</svg>")
        return "\n".join(parts)


@dataclass
class LineChart:
    """Multi-series line chart with optional log-y (the paper's Figure 7)."""

    title: str
    x_values: list[float]
    series: dict[str, list[float]]
    x_label: str = ""
    y_label: str = ""
    log_y: bool = False
    width: int = 760
    height: int = 360

    def validate(self) -> None:
        for label, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValueError(f"series {label!r} length mismatch")
            if self.log_y and any(v <= 0 for v in values):
                raise ValueError(f"series {label!r}: log scale needs positives")
        if len(self.x_values) < 2 or not self.series:
            raise ValueError("chart needs >= 2 x values and a series")

    def _y_pos(self, value, y_min, y_max, margin_t, plot_h):
        if self.log_y:
            frac = (math.log10(value) - math.log10(y_min)) / (
                math.log10(y_max) - math.log10(y_min)
            )
        else:
            frac = (value - y_min) / (y_max - y_min)
        return margin_t + plot_h * (1 - frac)

    def to_svg(self) -> str:
        self.validate()
        margin_l, margin_r, margin_t, margin_b = 72, 16, 44, 56
        plot_w = self.width - margin_l - margin_r
        plot_h = self.height - margin_t - margin_b
        all_vals = [v for vs in self.series.values() for v in vs]
        if self.log_y:
            y_min = 10 ** math.floor(math.log10(min(all_vals)))
            y_max = 10 ** math.ceil(math.log10(max(all_vals)))
        else:
            y_min, y_max = 0.0, max(all_vals) * 1.08
        x_min, x_max = min(self.x_values), max(self.x_values)

        parts = [_svg_open(self.width, self.height), _title(self.title, self.width)]
        # y grid
        if self.log_y:
            decade = int(math.log10(y_min))
            ticks = []
            while 10**decade <= y_max:
                ticks.append(10**decade)
                decade += 1
        else:
            ticks = [y_min + (y_max - y_min) * i / 4 for i in range(5)]
        for tick in ticks:
            y = self._y_pos(max(tick, y_min if not self.log_y else tick), y_min, y_max, margin_t, plot_h)
            parts.append(
                f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l + plot_w}" '
                f'y2="{y:.1f}" stroke="#ddd"/>'
                f'<text x="{margin_l - 6}" y="{y + 4:.1f}" font-size="11" '
                f'text-anchor="end">{tick:g}</text>'
            )
        for si, (label, values) in enumerate(self.series.items()):
            colour = PALETTE[si % len(PALETTE)]
            points = []
            for xv, yv in zip(self.x_values, values):
                x = margin_l + plot_w * (xv - x_min) / (x_max - x_min)
                y = self._y_pos(yv, y_min, y_max, margin_t, plot_h)
                points.append(f"{x:.1f},{y:.1f}")
            parts.append(
                f'<polyline points="{" ".join(points)}" fill="none" '
                f'stroke="{colour}" stroke-width="2"/>'
            )
            for p, yv in zip(points, values):
                x, y = p.split(",")
                parts.append(
                    f'<circle cx="{x}" cy="{y}" r="3.5" fill="{colour}">'
                    f"<title>{escape(label)}: {yv:.4g}</title></circle>"
                )
        for xv in self.x_values:
            x = margin_l + plot_w * (xv - x_min) / (x_max - x_min)
            parts.append(
                f'<text x="{x:.1f}" y="{margin_t + plot_h + 16}" font-size="11" '
                f'text-anchor="middle">{xv:g}</text>'
            )
        if self.x_label:
            parts.append(
                f'<text x="{margin_l + plot_w / 2}" y="{self.height - 24}" '
                f'font-size="12" text-anchor="middle">{escape(self.x_label)}</text>'
            )
        if self.y_label:
            parts.append(_y_axis_label(self.y_label, margin_t, plot_h))
        parts.append(_legend(self.series.keys(), margin_l, self.height - 6))
        parts.append("</svg>")
        return "\n".join(parts)


def _svg_open(width: int, height: int) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="sans-serif">'
        f'<rect width="{width}" height="{height}" fill="white"/>'
    )


def _title(title: str, width: int) -> str:
    return (
        f'<text x="{width / 2}" y="22" font-size="15" font-weight="bold" '
        f'text-anchor="middle">{escape(title)}</text>'
    )


def _y_axis(margin_l, margin_t, plot_h, y_max, y_label) -> str:
    parts = []
    for i in range(5):
        frac = i / 4
        y = margin_t + plot_h * (1 - frac)
        value = y_max * frac
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l - 4}" '
            f'y2="{y:.1f}" stroke="#444"/>'
            f'<text x="{margin_l - 7}" y="{y + 4:.1f}" font-size="11" '
            f'text-anchor="end">{value:.3g}</text>'
        )
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
        f'y2="{margin_t + plot_h}" stroke="#444"/>'
    )
    if y_label:
        parts.append(_y_axis_label(y_label, margin_t, plot_h))
    return "\n".join(parts)


def _y_axis_label(label: str, margin_t, plot_h) -> str:
    y_mid = margin_t + plot_h / 2
    return (
        f'<text x="14" y="{y_mid}" font-size="12" text-anchor="middle" '
        f'transform="rotate(-90 14 {y_mid})">{escape(label)}</text>'
    )


def _legend(labels, x0: float, y: float) -> str:
    parts = []
    x = x0
    for i, label in enumerate(labels):
        colour = PALETTE[i % len(PALETTE)]
        parts.append(f'<rect x="{x}" y="{y - 10}" width="12" height="12" fill="{colour}"/>')
        parts.append(
            f'<text x="{x + 16}" y="{y}" font-size="12">{escape(str(label))}</text>'
        )
        x += 16 + 8 * len(str(label)) + 24
    return "\n".join(parts)


def save_svg(svg_text: str, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg_text)
    return path
