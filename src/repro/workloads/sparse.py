"""Synthetic sparse matrices standing in for the UF collection.

The paper's Figure 5 evaluates SpMV on six matrices from the University
of Florida collection, identified by application area and nonzero count
(its Table of matrices):

===========  ==================  =========
Short name   Kind                Non-zeros
===========  ==================  =========
Structural   Structural          2.7M
HB           HB                  219.8K
Convex       Convex QP           0.9M
Simulation   Circuit Simulation  4.6M
Network      Power Network       565K
Chemistry    Quantum Chemistry   758K
===========  ==================  =========

We cannot ship the collection, so each matrix is generated synthetically
to match the properties SpMV performance depends on: dimension, nonzero
count, and row-structure class (banded FEM stencils, power-law circuit /
network degrees, dense quantum-chemistry blocks).  Generation is
deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CSRMatrix:
    """A CSR matrix in the paper's spmv component layout."""

    name: str
    values: np.ndarray  # float32[nnz]
    colidxs: np.ndarray  # int64[nnz]
    rowptr: np.ndarray  # int64[nrows + 1]
    ncols: int

    @property
    def nrows(self) -> int:
        return len(self.rowptr) - 1

    @property
    def nnz(self) -> int:
        return int(self.rowptr[-1])

    @property
    def nbytes(self) -> int:
        return (
            self.values.nbytes + self.colidxs.nbytes + self.rowptr.nbytes
        )

    def to_dense(self) -> np.ndarray:
        """Dense copy (testing aid; only for small matrices)."""
        dense = np.zeros((self.nrows, self.ncols), dtype=np.float32)
        for i in range(self.nrows):
            lo, hi = self.rowptr[i], self.rowptr[i + 1]
            np.add.at(dense[i], self.colidxs[lo:hi], self.values[lo:hi])
        return dense


@dataclass(frozen=True)
class MatrixSpec:
    """Recipe for one synthetic matrix class."""

    name: str
    kind: str  # paper's "Kind" column
    structure: str  # banded | powerlaw | block | random
    nrows: int
    nnz: int


#: the six Figure-5 matrices (dimensions chosen to give realistic
#: rows-per-nonzero ratios for each application area)
UF_SPECS: dict[str, MatrixSpec] = {
    "Structural": MatrixSpec("Structural", "Structural", "banded", 140_000, 2_700_000),
    "HB": MatrixSpec("HB", "HB", "banded", 25_000, 219_800),
    "Convex": MatrixSpec("Convex", "Convex QP", "random", 50_000, 900_000),
    "Simulation": MatrixSpec(
        "Simulation", "Circuit Simulation", "powerlaw", 680_000, 4_600_000
    ),
    "Network": MatrixSpec("Network", "Power Network", "powerlaw", 80_000, 565_000),
    "Chemistry": MatrixSpec("Chemistry", "Quantum Chemistry", "block", 12_000, 758_000),
}


def _row_degrees(spec: MatrixSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-row nonzero counts summing exactly to ``spec.nnz``."""
    n, nnz = spec.nrows, spec.nnz
    mean = nnz / n
    if spec.structure == "powerlaw":
        raw = rng.pareto(2.0, size=n) + 0.5
    elif spec.structure == "banded":
        raw = rng.normal(1.0, 0.1, size=n).clip(0.5, 1.5)
    else:
        raw = rng.normal(1.0, 0.3, size=n).clip(0.2, 3.0)
    degrees = np.maximum((raw / raw.mean() * mean).astype(np.int64), 1)
    # exact adjustment: spread the residual over random rows
    diff = int(nnz - degrees.sum())
    if diff != 0:
        idx = rng.choice(n, size=abs(diff), replace=True)
        np.add.at(degrees, idx, 1 if diff > 0 else -1)
        degrees = np.maximum(degrees, 1)
        # a second exact pass in case clipping at 1 re-introduced error
        diff = int(nnz - degrees.sum())
        if diff > 0:
            idx = rng.choice(n, size=diff, replace=True)
            np.add.at(degrees, idx, 1)
        elif diff < 0:
            eligible = np.flatnonzero(degrees > 1)
            take = rng.choice(eligible, size=-diff, replace=False)
            degrees[take] -= 1
    return degrees


def _column_indices(
    spec: MatrixSpec, degrees: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Column indices per structure class (vectorised)."""
    n = spec.nrows
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    total = int(degrees.sum())
    if spec.structure == "banded":
        bandwidth = max(int(2.5 * degrees.mean()), 4)
        offsets = rng.integers(-bandwidth, bandwidth + 1, size=total)
        cols = np.clip(rows + offsets, 0, n - 1)
    elif spec.structure == "block":
        block = max(int(1.5 * degrees.mean()), 8)
        base = (rows // block) * block
        cols = base + rng.integers(0, block, size=total)
        cols = np.minimum(cols, n - 1)
    else:  # random / powerlaw: uniform scatter
        cols = rng.integers(0, n, size=total)
    return cols.astype(np.int64)


def make_matrix(name: str, seed: int = 0, scale: float = 1.0) -> CSRMatrix:
    """Generate one of the six Figure-5 matrices.

    ``scale`` shrinks both dimension and nonzeros proportionally (tests
    use small scales; benchmarks use 1.0).
    """
    try:
        spec = UF_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; known: {sorted(UF_SPECS)}"
        ) from None
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    if scale != 1.0:
        spec = MatrixSpec(
            spec.name,
            spec.kind,
            spec.structure,
            max(int(spec.nrows * scale), 16),
            max(int(spec.nnz * scale), 64),
        )
    rng = np.random.default_rng(seed + hash(name) % (1 << 16))
    degrees = _row_degrees(spec, rng)
    cols = _column_indices(spec, degrees, rng)
    values = rng.standard_normal(len(cols)).astype(np.float32)
    rowptr = np.zeros(spec.nrows + 1, dtype=np.int64)
    np.cumsum(degrees, out=rowptr[1:])
    return CSRMatrix(
        name=spec.name, values=values, colidxs=cols, rowptr=rowptr, ncols=spec.nrows
    )


def matrix_names() -> list[str]:
    """The six matrices, in the paper's x-axis order (alphabetical)."""
    return sorted(UF_SPECS)


def random_csr(
    nrows: int, ncols: int, nnz_per_row: int, seed: int = 0
) -> CSRMatrix:
    """A plain uniform-random CSR matrix (unit-test workhorse)."""
    rng = np.random.default_rng(seed)
    degrees = np.full(nrows, nnz_per_row, dtype=np.int64)
    cols = rng.integers(0, ncols, size=nrows * nnz_per_row).astype(np.int64)
    values = rng.standard_normal(nrows * nnz_per_row).astype(np.float32)
    rowptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(degrees, out=rowptr[1:])
    return CSRMatrix(
        name=f"random{nrows}x{ncols}", values=values, colidxs=cols,
        rowptr=rowptr, ncols=ncols,
    )
