"""Dense linear-algebra workloads (sgemm, lud inputs)."""

from __future__ import annotations

import numpy as np


def gemm_inputs(
    m: int, n: int, k: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random single-precision (A, B, C) operands for sgemm."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    c = rng.standard_normal((m, n)).astype(np.float32)
    return a, b, c
