"""Grid workloads: hotspot power maps, pathfinder walls, nw sequences."""

from __future__ import annotations

import numpy as np


def hotspot_inputs(
    rows: int, cols: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """(power map, initial temperature) for the hotspot stencil."""
    rng = np.random.default_rng(seed)
    power = (0.1 * rng.random((rows, cols))).astype(np.float32)
    # a few hot functional units
    for _ in range(4):
        r = rng.integers(0, rows)
        c = rng.integers(0, cols)
        power[max(r - 2, 0): r + 3, max(c - 2, 0): c + 3] += 2.0
    temp = np.full((rows, cols), 60.0, dtype=np.float32)
    return power.reshape(-1), temp.reshape(-1)


def pathfinder_wall(rows: int, cols: int, seed: int = 0) -> np.ndarray:
    """Random weight grid for the pathfinder DP."""
    rng = np.random.default_rng(seed)
    return rng.integers(1, 10, size=rows * cols).astype(np.int32)
