"""Graph workload generation for the bfs benchmark."""

from __future__ import annotations

import numpy as np


def random_graph(
    n_nodes: int, avg_degree: int = 8, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Rodinia-style random graph in adjacency-offset form.

    Returns ``(nodes, edges)`` where ``nodes`` has ``n_nodes + 1`` edge
    offsets and ``edges`` the flattened adjacency lists.  A Hamiltonian
    ring is embedded so BFS reaches every node (bounded diameter).
    """
    if n_nodes < 2:
        raise ValueError("graph needs at least 2 nodes")
    rng = np.random.default_rng(seed)
    extra = rng.poisson(max(avg_degree - 1, 0), size=n_nodes)
    degrees = 1 + extra  # ring edge + random extras
    nodes = np.zeros(n_nodes + 1, dtype=np.int32)
    np.cumsum(degrees, out=nodes[1:])
    total = int(nodes[-1])
    edges = rng.integers(0, n_nodes, size=total).astype(np.int32)
    # first slot of each adjacency list: the ring successor
    edges[nodes[:-1]] = (np.arange(n_nodes) + 1) % n_nodes
    return nodes, edges
