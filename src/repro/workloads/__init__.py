"""Input generators for the benchmark applications.

Synthetic stand-ins for data the paper uses but we cannot ship: the UF
sparse matrix collection (:mod:`repro.workloads.sparse`), Rodinia input
decks (:mod:`repro.workloads.graphs`, :mod:`repro.workloads.grids`) and
dense operands (:mod:`repro.workloads.dense`).
"""

from repro.workloads.dense import gemm_inputs
from repro.workloads.graphs import random_graph
from repro.workloads.grids import hotspot_inputs, pathfinder_wall
from repro.workloads.sparse import (
    CSRMatrix,
    MatrixSpec,
    UF_SPECS,
    make_matrix,
    matrix_names,
    random_csr,
)

__all__ = [
    "CSRMatrix",
    "MatrixSpec",
    "UF_SPECS",
    "gemm_inputs",
    "hotspot_inputs",
    "make_matrix",
    "matrix_names",
    "pathfinder_wall",
    "random_csr",
    "random_graph",
]
