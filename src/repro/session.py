"""The unified ``repro.Session`` facade.

One object wiring everything a PEPPHER-style application needs: a
machine (preset name, factory or instance), a :class:`Runtime` with a
scheduler picked by name, the persistent performance-model store,
fault-injection and recovery policy, and trace export — the pieces that
previously each had their own entry point::

    from repro import Session

    with Session("c2050", store="~/.peppher-models") as s:
        h = s.register(array)
        s.submit(codelet, [(h, "rw")], ctx={"n": 1024})
        s.wait_for_all()
        s.save_trace("run.json")

The session is a thin veneer: everything it builds is reachable
(``.machine``, ``.runtime``, ``.store``) so advanced code can keep using
the underlying APIs directly; old entry points remain supported.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import PeppherError, RuntimeSystemError
from repro.hw.faults import FaultModel
from repro.hw.description import Machine
from repro.hw.presets import by_name
from repro.obs.suite import MetricsSuite
from repro.runtime.engine import RecoveryPolicy
from repro.runtime.runtime import Runtime
from repro.runtime.trace_export import (
    gantt_text,
    save_chrome_trace,
    save_trace_json,
)
from repro.tuning.store import PerfModelStore


class Session:
    """One configured composition session on a (simulated) machine.

    Parameters
    ----------
    machine:
        A preset name (``"c2050"``, ``"c1060"``, ``"2xc2050"``,
        ``"cpu"``), a zero-argument machine factory, or a built
        :class:`~repro.hw.description.Machine`.  ``machine_options`` are
        forwarded to the preset/factory (e.g. ``n_cpu_cores=5``).
    scheduler:
        Scheduling policy name resolved via
        :func:`~repro.runtime.schedulers.make_scheduler`, with
        ``scheduler_options`` as its keyword arguments.
    store:
        A :class:`~repro.tuning.store.PerfModelStore` or a directory
        path for one.  The runtime warm-starts from the machine's
        calibrated models and merges its observations back at shutdown.
    faults / recovery:
        Fault-injection model and recovery policy, forwarded verbatim.
    check:
        Validate the finished trace against the run invariants at
        shutdown (see :mod:`repro.check`); ``None`` defers to the
        process-wide default.
    record:
        Record scheduling decisions for deterministic replay (see
        :attr:`~repro.runtime.runtime.Runtime.decision_log`).
    metrics:
        Live observability (see :mod:`repro.obs`): ``True`` attaches a
        fresh :class:`~repro.obs.MetricsSuite` (reachable as
        :attr:`metrics`, snapshot via ``session.metrics.snapshot()``),
        an existing suite reuses it, a dict supplies suite keyword
        arguments (e.g. ``{"period_s": 1e-2}``), and ``False``/``None``
        (default) disables metrics with zero overhead.  The suite
        follows the session across :meth:`restart`.
    exec_backend:
        Where kernel computations actually run (see :mod:`repro.exec`):
        a backend name (``"simulated"``, ``"thread"``, ``"process"``),
        a backend instance, or ``None`` (default) for the original
        inline path.  A backend named here is owned by the session —
        shared across :meth:`restart` and closed at :meth:`shutdown`;
        an instance is borrowed and left open.
    trace_dir:
        Default directory for :meth:`save_trace` outputs.

    Every other keyword (``seed``, ``noise_sigma``, ``run_kernels``,
    ``submit_overhead_s``) matches :class:`~repro.runtime.runtime.Runtime`.
    """

    def __init__(
        self,
        machine: str | Machine | Callable[..., Machine] = "c2050",
        scheduler: str = "dmda",
        scheduler_options: Mapping[str, object] | None = None,
        store: "PerfModelStore | str | Path | None" = None,
        seed: int = 0,
        noise_sigma: float = 0.03,
        submit_overhead_s: float = 1e-6,
        run_kernels: bool = True,
        faults: FaultModel | None = None,
        recovery: RecoveryPolicy | None = None,
        check: bool | None = None,
        record: bool = False,
        metrics: "bool | dict | MetricsSuite | None" = None,
        trace_dir: str | Path | None = None,
        machine_options: Mapping[str, object] | None = None,
        exec_backend: "str | object | None" = None,
    ) -> None:
        opts = dict(machine_options or {})
        if isinstance(machine, str):
            name = machine
            self._machine_factory: Callable[[], Machine] = lambda: by_name(
                name, **opts
            )
        elif isinstance(machine, Machine):
            if opts:
                raise PeppherError(
                    "machine_options only apply when machine is a preset "
                    "name or factory"
                )
            built = machine
            self._machine_factory = lambda: built
        elif callable(machine):
            factory = machine
            self._machine_factory = lambda: factory(**opts)
        else:
            raise PeppherError(
                f"machine must be a preset name, Machine or factory, "
                f"got {type(machine).__name__}"
            )
        if store is not None and not isinstance(store, PerfModelStore):
            store = PerfModelStore(Path(store).expanduser())
        self.store = store
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._own_backend = False
        if isinstance(exec_backend, str):
            from repro.exec.base import make_backend

            exec_backend = make_backend(exec_backend)
            self._own_backend = True
        self.exec_backend = exec_backend
        self._aio_pool = None  # lazy serializer for submit_async
        self._runtime_kwargs = {
            "scheduler": scheduler,
            "scheduler_options": dict(scheduler_options or {}),
            "noise_sigma": noise_sigma,
            "submit_overhead_s": submit_overhead_s,
            "run_kernels": run_kernels,
            "faults": faults,
            "recovery": recovery,
            "check": check,
            "record": record,
            # always an instance (or None): the session owns name-built
            # backends, so restart() reuses the same pool
            "exec_backend": exec_backend,
        }
        self._seed = seed
        self.metrics = MetricsSuite.create(metrics)
        self.runtime = self._make_runtime(seed)
        if self.metrics is not None:
            self.metrics.attach(self.runtime.engine)

    def _make_runtime(self, seed: int) -> Runtime:
        return Runtime(
            self._machine_factory(),
            seed=seed,
            store=self.store,
            **self._runtime_kwargs,
        )

    # -- lifecycle -----------------------------------------------------------

    def restart(self, seed: int | None = None) -> "Runtime":
        """Close the current runtime and start a fresh one.

        The new runtime keeps the learned performance model: through the
        store when one is configured (shutdown merges, start-up
        warm-loads), directly otherwise.  This is the calibrate-then-
        measure pattern (first run explores, later runs are warm)
        without manual model plumbing.
        """
        model = self.runtime.perfmodel
        self.runtime.shutdown()
        self._seed = self._seed + 1 if seed is None else seed
        if self.store is not None:
            self.runtime = self._make_runtime(self._seed)
        else:
            self.runtime = Runtime(
                self._machine_factory(),
                seed=self._seed,
                perfmodel=model,
                **self._runtime_kwargs,
            )
        if self.metrics is not None:
            # counters keep accumulating; gauges/samples follow the new
            # engine
            self.metrics.attach(self.runtime.engine)
        return self.runtime

    def shutdown(self) -> float:
        """Drain, persist models (when a store is configured), close."""
        t = self.runtime.shutdown()
        if self._aio_pool is not None:
            self._aio_pool.shutdown(wait=True)
            self._aio_pool = None
        if self._own_backend and self.exec_backend is not None:
            self.exec_backend.close()
        return t

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.shutdown()
        except PeppherError:
            if exc_type is None:
                raise

    # -- delegation to the runtime ------------------------------------------

    @property
    def machine(self) -> Machine:
        return self.runtime.machine

    @property
    def now(self) -> float:
        return self.runtime.now

    @property
    def trace(self):
        return self.runtime.trace

    @property
    def perfmodel(self):
        return self.runtime.perfmodel

    def register(self, array: np.ndarray, name: str = ""):
        return self.runtime.register(array, name=name)

    def unregister(self, handle) -> float:
        return self.runtime.unregister(handle)

    def acquire(self, handle, mode) -> float:
        return self.runtime.acquire(handle, mode)

    def partition_equal(self, handle, n_chunks: int, axis: int = 0):
        return self.runtime.partition_equal(handle, n_chunks, axis=axis)

    def partition_by_slices(self, handle, slices: Iterable):
        return self.runtime.partition_by_slices(handle, slices)

    def unpartition(self, handle) -> float:
        return self.runtime.unpartition(handle)

    def submit(
        self,
        codelet,
        operands: Sequence,
        ctx: Mapping[str, object] | None = None,
        scalar_args: tuple = (),
        sync: bool = False,
        priority: int = 0,
        name: str = "",
    ):
        return self.runtime.submit(
            codelet,
            operands,
            ctx=ctx,
            scalar_args=scalar_args,
            sync=sync,
            priority=priority,
            name=name,
        )

    def wait_for_all(self) -> float:
        return self.runtime.wait_for_all()

    @property
    def measurements(self):
        """Wall-clock kernel measurements (real exec backends only)."""
        return self.runtime.measurements

    # -- asyncio surface ------------------------------------------------------

    def _serializer(self):
        """Single-worker executor serializing engine access for asyncio.

        The engine is a single-threaded state machine; funneling every
        async submit/wait through one worker thread keeps it that way
        while letting the *kernels* (dispatched to the exec backend from
        that worker) overlap freely.
        """
        if self._aio_pool is None:
            import concurrent.futures

            self._aio_pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-session-aio"
            )
        return self._aio_pool

    async def submit_async(
        self,
        codelet,
        operands: Sequence,
        ctx: Mapping[str, object] | None = None,
        scalar_args: tuple = (),
        priority: int = 0,
        name: str = "",
    ):
        """Submit a task and await its completion (asyncio-native).

        Submission and completion are two separate hops on the session's
        serializer thread, so ``asyncio.gather`` over several
        ``submit_async`` calls submits *all* tasks before waiting on any
        of them — with a real execution backend their kernels genuinely
        overlap.  Returns the completed :class:`~repro.runtime.task.Task`.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        pool = self._serializer()
        task = await loop.run_in_executor(
            pool,
            lambda: self.runtime.submit(
                codelet,
                operands,
                ctx=ctx,
                scalar_args=scalar_args,
                priority=priority,
                name=name,
            ),
        )
        await loop.run_in_executor(
            pool, lambda: self.runtime.engine.wait_for_task(task)
        )
        return task

    async def submit_batch_async(self, requests: Sequence[Mapping]):
        """Submit many tasks concurrently and await them all.

        Each request is a mapping of :meth:`submit_async` keyword
        arguments (``codelet`` and ``operands`` required, e.g.
        ``{"codelet": c, "operands": [(h, "rw")], "ctx": {...}}``).
        Returns the completed tasks in request order.
        """
        import asyncio

        return await asyncio.gather(
            *(self.submit_async(**dict(req)) for req in requests)
        )

    # -- trace export --------------------------------------------------------

    def save_trace(self, path: str | Path) -> Path:
        """Write the Chrome trace-event JSON for the current trace."""
        path = Path(path)
        if self.trace_dir is not None and not path.is_absolute():
            path = self.trace_dir / path
        return save_chrome_trace(self.trace, self.machine, path)

    def save_trace_json(self, path: str | Path) -> Path:
        """Write the *lossless* trace JSON (machine summary included),
        the input format of ``python -m repro.check``."""
        path = Path(path)
        if self.trace_dir is not None and not path.is_absolute():
            path = self.trace_dir / path
        return save_trace_json(self.trace, self.machine, path)

    def gantt(self, width: int = 72) -> str:
        """Terminal Gantt chart of the current trace."""
        return gantt_text(self.trace, self.machine, width=width)

    # -- checking shortcuts --------------------------------------------------

    @property
    def decision_log(self):
        """Recorded decisions (``record=True`` sessions), else ``None``."""
        return self.runtime.decision_log

    def check_now(self) -> None:
        """Validate the trace-so-far against the run invariants,
        raising the first :class:`~repro.errors.InvariantViolation`."""
        from repro.check.invariants import assert_trace_legal

        assert_trace_legal(self.trace, self.machine)

    # -- tuning shortcuts ----------------------------------------------------

    def calibrated_codelets(self) -> set[str]:
        """Codelets with calibrated models for this machine (store-backed
        plus whatever this session has already learned)."""
        out = set(self.perfmodel.codelets())
        if self.store is not None:
            try:
                warm = self.store.load(self.machine)
            except RuntimeSystemError:
                warm = None
            if warm is not None:
                out |= warm.codelets()
        return out
