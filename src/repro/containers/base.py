"""Core machinery shared by the PEPPHER smart containers.

A smart container wraps operand data passed in and out of components
while exposing a high-level, STL-like interface.  It encapsulates the
*state* of its payload: which memory units currently hold valid copies,
managed by the runtime's data handle.  Accesses from the application
program trigger coherence actions lazily — reading an element of a
vector last written on the GPU performs one implicit device-to-host copy
at that moment, not before (paper section IV-D and Figure 3).

Containers also "function as regular C++ containers outside the PEPPHER
context": constructed without a runtime they are plain array wrappers,
and every operation works unchanged with zero overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ContainerError
from repro.hw.description import HOST_NODE
from repro.runtime.access import AccessMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.data import DataHandle
    from repro.runtime.runtime import Runtime


class SmartContainer:
    """Base class: payload + (optional) runtime-managed data handle."""

    def __init__(
        self,
        array: np.ndarray,
        runtime: "Runtime | None" = None,
        name: str = "",
    ) -> None:
        self._array = np.asarray(array)
        self._runtime = runtime
        self._name = name or type(self).__name__.lower()
        self._handle: "DataHandle | None" = None
        self._freed = False
        if runtime is not None:
            self._handle = runtime.register(self._array, name=self._name)

    # -- identity -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def shape(self) -> tuple[int, ...]:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    @property
    def size(self) -> int:
        return int(self._array.size)

    @property
    def nbytes(self) -> int:
        return int(self._array.nbytes)

    @property
    def managed(self) -> bool:
        """True when attached to a runtime (inside the PEPPHER context)."""
        return self._handle is not None

    @property
    def handle(self) -> "DataHandle":
        """The runtime data handle (for passing to component calls)."""
        self._check_alive()
        if self._handle is None:
            raise ContainerError(
                f"container {self._name!r} is not attached to a runtime; "
                "construct it with runtime=... to use it in component calls"
            )
        return self._handle

    # -- coherence introspection ----------------------------------------------

    def valid_nodes(self) -> list[int]:
        """Memory nodes currently holding a valid copy of the payload.

        Local (unmanaged) containers live only in host memory, so they
        always report ``[HOST_NODE]``.
        """
        if self._handle is None:
            return [HOST_NODE]
        return self._handle.valid_nodes()

    def host_is_valid(self) -> bool:
        """True when reading on the host would need no implicit transfer."""
        return HOST_NODE in self.valid_nodes()

    # -- coherent host access ---------------------------------------------------

    def acquire(self, mode: str | AccessMode) -> np.ndarray:
        """Block until the host may access the payload with ``mode``.

        Returns the payload array.  For pure reads the returned view is
        marked read-only, so an accidental write through it raises
        instead of silently bypassing coherence tracking.
        """
        self._check_alive()
        if isinstance(mode, str):
            mode = AccessMode.parse(mode)
        if self._runtime is not None and self._handle is not None:
            self._runtime.acquire(self._handle, mode)
        if mode is AccessMode.R:
            view = self._array.view()
            view.flags.writeable = False
            return view
        return self._array

    def read(self) -> np.ndarray:
        """Coherent read-only view of the whole payload."""
        return self.acquire(AccessMode.R)

    def write(self) -> np.ndarray:
        """Coherent writable view (invalidates device copies)."""
        return self.acquire(AccessMode.RW)

    def to_numpy(self) -> np.ndarray:
        """Coherent *copy* of the payload (detached from the container)."""
        return np.array(self.acquire(AccessMode.R))

    # -- lifecycle -----------------------------------------------------------------

    def free(self) -> None:
        """Flush to host and detach from the runtime.

        After ``free()`` the container keeps working as a plain local
        array wrapper; further component calls must not use it.
        """
        if self._freed:
            return
        if self._runtime is not None and self._handle is not None:
            self._runtime.unregister(self._handle)
        self._handle = None
        self._runtime = None
        self._freed = True

    def _check_alive(self) -> None:
        # freed containers remain usable locally; nothing to check today,
        # but the hook stays so subclasses can restrict behaviour
        return

    # -- numpy interoperability ------------------------------------------------------

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        """NumPy protocol: converting to an array is a *read* access."""
        arr = self.acquire(AccessMode.R)
        if dtype is not None:
            return np.asarray(arr, dtype=dtype)
        return np.asarray(arr)

    def __len__(self) -> int:
        return len(self._array)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "managed" if self.managed else "local"
        return (
            f"<{type(self).__name__} {self._name!r} shape={self.shape} "
            f"dtype={self.dtype} {where}>"
        )
