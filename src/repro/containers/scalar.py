"""Scalar smart container."""

from __future__ import annotations

import numpy as np

from repro.containers.base import SmartContainer
from repro.runtime.access import AccessMode


class Scalar(SmartContainer):
    """A single value with runtime-managed placement.

    Useful for reduction results (e.g. a norm computed on the GPU) that
    the application reads back lazily.

    >>> s = Scalar(0.0)        # local mode
    >>> s.value = 3.5
    >>> float(s)
    3.5
    """

    def __init__(self, value=0.0, runtime=None, dtype=None, name: str = "") -> None:
        arr = np.asarray(value, dtype=dtype)
        if arr.ndim != 0:
            arr = arr.reshape(())
        # store as 1-element array so views stay shared with the handle
        super().__init__(arr.reshape(1).copy(), runtime=runtime, name=name or "scalar")

    @property
    def value(self):
        """Coherent read of the value."""
        return self.acquire(AccessMode.R)[0]

    @value.setter
    def value(self, v) -> None:
        self.acquire(AccessMode.RW)[0] = v

    def __float__(self) -> float:
        return float(self.value)

    def __int__(self) -> int:
        return int(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __eq__(self, other) -> bool:
        if isinstance(other, Scalar):
            other = other.value
        return bool(self.value == other)

    def __hash__(self) -> int:
        return id(self)
