"""Matrix smart container (2D array)."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.containers.base import SmartContainer
from repro.containers.proxy import ElementProxy
from repro.errors import ContainerError
from repro.runtime.access import AccessMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.data import DataHandle


class Matrix(SmartContainer):
    """A generic dense 2D container with transparent coherence.

    >>> m = Matrix.zeros(2, 3)
    >>> m[1, 2] = 5.0
    >>> m[1, 2]
    5.0
    """

    def __init__(self, data, runtime=None, dtype=None, name: str = "") -> None:
        arr = np.array(data, dtype=dtype, copy=True)
        if arr.ndim != 2:
            raise ContainerError(f"Matrix needs 2D data, got shape {arr.shape}")
        super().__init__(arr, runtime=runtime, name=name or "matrix")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def zeros(
        cls, rows: int, cols: int, runtime=None, dtype=np.float32, name: str = ""
    ) -> "Matrix":
        return cls(np.zeros((rows, cols), dtype=dtype), runtime=runtime, name=name)

    @classmethod
    def identity(
        cls, n: int, runtime=None, dtype=np.float32, name: str = ""
    ) -> "Matrix":
        return cls(np.eye(n, dtype=dtype), runtime=runtime, name=name)

    # -- shape ----------------------------------------------------------------

    @property
    def rows(self) -> int:
        return self.shape[0]

    @property
    def cols(self) -> int:
        return self.shape[1]

    # -- element access ------------------------------------------------------

    def __getitem__(self, index):
        arr = self.acquire(AccessMode.R)
        out = arr[index]
        if isinstance(out, np.ndarray):
            return np.array(out)  # detach sub-arrays from coherence tracking
        return out

    def __setitem__(self, index, value) -> None:
        self.acquire(AccessMode.RW)[index] = value

    def at(self, i: int, j: int) -> ElementProxy:
        """Deferred-access element reference (read *or* write later)."""
        return ElementProxy(self, (i, j))

    def fill(self, value) -> None:
        """Write-only bulk initialisation (no read-back of old contents)."""
        self.acquire(AccessMode.W)[:, :] = value

    # -- partitioning --------------------------------------------------------

    def partition_rows(self, n_chunks: int) -> "list[DataHandle]":
        """Split the handle into ``n_chunks`` row-block children
        (blocked matrix operations, paper section IV-F).

        Managed containers partition through the runtime so the access
        is traced (and checkable); detached handles split directly.
        """
        if self._runtime is not None:
            return self._runtime.partition_equal(self.handle, n_chunks, axis=0)
        return self.handle.partition_equal(n_chunks, axis=0)

    def unpartition(self) -> None:
        if self._runtime is None:
            raise ContainerError("unpartition requires a runtime-managed matrix")
        self._runtime.unpartition(self.handle)
