"""Vector smart container (1D array)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.containers.base import SmartContainer
from repro.containers.proxy import ElementProxy
from repro.errors import ContainerError
from repro.runtime.access import AccessMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.data import DataHandle
    from repro.runtime.runtime import Runtime


class Vector(SmartContainer):
    """A generic 1D array container with transparent coherence.

    Reading an element (``v[i]``) is a coherent read access: if the data
    was last written by a component executed on the GPU, the master copy
    is updated implicitly, once, at this moment (paper Figure 3, line 6).
    Writing (``v[i] = x``) is a read-write access that additionally
    outdates device copies (Figure 3, line 14).

    >>> v = Vector.zeros(4)     # local mode, like a regular container
    >>> v[2] = 7.0
    >>> v[2]
    7.0
    """

    def __init__(self, data, runtime=None, dtype=None, name: str = "") -> None:
        arr = np.array(data, dtype=dtype, copy=True)
        if arr.ndim != 1:
            raise ContainerError(f"Vector needs 1D data, got shape {arr.shape}")
        super().__init__(arr, runtime=runtime, name=name or "vector")

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(
        cls, n: int, runtime=None, dtype=np.float32, name: str = ""
    ) -> "Vector":
        return cls(np.zeros(n, dtype=dtype), runtime=runtime, name=name)

    @classmethod
    def from_iterable(
        cls, items: Iterable, runtime=None, dtype=None, name: str = ""
    ) -> "Vector":
        return cls(np.fromiter(items, dtype=dtype or np.float32), runtime=runtime, name=name)

    # -- element access -----------------------------------------------------

    def __getitem__(self, index):
        arr = self.acquire(AccessMode.R)
        out = arr[index]
        if isinstance(index, slice) or isinstance(index, np.ndarray):
            return np.array(out)  # detach slices from coherence tracking
        return out

    def __setitem__(self, index, value) -> None:
        self.acquire(AccessMode.RW)[index] = value

    def at(self, index: int) -> ElementProxy:
        """Deferred-access element reference (read *or* write later)."""
        return ElementProxy(self, index)

    def __iter__(self):
        return iter(self.acquire(AccessMode.R))

    def fill(self, value) -> None:
        """Write-only bulk initialisation (no read-back of old contents)."""
        self.acquire(AccessMode.W)[:] = value

    # -- partitioning (for hybrid / multi-device execution) -------------------

    def partition(self, n_chunks: int) -> "list[DataHandle]":
        """Split the handle into ``n_chunks`` row-block children.

        Managed containers partition through the runtime so the access
        is traced (and checkable); detached handles split directly.
        """
        if self._runtime is not None:
            return self._runtime.partition_equal(self.handle, n_chunks, axis=0)
        return self.handle.partition_equal(n_chunks, axis=0)

    def unpartition(self) -> None:
        if self._runtime is None:
            raise ContainerError("unpartition requires a runtime-managed vector")
        self._runtime.unpartition(self.handle)
