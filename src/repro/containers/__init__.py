"""PEPPHER smart containers: Scalar, Vector and Matrix.

Portable, generic, STL-like containers that wrap operand data passed in
and out of components.  Inside the PEPPHER context they keep track of
data copies across memory units and enforce consistency lazily; outside
it they behave as regular containers (paper section IV-D).
"""

from repro.containers.base import SmartContainer
from repro.containers.matrix import Matrix
from repro.containers.proxy import ElementProxy
from repro.containers.scalar import Scalar
from repro.containers.vector import Vector

__all__ = ["ElementProxy", "Matrix", "Scalar", "SmartContainer", "Vector"]
