"""Element proxies: distinguishing read from write accesses.

The paper (footnote 3) distinguishes read and write accesses to container
elements "by implementing proxy classes for element data in C++"
(Alexandrescu's Modern C++ Design idiom).  Python's ``__getitem__`` /
``__setitem__`` split already separates most cases, but compound accesses
like ``v.at(i)`` that will *later* be read or assigned need the same
trick.  :class:`ElementProxy` defers the coherence action to the moment
the element is actually used: converting it to a number is a read,
calling :meth:`set` (or using an in-place operator) is a read-write.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.access import AccessMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.containers.base import SmartContainer


class ElementProxy:
    """Deferred-access reference to one container element."""

    __slots__ = ("_container", "_index")

    def __init__(self, container: "SmartContainer", index) -> None:
        self._container = container
        self._index = index

    # -- read path ---------------------------------------------------------

    @property
    def value(self):
        """Read the element (triggers coherence for a read access)."""
        return self._container.acquire(AccessMode.R)[self._index]

    def __float__(self) -> float:
        return float(self.value)

    def __int__(self) -> int:
        return int(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __eq__(self, other) -> bool:
        if isinstance(other, ElementProxy):
            other = other.value
        return bool(self.value == other)

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __lt__(self, other) -> bool:
        if isinstance(other, ElementProxy):
            other = other.value
        return bool(self.value < other)

    def __le__(self, other) -> bool:
        if isinstance(other, ElementProxy):
            other = other.value
        return bool(self.value <= other)

    def __gt__(self, other) -> bool:
        if isinstance(other, ElementProxy):
            other = other.value
        return bool(self.value > other)

    def __ge__(self, other) -> bool:
        if isinstance(other, ElementProxy):
            other = other.value
        return bool(self.value >= other)

    def __add__(self, other):
        return self.value + other

    def __radd__(self, other):
        return other + self.value

    def __sub__(self, other):
        return self.value - other

    def __rsub__(self, other):
        return other - self.value

    def __mul__(self, other):
        return self.value * other

    def __rmul__(self, other):
        return other * self.value

    def __truediv__(self, other):
        return self.value / other

    def __rtruediv__(self, other):
        return other / self.value

    def __hash__(self) -> int:
        # proxies identify a *location*, not a value snapshot
        return hash((id(self._container), repr(self._index)))

    # -- write path ------------------------------------------------------------

    def set(self, value) -> None:
        """Assign the element (triggers coherence for a write access)."""
        self._container.acquire(AccessMode.RW)[self._index] = value

    def __iadd__(self, other) -> "ElementProxy":
        arr = self._container.acquire(AccessMode.RW)
        arr[self._index] = arr[self._index] + other
        return self

    def __isub__(self, other) -> "ElementProxy":
        arr = self._container.acquire(AccessMode.RW)
        arr[self._index] = arr[self._index] - other
        return self

    def __imul__(self, other) -> "ElementProxy":
        arr = self._container.acquire(AccessMode.RW)
        arr[self._index] = arr[self._index] * other
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ElementProxy {self._container.name}[{self._index}]>"
