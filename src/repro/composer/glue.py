"""The PEPPHER support library that generated code links against.

In the paper, the tool links the application "together with the generated
and compiled stubs, the PEPPHER library and the PEPPHER runtime system".
This module is that PEPPHER library: the pieces of runtime-facing logic
that every generated stub needs but that are not worth regenerating per
component — the current-runtime holder behind ``PEPPHER_INITIALIZE``,
operand coercion (smart containers vs. raw arrays), the C-signature
adapter connecting backend wrappers to the runtime's task-function
calling convention, and codelet construction from descriptor files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.components.implementation import ImplementationDescriptor
from repro.components.interface import InterfaceDescriptor
from repro.components.platform_desc import standard_platforms
from repro.components.xml_io import load_descriptor
from repro.containers.base import SmartContainer
from repro.errors import CompositionError, RuntimeSystemError
from repro.runtime.access import AccessMode
from repro.runtime.codelet import Codelet, ImplVariant
from repro.runtime.data import DataHandle
from repro.runtime.runtime import Runtime


class RuntimeHolder:
    """Holds the session runtime created by ``PEPPHER_INITIALIZE()``."""

    def __init__(self) -> None:
        self._runtime: Runtime | None = None

    def set(self, runtime: Runtime) -> None:
        if self._runtime is not None:
            raise RuntimeSystemError(
                "PEPPHER_INITIALIZE called twice without PEPPHER_SHUTDOWN"
            )
        self._runtime = runtime

    def get(self) -> Runtime:
        if self._runtime is None:
            raise RuntimeSystemError(
                "no runtime: call PEPPHER_INITIALIZE() first"
            )
        return self._runtime

    def clear(self) -> Runtime | None:
        rt, self._runtime = self._runtime, None
        return rt


def make_backend_adapter(interface: InterfaceDescriptor, kernel):
    """Adapt a C-signature kernel to the runtime task-function convention.

    The runtime calls variants as ``fn(ctx, *operand_arrays, *scalars)``
    (the analog of ``void f(void* buffers[], void* arg)``); the actual
    component implementation keeps its original mixed parameter order.
    The backend wrapper unpacks buffers and arguments and delegates.
    """
    operand_names = [p.name for p in interface.operand_params()]
    scalar_names = [p.name for p in interface.scalar_params()]
    order = [p.name for p in interface.params]

    def backend_wrapper(ctx, *args):
        n_ops = len(operand_names)
        buffers = args[:n_ops]
        scalars = args[n_ops:]
        if len(scalars) != len(scalar_names):
            raise RuntimeSystemError(
                f"{interface.name}: expected {len(scalar_names)} scalar "
                f"arguments, got {len(scalars)}"
            )
        by_name = dict(zip(operand_names, buffers))
        by_name.update(zip(scalar_names, scalars))
        return kernel(*(by_name[n] for n in order))

    backend_wrapper.__name__ = f"{interface.name}_backend"
    return backend_wrapper


def lower_component(
    interface: InterfaceDescriptor,
    implementations: Sequence[ImplementationDescriptor],
    platforms=None,
    backend_fns: dict | None = None,
) -> Codelet:
    """Lower one component (interface + variants) to a runtime codelet.

    Component kernels keep their original C-style signature (no ``ctx``);
    the generated backend wrapper adapts them to the runtime's
    task-function convention.  Tunable-parameter expansion yields one
    variant per value combination; tunables are performance knobs, so
    they reach the *cost model* through the context, while the kernel's
    semantics stay value-identical.

    ``backend_fns`` lets generated registries supply their own
    backend-wrapper task functions (keyed by implementation name), so
    the code the tool emitted is what actually executes.
    """
    from repro.components.constraints import make_guard
    from repro.components.prediction import resolve_ref
    from repro.components.tunables import expand_tunables, mangle_tunable_suffix

    platforms = platforms or {p.name: p for p in standard_platforms()}
    codelet = Codelet(
        name=interface.name, performance_aware=interface.use_history_models
    )
    for impl in implementations:
        arch = impl.arch_for(platforms)
        if not impl.kernel_ref or not impl.cost_ref:
            raise CompositionError(
                f"implementation {impl.name!r}: kernel/cost references are "
                "required to lower to a codelet"
            )
        cost = resolve_ref(impl.cost_ref)
        guard = make_guard(list(impl.constraints))
        min_memory, min_cores = _resource_requirements(impl)
        if backend_fns is not None:
            try:
                backend = backend_fns[impl.name]
            except KeyError:
                raise CompositionError(
                    f"no generated backend-wrapper for implementation "
                    f"{impl.name!r}"
                ) from None
        else:
            backend = make_backend_adapter(interface, resolve_ref(impl.kernel_ref))
        for binding in expand_tunables(impl.tunables):
            suffix = mangle_tunable_suffix(binding)
            codelet.add_variant(
                ImplVariant(
                    name=f"{impl.name}{suffix}",
                    arch=arch,
                    fn=backend,
                    cost_model=_bind_cost_tunables(cost, binding),
                    guard=guard,
                    tunables=binding,
                    min_device_memory_bytes=min_memory,
                    min_cores=min_cores,
                )
            )
    if not codelet.variants:
        raise CompositionError(
            f"component {interface.name!r}: lowering produced no variants"
        )
    return codelet


def _resource_requirements(impl: ImplementationDescriptor) -> tuple[int, int]:
    """Translate declared resource requirements into runtime checks.

    The descriptor states resources "in terms of the target platform
    description's name space" (paper section II); the two names the
    standard platforms define are ``gpu_memory_mb`` and ``cores``.
    """
    min_memory = 0
    min_cores = 1
    for req in impl.resources:
        if req.resource == "gpu_memory_mb":
            min_memory = int(req.minimum * 1024 * 1024)
        elif req.resource == "cores":
            min_cores = max(int(req.minimum), 1)
    return min_memory, min_cores


def _bind_cost_tunables(cost, binding: dict[str, object]):
    """Merge a tunable binding into the context seen by the cost model."""
    if not binding:
        return cost

    def bound_cost(ctx, device):
        merged = dict(ctx)
        merged.update(binding)
        return cost(merged, device)

    return bound_cost


def load_component_dir(component_dir: str | Path) -> tuple[
    InterfaceDescriptor, list[ImplementationDescriptor]
]:
    """Read one component directory (interface.xml + per-platform impls)."""
    component_dir = Path(component_dir)
    iface_path = component_dir / "interface.xml"
    if not iface_path.exists():
        raise CompositionError(f"{component_dir}: missing interface.xml")
    interface = load_descriptor(iface_path)
    impls = []
    for path in sorted(component_dir.rglob("*.xml")):
        if path == iface_path:
            continue
        desc = load_descriptor(path)
        if isinstance(desc, ImplementationDescriptor):
            impls.append(desc)
    return interface, impls


def build_codelet_from_dir(component_dir: str | Path) -> Codelet:
    """Descriptor directory -> codelet (used by generated ``_registry``)."""
    interface, impls = load_component_dir(component_dir)
    return lower_component(interface, impls)


# ---------------------------------------------------------------------------
# operand coercion in entry wrappers
# ---------------------------------------------------------------------------

def as_operand(runtime: Runtime, value, name: str = "") -> tuple[DataHandle, bool]:
    """Coerce an entry-wrapper argument to a data handle.

    Returns ``(handle, temporary)``.  Smart containers and handles pass
    through (``temporary=False``).  Raw NumPy arrays — "parameters passed
    using normal C/C++ datatypes" — are registered on the spot and
    flagged temporary: the wrapper must execute synchronously and copy
    the data back to main memory before returning, because the tool
    cannot reason about their access patterns in the application program
    (paper section IV-D).
    """
    if isinstance(value, SmartContainer):
        return value.handle, False
    if isinstance(value, DataHandle):
        return value, False
    if isinstance(value, np.ndarray):
        return runtime.register(value, name=name), True
    raise CompositionError(
        f"argument {name!r}: expected a smart container, data handle or "
        f"numpy array, got {type(value).__name__}"
    )


#: virtual host time one generated entry-wrapper spends packing
#: arguments (the small price of the generated indirection; Figure 7
#: shows it is negligible against hand-written runtime code)
WRAPPER_OVERHEAD_S = 2e-7


def invoke_entry(
    runtime: Runtime,
    codelet: Codelet,
    interface: InterfaceDescriptor,
    args: Sequence,
    sync: bool,
    priority: int = 0,
    dispatch=None,
):
    """Shared entry-wrapper core: pack arguments, create the task.

    Generated entry wrappers call this after laying out their
    positional arguments; it performs the packing/unpacking of the call
    arguments to the runtime task handler (paper section IV-C).

    ``dispatch`` is the statically generated dispatch function
    (``ctx -> variant name``) of fully static composition: when present,
    the call is bound to the variant it returns and the runtime merely
    executes it (section III's off-line constructed dispatch).
    """
    runtime.engine.clock.advance(WRAPPER_OVERHEAD_S)
    params = list(interface.params)
    if len(args) != len(params):
        raise CompositionError(
            f"{interface.name}: expected {len(params)} arguments, got {len(args)}"
        )
    by_name = dict(zip((p.name for p in params), args))
    operands: list[tuple[DataHandle, AccessMode]] = []
    temporaries: list[DataHandle] = []
    for p in interface.operand_params():
        handle, temp = as_operand(runtime, by_name[p.name], p.name)
        operands.append((handle, p.access))
        if temp:
            temporaries.append(handle)
    scalars = tuple(by_name[p.name] for p in interface.scalar_params())
    # the call context carries the *declared* context parameters — the
    # interface names exactly the properties that may influence callee
    # selection (paper section III); other scalars (offsets, time points,
    # coefficients) are payload and stay out of the selection context
    declared = {cp.name for cp in interface.context_params}
    ctx = {
        p.name: by_name[p.name]
        for p in interface.scalar_params()
        if isinstance(by_name[p.name], (int, float))
        and (not declared or p.name in declared)
    }
    force_sync = sync or bool(temporaries)
    if dispatch is not None:
        chosen = dispatch(ctx)
        codelet = codelet.restricted([chosen])
    task = runtime.submit(
        codelet,
        operands,
        ctx=ctx,
        scalar_args=scalars,
        sync=force_sync,
        priority=priority,
        name=interface.name,
    )
    # raw parameters: always copy back to main memory before returning
    for handle in temporaries:
        runtime.unregister(handle)
    return task
