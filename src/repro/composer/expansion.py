"""Generic component expansion (C++-template-style instantiation).

Component expansion supports genericity on the component parameter types
using C++ templates; the expansion takes place statically (paper section
IV-B).  Multiple concrete components are created from a generic component
by binding template type parameters — e.g. a generic ``sort`` becomes
``sort_float`` and ``sort_int`` — each with its own expanded interface
and implementation descriptors sharing the common source module.
"""

from __future__ import annotations

from repro.components.implementation import ImplementationDescriptor
from repro.components.interface import InterfaceDescriptor
from repro.errors import ExpansionError

#: C types a template parameter may legally bind to
_KNOWN_SCALAR_TYPES = {
    "float",
    "double",
    "int",
    "long",
    "unsigned",
    "size_t",
    "char",
    "short",
    "bool",
}


def type_suffix(binding: dict[str, str], type_params: tuple[str, ...]) -> str:
    """Stable mangled suffix for one binding (``{"T": "float"}`` ->
    ``"float"``; multi-parameter bindings join with underscores)."""
    parts = []
    for tp in type_params:
        concrete = binding[tp].replace(" ", "_").replace("*", "p")
        parts.append(concrete)
    return "_".join(parts)


def expand_component(
    interface: InterfaceDescriptor,
    implementations: list[ImplementationDescriptor],
    binding: dict[str, str],
) -> tuple[InterfaceDescriptor, list[ImplementationDescriptor]]:
    """Instantiate one generic component for one type binding.

    Returns the expanded interface plus expanded implementation
    descriptors.  Kernel/cost references stay shared — all instantiations
    come from the same source module, as with C++ templates.
    """
    if not interface.is_generic:
        raise ExpansionError(f"interface {interface.name!r} is not generic")
    missing = set(interface.type_params) - set(binding)
    if missing:
        raise ExpansionError(
            f"interface {interface.name!r}: missing bindings for {sorted(missing)}"
        )
    unknown = set(binding) - set(interface.type_params)
    if unknown:
        raise ExpansionError(
            f"interface {interface.name!r}: unknown type params {sorted(unknown)}"
        )
    for tp, concrete in binding.items():
        base = concrete.replace("*", "").replace("const", "").strip()
        if base not in _KNOWN_SCALAR_TYPES:
            raise ExpansionError(
                f"interface {interface.name!r}: cannot bind {tp}={concrete!r} "
                f"(not a known scalar type)"
            )
    expanded_iface = interface.expand(binding)
    suffix = type_suffix(binding, interface.type_params)
    expanded_impls = [impl.expand_generic(suffix) for impl in implementations]
    return expanded_iface, expanded_impls


def expand_all(
    interface: InterfaceDescriptor,
    implementations: list[ImplementationDescriptor],
    bindings: list[dict[str, str]],
) -> list[tuple[InterfaceDescriptor, list[ImplementationDescriptor]]]:
    """Instantiate a generic component for several bindings at once."""
    if not bindings:
        raise ExpansionError(
            f"interface {interface.name!r}: no type bindings supplied"
        )
    seen: set[tuple] = set()
    out = []
    for binding in bindings:
        key = tuple(sorted(binding.items()))
        if key in seen:
            continue  # idempotent: same instantiation requested twice
        seen.add(key)
        out.append(expand_component(interface, implementations, binding))
    return out
