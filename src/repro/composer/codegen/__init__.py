"""Code generation: wrapper stubs, linking header and Makefile."""

from repro.composer.codegen.header import (
    generate_init_module,
    generate_peppher_module,
    generate_registry_module,
)
from repro.composer.codegen.makefile import generate_build_manifest, generate_makefile
from repro.composer.codegen.stubs import generate_stub_module, stub_module_name

__all__ = [
    "generate_build_manifest",
    "generate_init_module",
    "generate_makefile",
    "generate_peppher_module",
    "generate_registry_module",
    "generate_stub_module",
    "stub_module_name",
]
