"""The composition tool's build orchestration.

Implements the per-interface processing loop of paper section III:

1. read descriptors, build the component-tree IR (expanding generic
   components along the way);
2. apply user-guided static narrowing and — when prediction metadata is
   sufficient and requested — static composition with dispatch tables;
3. generate composition code: one wrapper (stub) file per component, the
   ``peppher`` single-linking-point module and the registry;
4. "call the native compilers" — emit the Makefile and build manifest
   recording every compile/link command — and link everything into a
   :class:`~repro.composer.application.ComposedApplication`.
"""

from __future__ import annotations

from pathlib import Path

from repro.components.main_desc import MainDescriptor
from repro.components.repository import Repository
from repro.components.xml_io import load_descriptor, save_descriptor
from repro.composer.application import ComposedApplication
from repro.composer.codegen.header import (
    generate_init_module,
    generate_peppher_module,
    generate_registry_module,
)
from repro.composer.codegen.makefile import generate_build_manifest, generate_makefile
from repro.composer.codegen.stubs import generate_stub_module, stub_module_name
from repro.composer.explorer import build_ir
from repro.composer.ir import ComponentTree
from repro.composer.narrowing import apply_narrowing
from repro.composer.recipe import Recipe
from repro.composer.static_comp import apply_static_composition
from repro.errors import CompositionError
from repro.hw.presets import by_name


class Composer:
    """The PEPPHER composition tool."""

    def __init__(self, repo: Repository, recipe: Recipe | None = None) -> None:
        self.repo = repo
        self.recipe = recipe or Recipe()

    # -- pipeline phases (usable separately, e.g. by tests) -------------------

    def build_ir(self, main: MainDescriptor) -> ComponentTree:
        """Phase 1: descriptors -> component-tree IR."""
        problems = self.repo.validate()
        if problems:
            raise CompositionError(
                "repository is inconsistent:\n  " + "\n  ".join(problems)
            )
        return build_ir(self.repo, main, self.recipe)

    def process(self, tree: ComponentTree) -> ComponentTree:
        """Phase 2: composition processing on the IR."""
        apply_narrowing(tree)
        if self.recipe.static_dispatch:
            machine = by_name(self.recipe.platform or tree.main.target_platform)
            apply_static_composition(tree, machine)
        tree.check()
        return tree

    def generate(self, tree: ComponentTree, out_dir: str | Path) -> ComposedApplication:
        """Phase 3+4: code generation and deployment."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        component_names = tree.interface_names()

        # deploy descriptors in the paper's directory structure so the
        # generated registry can reload them independently of this repo
        for node in tree.nodes:
            comp_dir = out_dir / "descriptors" / node.name
            save_descriptor(node.interface, comp_dir / "interface.xml")
            for impl in node.implementations:
                save_descriptor(impl, comp_dir / impl.platform / f"{impl.name}.xml")

        # wrapper (stub) files: one per component; fully static
        # composition embeds the compacted dispatch function
        for node in tree.nodes:
            dispatch = None
            if (
                self.recipe.static_dispatch_codegen
                and node.static_choice is not None
            ):
                dispatch = node.static_choice.compact()
            text = generate_stub_module(
                node.interface, node.implementations, dispatch=dispatch
            )
            (out_dir / f"{stub_module_name(node.name)}.py").write_text(text)

        # static narrowing the registry must re-apply when reloading
        narrowing: dict[str, list[str]] = {}
        for node in tree.nodes:
            if node.static_choice is not None:
                narrowing[node.name] = sorted(node.static_choice.winners())

        (out_dir / "_registry.py").write_text(
            generate_registry_module(tree.main.name, component_names, narrowing)
        )
        (out_dir / "peppher.py").write_text(
            generate_peppher_module(tree.main, component_names)
        )
        (out_dir / "__init__.py").write_text(generate_init_module(tree.main.name))
        (out_dir / "Makefile").write_text(
            generate_makefile(tree, self.repo.platforms)
        )
        (out_dir / "build_manifest.json").write_text(
            generate_build_manifest(tree, self.repo.platforms)
        )
        return ComposedApplication(tree, out_dir)

    # -- the one-call front door ------------------------------------------------

    def compose(
        self, main: MainDescriptor | str | Path, out_dir: str | Path
    ) -> ComposedApplication:
        """``compose main.xml`` — the full pipeline.

        ``main`` may be a descriptor object or a path to a ``main.xml``.
        """
        if isinstance(main, (str, Path)):
            desc = load_descriptor(main)
            if not isinstance(desc, MainDescriptor):
                raise CompositionError(
                    f"{main}: expected a main-module descriptor"
                )
            main = desc
        tree = self.build_ir(main)
        self.process(tree)
        return self.generate(tree, out_dir)
