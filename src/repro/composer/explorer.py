"""Repository exploration and bottom-up interface ordering.

The composition tool recursively explores all interfaces and components
that may occur in the given PEPPHER application by browsing the
repository, and processes the set of interfaces bottom-up in reverse
order of their components' required-interfaces relation, lifted to the
interface level (paper section III).
"""

from __future__ import annotations

from repro.components.main_desc import MainDescriptor
from repro.components.repository import Repository
from repro.composer.expansion import expand_component
from repro.composer.ir import ComponentNode, ComponentTree
from repro.composer.recipe import Recipe
from repro.errors import CompositionError


def reachable_interfaces(repo: Repository, roots: tuple[str, ...]) -> dict[str, set[str]]:
    """Transitively explore interfaces reachable from the main program.

    Returns ``{interface: set(required interfaces)}`` where the
    requirement relation is lifted to the interface level (union over
    all implementation variants of the interface).
    """
    graph: dict[str, set[str]] = {}
    stack = list(roots)
    while stack:
        name = stack.pop()
        if name in graph:
            continue
        if not repo.has_interface(name):
            raise CompositionError(
                f"main program references unknown interface {name!r}"
            )
        requires: set[str] = set()
        for impl in repo.implementations_of(name):
            requires.update(impl.requires)
        graph[name] = requires
        stack.extend(requires - graph.keys())
    return graph


def bottom_up_order(graph: dict[str, set[str]]) -> list[str]:
    """Topological order with required interfaces first.

    Deterministic (alphabetical among ties).  Raises on cyclic
    requirement relations, which the component model forbids.
    """
    order: list[str] = []
    state: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, chain: tuple[str, ...]) -> None:
        mark = state.get(name)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join(chain + (name,))
            raise CompositionError(f"cyclic required-interfaces relation: {cycle}")
        state[name] = 0
        for req in sorted(graph[name]):
            visit(req, chain + (name,))
        state[name] = 1
        order.append(name)

    for name in sorted(graph):
        visit(name, ())
    return order


def build_ir(repo: Repository, main: MainDescriptor, recipe: Recipe) -> ComponentTree:
    """Phase 1 of the tool (Figure 2): descriptors -> component-tree IR.

    Reads the descriptors of every component reachable from the main
    program, expands generic interfaces per the recipe's type bindings,
    and arranges nodes bottom-up.  Narrowing and static composition run
    as later passes over the returned IR.
    """
    graph = reachable_interfaces(repo, main.components)
    order = bottom_up_order(graph)
    tree = ComponentTree(main=main, recipe=recipe)
    for name in order:
        interface = repo.interface(name)
        impls = repo.implementations_of(name)
        if interface.is_generic:
            bindings = recipe.bindings_for(name)
            if not bindings:
                raise CompositionError(
                    f"generic interface {name!r} needs type bindings in the "
                    f"composition recipe (type params: {list(interface.type_params)})"
                )
            for binding in bindings:
                exp_iface, exp_impls = expand_component(interface, impls, binding)
                tree.nodes.append(
                    ComponentNode(
                        interface=exp_iface,
                        implementations=list(exp_impls),
                        requires=tuple(sorted(graph[name])),
                    )
                )
        else:
            tree.nodes.append(
                ComponentNode(
                    interface=interface,
                    implementations=list(impls),
                    requires=tuple(sorted(graph[name])),
                )
            )
    return tree
