"""User-guided static composition: narrowing the candidate set.

Static composition refines the composition choices at compile time, in
the extreme case to one candidate per call.  The tool provides simple
switches (e.g. ``disableImpls``) to enable/disable implementations at
composition time without requiring any modifications in the user source
code (paper section IV-A) — e.g. a programmer who statically knows the
problem is large and data-parallel can force the GPU implementation and
remove both dynamic-composition overhead and the risk of a wrong dynamic
selection.
"""

from __future__ import annotations

from repro.composer.ir import ComponentTree
from repro.errors import CompositionError


def apply_narrowing(tree: ComponentTree) -> ComponentTree:
    """Apply the recipe's and main descriptor's narrowing switches.

    Mutates and returns the IR.  Disables come from two places — the
    application's main XML descriptor (``disableImpls`` elements) and the
    composition command line (recipe) — matching the paper's "both per
    component in XML or globally as a command line argument".
    """
    recipe = tree.recipe
    disabled = set(recipe.disable_impls) | set(tree.main.disable_impls)
    enable_only = set(recipe.enable_only)

    all_names = {
        impl.name for node in tree.nodes for impl in node.implementations
    }
    unknown = (disabled | enable_only) - all_names
    if unknown:
        raise CompositionError(
            f"narrowing references unknown implementations: {sorted(unknown)}"
        )

    for node in tree.nodes:
        kept = list(node.implementations)
        if enable_only:
            relevant = {i.name for i in kept} & enable_only
            if relevant:  # enable_only only narrows components it names
                kept = [i for i in kept if i.name in relevant]
        kept = [i for i in kept if i.name not in disabled]
        if not kept:
            raise CompositionError(
                f"component {node.name!r}: narrowing removed every "
                f"implementation variant (disabled: {sorted(disabled)})"
            )
        node.implementations = kept
    return tree
