"""Lookahead planning: globally optimized composition over DAG windows.

The paper composes greedily — every invocation is placed the moment it
becomes ready, by dmda's per-task minimum-completion rule.  Its direct
follow-up ("Optimized Composition", Kessler & Dastgeer) shows that
*planning whole call sequences* over multi-variant components and smart
containers beats greedy selection, because a per-task optimum happily
ping-pongs an operand over PCIe when keeping it device-resident for the
next consumer would be globally cheaper.

:class:`LookaheadScheduler` (policy name ``"lookahead"``) is a
:class:`~repro.runtime.schedulers.bulk.BulkScheduler`: the engine
buffers up to ``window_size`` submitted tasks and hands the window's DAG
to :meth:`plan_window` before committing any placement.  The planner
runs a beam-pruned dynamic program over joint (variant, worker) choices
in submission order (a valid topological order under sequential data
consistency), scoring each prefix with

- kernel time from the learned performance model (never ground truth —
  the same :meth:`~repro.runtime.schedulers.base.EngineView.predict_exec`
  dmda uses, so warm tuning-store models, ``measured``-provenance
  calibration and analytical history all flow in), and
- modeled PCIe transfer costs seeded from the *current* MSI coherence
  state of every operand, with per-(node, direction) link serialization
  mirroring the engine's own estimator.

**Container-aware fusion** (``fusion=True``, the default) threads the
projected residency of intermediates through the plan: when a
producer→consumer pair lands on the same device, the consumer pays no
transfer — the intermediate host round-trip is elided exactly as the
engine's lazy MSI coherence will realize it.  ``fusion=False`` scores
the conservative composition instead (every in-window intermediate is
assumed to materialize on the host before its consumers), which is the
ablation arm of ``experiments/planner.py``.

The planner always simulates a greedy dmda-style baseline under the same
cost model and commits whichever plan has the lower modeled makespan, so
by construction the committed plan's modeled cost never exceeds the
greedy modeled cost (a property the differential suite asserts per
window).  Windows containing any task the model cannot yet price — an
uncalibrated variant, or a ``performance_aware=False`` codelet — are not
planned at all: every task falls back to the inner dmda, which owns the
exploration/calibration semantics.  The same fallback catches tasks that
escape the window (fault-recovery retries on dead placements, stale
plans after a device loss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.hw.description import HOST_NODE
from repro.runtime.schedulers.base import (
    Decision,
    EngineView,
    enumerate_candidates,
)
from repro.runtime.schedulers.bulk import BulkScheduler
from repro.runtime.schedulers.dmda import DmdaScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.task import Task

#: strict-improvement margin: the DP plan replaces the greedy baseline
#: only when its modeled makespan is better by more than this (ties keep
#: the dmda-shaped plan, so lookahead never diverges from dmda for free)
_EPS = 1e-12


@dataclass(frozen=True)
class WindowPlan:
    """Planning outcome for one committed window (introspection/tests)."""

    #: tasks in the window
    n_tasks: int
    #: modeled makespan of the committed plan (None for fallback windows)
    planned_makespan: float | None
    #: modeled makespan of the greedy dmda-style baseline
    greedy_makespan: float | None
    #: producer→consumer pairs whose host round-trip the plan elides
    n_fused_edges: int
    #: (task name, variant name, worker ids) per task, in plan order
    decisions: tuple[tuple[str, str, tuple[int, ...]], ...]
    #: True when the window was not plannable (uncalibrated model or
    #: history-less codelet) and every task fell back to the inner dmda
    fallback: bool


class _SimState:
    """One speculative timeline the planner extends task by task.

    Mirrors exactly the engine state a placement commit would mutate:
    per-worker availability, per-(node, direction) link occupancy, and
    the projected residency (node → ready time) of every handle the
    window touches.
    """

    __slots__ = (
        "avail",
        "link",
        "res",
        "ends",
        "choice",
        "makespan",
        "fused",
        "host_seen",
    )

    def __init__(
        self,
        avail: list[float],
        res: dict[int, dict[int, float]],
    ) -> None:
        self.avail = avail
        self.link: dict[tuple[int, str], float] = {}
        self.res = res
        self.ends: list[float] = []
        self.choice: list[int] = []
        self.makespan = 0.0
        #: (writer plan-index, consumer plan-index) fused edges
        self.fused: list[tuple[int, int]] = []
        #: handle_id -> [host-ready time, writer node, writer plan-index,
        #: host-read-since-write?]
        self.host_seen: dict[int, list] = {}

    def clone(self) -> "_SimState":
        s = _SimState.__new__(_SimState)
        s.avail = list(self.avail)
        s.link = dict(self.link)
        s.res = {hid: dict(nodes) for hid, nodes in self.res.items()}
        s.ends = list(self.ends)
        s.choice = list(self.choice)
        s.makespan = self.makespan
        s.fused = list(self.fused)
        s.host_seen = {hid: list(v) for hid, v in self.host_seen.items()}
        return s


class LookaheadScheduler(BulkScheduler):
    """Window-planning bulk policy (the ``"lookahead"`` name).

    Parameters
    ----------
    window_size:
        Tasks buffered before the engine forces a flush; sync points
        (``wait_for_all``, smart-container accesses, ``unpartition``)
        flush earlier.
    beam_width:
        Speculative timelines kept per planning step.  1 degenerates to
        a greedy pass under the planner's cost model; larger widths
        explore more joint choices at linear cost.
    fusion:
        Thread projected residency of in-window intermediates through
        the plan (elide host round-trips).  ``False`` scores the
        conservative materialize-to-host composition instead.
    calibration_samples:
        Per-(size-bucket, variant) observations required before a task
        counts as plannable; below that the window falls back to the
        inner dmda, which owns exploration (same default as dmda).
    fallback_options:
        Extra keyword arguments for the inner
        :class:`~repro.runtime.schedulers.dmda.DmdaScheduler`.
    """

    name = "lookahead"

    def __init__(
        self,
        window_size: int = 16,
        beam_width: int = 8,
        fusion: bool = True,
        calibration_samples: int = 2,
        fallback_options: dict | None = None,
    ) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        self.window_size = int(window_size)
        self.beam_width = int(beam_width)
        self.fusion = bool(fusion)
        self.calibration_samples = int(calibration_samples)
        self._inner = DmdaScheduler(
            calibration_samples=calibration_samples,
            **dict(fallback_options or {}),
        )
        self._plan: dict[int, Decision] = {}
        #: one record per committed window, in flush order
        self.plans: list[WindowPlan] = []
        # counters (experiments and tests read these)
        self.n_windows = 0
        self.n_planned_windows = 0
        self.n_fallback_windows = 0
        self.n_planned_tasks = 0
        self.n_fallback_tasks = 0
        self.n_fused_edges = 0

    # ------------------------------------------------------------------
    # per-task commit (the engine's choose hot path)
    # ------------------------------------------------------------------

    def choose(self, task: "Task", view: EngineView) -> Decision:
        decision = self._plan.pop(task.task_id, None)
        if decision is not None:
            failed = task.failed_on
            usable = all(
                view.worker_usable(u.unit_id) for u in decision.workers
            )
            if usable and (
                not failed
                or (decision.variant.name, decision.anchor.unit_id)
                not in failed
            ):
                self.n_planned_tasks += 1
                return decision
        # stale plan entry, faulted placement, or a task that escaped
        # the window: dmda decides (and owns exploration accounting)
        self.n_fallback_tasks += 1
        return self._inner.choose(task, view)

    # ------------------------------------------------------------------
    # window planning
    # ------------------------------------------------------------------

    def plan_window(self, tasks: Sequence["Task"], view: EngineView) -> None:
        self.n_windows += 1
        candidates: list[list[Decision]] = []
        plannable = True
        for task in tasks:
            cands = enumerate_candidates(task, view)
            candidates.append(cands)
            if not task.codelet.performance_aware or any(
                not view.is_calibrated(
                    task, d.variant, self.calibration_samples
                )
                for d in cands
            ):
                plannable = False
        if not plannable:
            # calibration phase (or history-less codelets): the inner
            # dmda places every task — identical semantics to running
            # dmda outright, exploration counters included
            self.n_fallback_windows += 1
            self.plans.append(
                WindowPlan(
                    n_tasks=len(tasks),
                    planned_makespan=None,
                    greedy_makespan=None,
                    n_fused_edges=0,
                    decisions=(),
                    fallback=True,
                )
            )
            return

        exec_est = self._exec_estimates(tasks, candidates, view)
        in_deps = self._window_deps(tasks)
        initial = self._initial_state(tasks, view)

        # greedy dmda-style baseline under the identical cost model
        greedy = initial.clone()
        for i, task in enumerate(tasks):
            best_j, best_key = 0, None
            for j, d in enumerate(candidates[i]):
                probe = greedy.clone()
                end = self._apply(
                    probe, i, task, d, exec_est[i][j], in_deps[i], view
                )
                key = (end, d.anchor.unit_id)
                if best_key is None or key < best_key:
                    best_j, best_key = j, key
            self._apply(
                greedy,
                i,
                task,
                candidates[i][best_j],
                exec_est[i][best_j],
                in_deps[i],
                view,
            )
            greedy.choice.append(best_j)

        # beam-pruned DP over joint (variant, worker) choices
        beam = [initial]
        for i, task in enumerate(tasks):
            grown: list[_SimState] = []
            for state in beam:
                for j, d in enumerate(candidates[i]):
                    nxt = state.clone()
                    self._apply(
                        nxt, i, task, d, exec_est[i][j], in_deps[i], view
                    )
                    nxt.choice.append(j)
                    grown.append(nxt)
            grown.sort(
                key=lambda s: (s.makespan, sum(s.avail), tuple(s.choice))
            )
            beam = grown[: self.beam_width]

        best = beam[0]
        chosen = best if best.makespan < greedy.makespan - _EPS else greedy
        self.n_planned_windows += 1
        self.n_fused_edges += len(chosen.fused)
        committed: list[tuple[str, str, tuple[int, ...]]] = []
        for i, task in enumerate(tasks):
            d = candidates[i][chosen.choice[i]]
            self._plan[task.task_id] = d
            committed.append(
                (task.name, d.variant.name, tuple(u.unit_id for u in d.workers))
            )
        self.plans.append(
            WindowPlan(
                n_tasks=len(tasks),
                planned_makespan=chosen.makespan,
                greedy_makespan=greedy.makespan,
                n_fused_edges=len(chosen.fused),
                decisions=tuple(committed),
                fallback=False,
            )
        )

    # ------------------------------------------------------------------
    # cost model internals
    # ------------------------------------------------------------------

    def _exec_estimates(
        self,
        tasks: Sequence["Task"],
        candidates: list[list[Decision]],
        view: EngineView,
    ) -> list[list[float]]:
        """Model-predicted kernel seconds per (task, candidate)."""
        out: list[list[float]] = []
        for task, cands in zip(tasks, candidates):
            row = []
            for d in cands:
                est = view.predict_exec(task, d.variant, d.anchor)
                assert est is not None  # plannable ⇒ calibrated
                row.append(est)
            out.append(row)
        return out

    @staticmethod
    def _window_deps(tasks: Sequence["Task"]) -> list[tuple[int, ...]]:
        """In-window dependency indices per task (submission order)."""
        index = {t.task_id: i for i, t in enumerate(tasks)}
        return [
            tuple(index[d] for d in t.dep_ids if d in index) for t in tasks
        ]

    @staticmethod
    def _initial_state(
        tasks: Sequence["Task"], view: EngineView
    ) -> _SimState:
        """Seed the simulation from live engine state: worker clocks and
        the committed MSI residency of every window operand."""
        avail = list(view.worker_available_times())
        res: dict[int, dict[int, float]] = {}
        for task in tasks:
            for op in task.operands:
                h = op.handle
                if h.handle_id not in res:
                    res[h.handle_id] = {
                        n: h.ready_at(n) for n in h.valid_nodes()
                    }
        return _SimState(avail, res)

    def _transfer(
        self,
        state: _SimState,
        src: int,
        dst: int,
        nbytes: int,
        earliest: float,
        view: EngineView,
    ) -> float:
        """Model one copy src→dst with link serialization; returns the
        arrival time.  Device-to-device stages through the host, like
        the engine's committed transfers."""
        if src != HOST_NODE and dst != HOST_NODE:
            earliest = self._transfer(
                state, src, HOST_NODE, nbytes, earliest, view
            )
            src = HOST_NODE
        direction = "d2h" if dst == HOST_NODE else "h2d"
        link_node = src if dst == HOST_NODE else dst
        key = (link_node, direction)
        busy_until = state.link.get(key)
        if busy_until is None:
            # seed from the live DMA queue: transfers committed by
            # earlier windows may still occupy the link
            busy_until = view.link_available(link_node, direction)
        start = max(earliest, busy_until)
        end = start + view.machine.transfer_time(src, dst, nbytes)
        state.link[key] = end
        return end

    def _apply(
        self,
        state: _SimState,
        i: int,
        task: "Task",
        decision: Decision,
        exec_s: float,
        deps: tuple[int, ...],
        view: EngineView,
    ) -> float:
        """Extend ``state`` with one placement; returns the modeled end."""
        node = decision.anchor.memory_node
        ready = task.earliest_start
        ends = state.ends
        for j in deps:
            e = ends[j]
            if e > ready:
                ready = e
        data_ready = ready
        res = state.res
        for op in task.operands:
            if not op.mode.reads:
                continue
            h = op.handle
            hid = h.handle_id
            rmap = res[hid]
            seen = state.host_seen.get(hid)
            if not self.fusion and seen is not None:
                # conservative composition: the in-window intermediate
                # materializes on the host before any consumer
                t = seen[0]
                if node != HOST_NODE:
                    t = t + view.machine.transfer_time(
                        HOST_NODE, node, h.nbytes
                    )
                if t > data_ready:
                    data_ready = t
                continue
            at_node = rmap.get(node)
            if at_node is not None:
                if at_node > data_ready:
                    data_ready = at_node
                if (
                    self.fusion
                    and node != HOST_NODE
                    and seen is not None
                    and seen[1] == node
                    and not seen[3]
                ):
                    state.fused.append((seen[2], i))
            else:
                # cheapest-ready valid source, host preferred (the
                # engine's pick_source tie-break)
                src, src_ready = HOST_NODE, None
                for n, r in rmap.items():
                    if src_ready is None or r < src_ready:
                        src, src_ready = n, r
                t = self._transfer(
                    state,
                    src,
                    node,
                    h.nbytes,
                    max(ready, src_ready or 0.0),
                    view,
                )
                rmap[node] = t  # staged copy becomes SHARED there
                if t > data_ready:
                    data_ready = t
            if node == HOST_NODE and seen is not None:
                seen[3] = True  # an interleaving host reader
        workers = decision.workers
        worker_free = max(state.avail[u.unit_id] for u in workers)
        start = max(ready, data_ready, worker_free)
        end = start + exec_s
        for u in workers:
            state.avail[u.unit_id] = end
        for op in task.operands:
            if op.mode.writes:
                h = op.handle
                # MSI write: the target node becomes the sole owner
                res[h.handle_id] = {node: end}
                # [host-ready time, device node, writer index, host-read?]
                host_t = (
                    end
                    if node == HOST_NODE
                    else end
                    + view.machine.transfer_time(node, HOST_NODE, h.nbytes)
                )
                state.host_seen[h.handle_id] = [host_t, node, i, False]
        ends.append(end)
        if end > state.makespan:
            state.makespan = end
        return end
