"""The PEPPHER composition tool (the paper's primary contribution).

Explores the application's components and their implementation variants
through the repository, builds a component-tree IR, performs composition
processing (generic expansion, user-guided narrowing, static composition
with dispatch tables) and generates the low-level code that interacts
with the runtime system: entry/backend wrapper stubs, the single linking
point ``peppher`` module, a Makefile and a build manifest.  Utility mode
generates component skeletons from plain C/C++ declarations.
"""

from repro.composer.application import ComposedApplication
from repro.composer.builder import Composer
from repro.composer.compaction import DecisionTreeDispatch, compact_dispatch_table
from repro.composer.expansion import expand_all, expand_component
from repro.composer.explorer import bottom_up_order, build_ir, reachable_interfaces
from repro.composer.glue import (
    RuntimeHolder,
    invoke_entry,
    lower_component,
    make_backend_adapter,
)
from repro.composer.ir import ComponentNode, ComponentTree
from repro.composer.narrowing import apply_narrowing
from repro.composer.recipe import Recipe
from repro.composer.static_comp import (
    DispatchEntry,
    DispatchTable,
    apply_static_composition,
    build_dispatch_table,
)
from repro.composer.training import TrainingReport, train_dispatch_table
from repro.composer.utility import generate_component_files, generate_from_decls

__all__ = [
    "ComposedApplication",
    "ComponentNode",
    "ComponentTree",
    "Composer",
    "DecisionTreeDispatch",
    "compact_dispatch_table",
    "DispatchEntry",
    "DispatchTable",
    "Recipe",
    "RuntimeHolder",
    "TrainingReport",
    "train_dispatch_table",
    "apply_narrowing",
    "apply_static_composition",
    "bottom_up_order",
    "build_dispatch_table",
    "build_ir",
    "expand_all",
    "expand_component",
    "generate_component_files",
    "generate_from_decls",
    "invoke_entry",
    "lower_component",
    "make_backend_adapter",
    "reachable_interfaces",
]
