"""``compose`` — the composition tool's command-line front-end.

Usage mirrors the paper's section V-A workflow::

    compose --generateCompFiles=spmv.h        # utility mode (skeletons)
    compose main.xml                          # build the application
    compose main.xml --disableImpls=spmv_cpu  # user-guided narrowing
    compose main.xml --static-dispatch        # static composition
    compose --describe-machine c2050          # inspect a platform preset
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.components.repository import Repository
from repro.components.xml_io import load_descriptor
from repro.components.main_desc import MainDescriptor
from repro.composer.builder import Composer
from repro.composer.recipe import Recipe
from repro.composer.utility import generate_component_files
from repro.errors import PeppherError
from repro.hw.presets import by_name, PRESETS
from repro.hw.zoo import ZOO_PRESETS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="compose",
        description="PEPPHER composition tool (reproduction)",
    )
    parser.add_argument(
        "main",
        nargs="?",
        help="path to the application's main XML descriptor",
    )
    parser.add_argument(
        "--generateCompFiles",
        metavar="HEADER",
        help="utility mode: generate component skeleton files from a "
        "C/C++ header file",
    )
    parser.add_argument(
        "--repo",
        default=".",
        help="component repository root to scan (default: current directory)",
    )
    parser.add_argument(
        "--out",
        default="composed",
        help="output directory for generated code (default: ./composed)",
    )
    parser.add_argument(
        "--disableImpls",
        default="",
        metavar="NAMES",
        help="comma-separated implementation variants to disable "
        "(user-guided static composition)",
    )
    parser.add_argument(
        "--enableOnly",
        default="",
        metavar="NAMES",
        help="keep only these implementation variants",
    )
    parser.add_argument(
        "--scheduler",
        default=None,
        help="runtime scheduling policy override (eager/random/ws/dm/dmda)",
    )
    parser.add_argument(
        "--platform",
        default=None,
        choices=sorted(PRESETS),
        help="target machine preset override",
    )
    parser.add_argument(
        "--static-dispatch",
        action="store_true",
        help="build static dispatch tables from prediction metadata and "
        "narrow candidates to the scenario winners",
    )
    parser.add_argument(
        "--static-dispatch-codegen",
        action="store_true",
        help="with --static-dispatch: embed the compacted dispatch "
        "function in the generated stubs (fully static composition)",
    )
    parser.add_argument(
        "--no-history-models",
        action="store_true",
        help="disable performance-aware dynamic selection (useHistoryModels)",
    )
    parser.add_argument(
        "--describe-machine",
        metavar="PRESET",
        choices=sorted(PRESETS) + sorted(ZOO_PRESETS),
        help="print a platform or device-zoo preset description and exit",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_repo",
        help="list the repository's interfaces, implementations and "
        "main descriptors, then exit",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true", help="print the composed IR"
    )
    return parser


def _split(names: str) -> tuple[str, ...]:
    return tuple(n.strip() for n in names.split(",") if n.strip())


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.describe_machine:
            print(by_name(args.describe_machine).summary())
            return 0

        if args.list_repo:
            repo = Repository.scan(args.repo, with_standard_platforms=True)
            for iface in repo.interface_names():
                impls = repo.implementations_of(iface)
                desc = repo.interface(iface)
                generic = (
                    f" <generic: {', '.join(desc.type_params)}>"
                    if desc.is_generic
                    else ""
                )
                print(f"{iface}{generic}")
                for impl in impls:
                    print(f"  {impl.name}  [{impl.platform}]")
            mains = repo.main_names()
            if mains:
                print("main descriptors: " + ", ".join(mains))
            problems = repo.validate()
            if problems:
                print("problems:")
                for p in problems:
                    print(f"  {p}")
                return 1
            return 0

        if args.generateCompFiles:
            created = generate_component_files(
                args.generateCompFiles, args.out
            )
            print(f"generated {len(created)} skeleton files under {args.out}:")
            for path in created:
                print(f"  {path}")
            return 0

        if not args.main:
            parser.error("either a main descriptor or --generateCompFiles is required")

        main_path = Path(args.main)
        desc = load_descriptor(main_path)
        if not isinstance(desc, MainDescriptor):
            print(f"error: {main_path} is not a main-module descriptor", file=sys.stderr)
            return 2
        repo = Repository.scan(args.repo, with_standard_platforms=True)
        recipe = Recipe(
            disable_impls=_split(args.disableImpls),
            enable_only=_split(args.enableOnly),
            scheduler=args.scheduler,
            use_history_models=not args.no_history_models,
            static_dispatch=args.static_dispatch or args.static_dispatch_codegen,
            static_dispatch_codegen=args.static_dispatch_codegen,
            platform=args.platform,
        )
        composer = Composer(repo, recipe)
        tree = composer.build_ir(desc)
        composer.process(tree)
        if args.verbose:
            print(tree.describe())
        app = composer.generate(tree, args.out)
        print(
            f"composed application {app.name!r}: "
            f"{len(app.artefact_files())} artefacts in {app.out_dir}"
        )
        return 0
    except PeppherError as exc:
        print(f"compose: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
