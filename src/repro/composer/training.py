"""Training executions for static composition.

Figure 2 lists "training executions to prepare for composition
decisions" among the IR's uses (only partly supported in the paper's
prototype; completed here).  Instead of *evaluating prediction
functions*, the tool actually *runs* each candidate variant on the
target platform for every training scenario — on our simulated machine —
and builds the dispatch table from measured (noisy) times, the way
Kessler/Löwe-style off-line training works.

The application supplies an operand factory per component, because only
it knows how to materialise realistic inputs for a context instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.components.context import ContextInstance, training_scenarios
from repro.components.implementation import ImplementationDescriptor
from repro.components.interface import InterfaceDescriptor
from repro.composer.glue import lower_component
from repro.composer.static_comp import DispatchEntry, DispatchTable
from repro.errors import CompositionError, SchedulingError
from repro.hw.description import Machine
from repro.runtime.perfmodel import PerfModel
from repro.runtime.runtime import Runtime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuning.store import PerfModelStore

#: operand factory: (ctx, runtime) -> (operands [(handle, mode)], scalar_args)
OperandFactory = Callable[[Mapping[str, object], Runtime], tuple[list, tuple]]


@dataclass
class TrainingReport:
    """Everything one training campaign measured."""

    interface_name: str
    repetitions: int
    #: (scenario, variant name) -> mean measured seconds
    measurements: dict[tuple[ContextInstance, str], float] = field(
        default_factory=dict
    )
    skipped: list[tuple[ContextInstance, str, str]] = field(default_factory=list)
    table: DispatchTable | None = None

    def describe(self) -> str:
        lines = [
            f"training report for {self.interface_name!r} "
            f"({self.repetitions} repetitions per point):"
        ]
        scenarios = sorted(
            {s for s, _ in self.measurements}, key=lambda s: sorted(s.items())
        )
        for scenario in scenarios:
            lines.append(f"  {dict(scenario)}:")
            entries = sorted(
                (
                    (v, t)
                    for (s, v), t in self.measurements.items()
                    if s == scenario
                ),
                key=lambda e: e[1],
            )
            for variant, t in entries:
                lines.append(f"    {variant:<28s} {t * 1e3:9.4f} ms")
        if self.skipped:
            lines.append(f"  skipped: {len(self.skipped)} (infeasible/guarded)")
        return "\n".join(lines)


def train_dispatch_table(
    interface: InterfaceDescriptor,
    implementations: Sequence[ImplementationDescriptor],
    machine_factory: Callable[[], Machine],
    make_operands: OperandFactory,
    scenarios: Sequence[ContextInstance] | None = None,
    points_per_param: int = 3,
    repetitions: int = 3,
    seed: int = 0,
    run_kernels: bool = False,
    store: "PerfModelStore | None" = None,
) -> TrainingReport:
    """Run training executions and build an empirical dispatch table.

    Every selectable variant is executed ``repetitions`` times per
    training scenario on a fresh runtime (cold data: the measurement
    includes the transfers a single invocation pays).  The per-scenario
    winner is the variant with the lowest mean measured time.

    With ``store``, every training execution's observations accumulate
    into one shared performance model that is merged back into the
    machine's store entry, and the finished dispatch table is persisted
    alongside it — later sessions warm-start from both.
    """
    if repetitions < 1:
        raise CompositionError("training needs at least one repetition")
    codelet_all = lower_component(interface, implementations)
    shared_model: PerfModel | None = None
    store_machine: Machine | None = None
    if store is not None:
        store_machine = machine_factory()
        shared_model = store.warm_model(
            store_machine, codelets=[codelet_all.name]
        )
    if scenarios is None:
        scenarios = training_scenarios(
            interface.context_params, points_per_param
        )
    report = TrainingReport(interface_name=interface.name, repetitions=repetitions)
    table = DispatchTable(interface_name=interface.name)
    for scenario in scenarios:
        ctx = scenario.as_dict()
        predictions: list[tuple[str, float]] = []
        for variant in codelet_all.variants:
            if not variant.selectable(ctx):
                report.skipped.append((scenario, variant.name, "guard"))
                continue
            restricted = codelet_all.restricted([variant.name])
            times = []
            try:
                for rep in range(repetitions):
                    rt = Runtime(
                        machine_factory(),
                        scheduler="eager",
                        seed=seed + rep,
                        run_kernels=run_kernels,
                        perfmodel=shared_model,
                    )
                    operands, scalar_args = make_operands(ctx, rt)
                    start = rt.now
                    rt.submit(
                        restricted,
                        operands,
                        ctx=ctx,
                        scalar_args=scalar_args,
                        sync=True,
                        name=f"train:{variant.name}",
                    )
                    times.append(rt.now - start)
                    rt.shutdown()
            except SchedulingError:
                report.skipped.append((scenario, variant.name, "infeasible"))
                continue
            mean = sum(times) / len(times)
            report.measurements[(scenario, variant.name)] = mean
            predictions.append((variant.name, mean))
        if not predictions:
            continue
        predictions.sort(key=lambda p: (p[1], p[0]))
        best_name, best_time = predictions[0]
        table.entries.append(
            DispatchEntry(
                scenario=scenario,
                variant=best_name,
                predicted_time=best_time,
                all_predictions=tuple(predictions),
            )
        )
    report.table = table
    if store is not None and store_machine is not None and shared_model is not None:
        store.save(
            store_machine,
            shared_model,
            provenance={
                codelet_all.name: {
                    "driver": "train-dispatch-table",
                    "interface": interface.name,
                    "repetitions": repetitions,
                    "scenarios": [dict(s) for s in scenarios],
                }
            },
        )
        store.save_dispatch_table(store_machine, table)
    return report
