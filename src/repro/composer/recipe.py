"""Composition recipes: the options driving one composition run.

The IR "incorporates information not only from the XML descriptors but
also information given at composition time (i.e., composition recipe)"
(paper section IV).  A recipe captures the CLI switches: user-guided
static narrowing (``disableImpls``), scheduler selection, history-model
toggles, generic-type bindings for component expansion, and static
composition controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Recipe:
    """Composition-time options.

    Attributes
    ----------
    disable_impls:
        Implementation variant names excluded from composition without
        modifying user source code (``compose --disableImpls=...``,
        paper section IV-A).
    enable_only:
        When non-empty, keep *only* these variants (stronger form of
        user-guided static composition: in the extreme case one
        candidate per call).
    type_bindings:
        Per-interface generic type bindings for component expansion,
        e.g. ``{"sort": [{"T": "float"}, {"T": "int"}]}``.
    scheduler:
        Runtime policy override (otherwise the main descriptor's).
    use_history_models:
        Enable performance-aware dynamic selection globally
        (``useHistoryModels``, section IV-G).  When disabled, the
        runtime falls back to the eager policy.
    static_dispatch:
        Build an off-line dispatch table from prediction metadata and
        narrow each call to the statically expected best variant
        (multi-stage composition, section III).
    static_dispatch_codegen:
        With ``static_dispatch``: additionally embed the compacted
        dispatch *function* in the generated stubs, binding every call
        to its statically expected best variant — fully static
        composition ("in the extreme case one possible candidate per
        call and context instance").
    training_points_per_param:
        Context scenarios per context parameter when constructing
        static dispatch tables.
    platform:
        Target machine preset override (otherwise the main descriptor's).
    seed:
        Seed threaded into the runtime for reproducibility.
    """

    disable_impls: tuple[str, ...] = ()
    enable_only: tuple[str, ...] = ()
    type_bindings: tuple[tuple[str, tuple[tuple[str, str], ...]], ...] = ()
    scheduler: str | None = None
    use_history_models: bool = True
    static_dispatch: bool = False
    static_dispatch_codegen: bool = False
    training_points_per_param: int = 4
    platform: str | None = None
    seed: int = 0

    def bindings_for(self, interface_name: str) -> list[dict[str, str]]:
        """Generic type bindings requested for one interface."""
        return [
            dict(binding)
            for name, binding in self.type_bindings
            if name == interface_name
        ]

    def with_bindings(
        self, interface_name: str, *bindings: dict[str, str]
    ) -> "Recipe":
        """A copy with additional expansion bindings (builder-style API)."""
        extra = tuple(
            (interface_name, tuple(sorted(b.items()))) for b in bindings
        )
        return replace(self, type_bindings=self.type_bindings + extra)
