"""The component-tree intermediate representation (IR).

Like typical compiler frameworks, the composition tool decouples
composition processing from the XML schema by introducing an intermediate
component-tree representation of the metadata for the processed component
interfaces and implementations (paper section IV, Figure 2).  The IR can
be processed for expansion, training executions, static composition and
code generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.components.implementation import ImplementationDescriptor
from repro.components.interface import InterfaceDescriptor
from repro.components.main_desc import MainDescriptor
from repro.composer.recipe import Recipe
from repro.errors import CompositionError


@dataclass
class ComponentNode:
    """One interface with its candidate implementations and requirements.

    Attributes
    ----------
    interface:
        The (possibly expanded, non-generic) interface descriptor.
    implementations:
        Candidate implementation descriptors after narrowing.
    requires:
        Names of interfaces any of the implementations call (the
        requirement relation lifted to the interface level).
    static_choice:
        Set by static composition: the variant name selected per context
        scenario, or a single unconditional choice.
    """

    interface: InterfaceDescriptor
    implementations: list[ImplementationDescriptor] = field(default_factory=list)
    requires: tuple[str, ...] = ()
    static_choice: "object | None" = None  # DispatchTable, set by static_comp

    @property
    def name(self) -> str:
        return self.interface.name

    def implementation(self, name: str) -> ImplementationDescriptor:
        for impl in self.implementations:
            if impl.name == name:
                return impl
        raise CompositionError(
            f"component {self.name!r} has no implementation {name!r}"
        )

    def check(self) -> None:
        if not self.implementations:
            raise CompositionError(
                f"component {self.name!r}: no implementation variant left "
                "after narrowing — composition impossible"
            )


@dataclass
class ComponentTree:
    """The whole application's IR.

    ``nodes`` is ordered bottom-up: every node appears *after* the nodes
    it requires (the tool processes interfaces in reverse order of the
    requirement relation, paper section III).
    """

    main: MainDescriptor
    recipe: Recipe
    nodes: list[ComponentNode] = field(default_factory=list)

    def node(self, interface_name: str) -> ComponentNode:
        for n in self.nodes:
            if n.name == interface_name:
                return n
        raise CompositionError(f"IR has no component {interface_name!r}")

    def has_node(self, interface_name: str) -> bool:
        return any(n.name == interface_name for n in self.nodes)

    def interface_names(self) -> list[str]:
        return [n.name for n in self.nodes]

    def check(self) -> None:
        """Validate composability of the whole tree."""
        seen: set[str] = set()
        for node in self.nodes:
            node.check()
            for req in node.requires:
                if req not in seen:
                    raise CompositionError(
                        f"IR order violated: {node.name!r} requires {req!r} "
                        "which has not been processed yet"
                    )
            seen.add(node.name)

    def describe(self) -> str:
        """Human-readable dump (the tool's verbose mode)."""
        lines = [f"application {self.main.name!r}: {len(self.nodes)} components"]
        for node in self.nodes:
            impls = ", ".join(
                f"{i.name}@{i.platform}" for i in node.implementations
            )
            req = f" requires {list(node.requires)}" if node.requires else ""
            lines.append(f"  {node.name}: [{impls}]{req}")
        return "\n".join(lines)
