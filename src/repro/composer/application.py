"""The composed application artefact.

``Composer.compose`` deploys the components and "builds an executable
application": a generated Python package on disk (stubs + registry +
peppher module + Makefile + deployed descriptors) plus this handle
object, which can import the generated package and drive it — the
reproduction's analog of running the linked executable.
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
from pathlib import Path
from types import ModuleType

from repro.composer.ir import ComponentTree
from repro.errors import CompositionError


class ComposedApplication:
    """Handle to one composed (built) application."""

    def __init__(self, tree: ComponentTree, out_dir: Path) -> None:
        self.tree = tree
        self.out_dir = Path(out_dir)
        self._package: ModuleType | None = None

    @property
    def name(self) -> str:
        return self.tree.main.name

    @property
    def package_name(self) -> str:
        """Unique import name for the generated package."""
        return f"peppher_app_{self.name}"

    def artefact_files(self) -> list[str]:
        """Relative paths of every generated artefact."""
        return sorted(
            str(p.relative_to(self.out_dir))
            for p in self.out_dir.rglob("*")
            if p.is_file()
        )

    def import_generated(self) -> ModuleType:
        """Import the generated package (idempotent)."""
        if self._package is not None:
            return self._package
        init_path = self.out_dir / "__init__.py"
        if not init_path.exists():
            raise CompositionError(
                f"application {self.name!r}: no generated package at {self.out_dir}"
            )
        # a previous compose into a different directory may have claimed
        # the name; evict stale modules so the fresh artefacts load
        stale = [
            mod
            for mod in sys.modules
            if mod == self.package_name or mod.startswith(self.package_name + ".")
        ]
        for mod in stale:
            del sys.modules[mod]
        spec = importlib.util.spec_from_file_location(
            self.package_name,
            init_path,
            submodule_search_locations=[str(self.out_dir)],
        )
        if spec is None or spec.loader is None:
            raise CompositionError(
                f"cannot load generated package from {self.out_dir}"
            )
        package = importlib.util.module_from_spec(spec)
        sys.modules[self.package_name] = package
        spec.loader.exec_module(package)
        self._package = package
        return package

    @property
    def peppher(self) -> ModuleType:
        """The generated ``peppher`` module (single linking point)."""
        self.import_generated()
        return importlib.import_module(f"{self.package_name}.peppher")

    def initialize(self, **options):
        """``PEPPHER_INITIALIZE()`` on the generated application."""
        return self.peppher.PEPPHER_INITIALIZE(**options)

    def shutdown(self) -> float:
        """``PEPPHER_SHUTDOWN()`` on the generated application."""
        return self.peppher.PEPPHER_SHUTDOWN()

    def entry(self, component: str):
        """The generated entry-wrapper for one component."""
        module = self.peppher
        try:
            return getattr(module, component)
        except AttributeError:
            raise CompositionError(
                f"application {self.name!r} has no component {component!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ComposedApplication {self.name!r} at {self.out_dir}>"
