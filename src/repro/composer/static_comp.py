"""Static composition: off-line dispatch tables from prediction metadata.

Static composition constructs off-line a dispatch function that is
evaluated at runtime for a context instance to return the expected best
implementation variant (paper section III).  If sufficient performance
prediction metadata is available, the tool constructs performance data
and dispatch tables by evaluating the prediction functions for selected
context scenarios.  Composition can be multi-stage: static composition
narrows the candidate set to the per-scenario winners, and the runtime
takes the final choice among those (the "registered with the
context-aware runtime system" path).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.components.context import ContextInstance, training_scenarios
from repro.components.prediction import PredictionFunction
from repro.composer.ir import ComponentNode, ComponentTree
from repro.errors import CompositionError
from repro.hw.devices import DeviceSpec
from repro.hw.description import Machine
from repro.hw.noise import NoiseModel
from repro.runtime.archs import Arch


@dataclass(frozen=True)
class DispatchEntry:
    """Winner for one training scenario."""

    scenario: ContextInstance
    variant: str
    predicted_time: float
    all_predictions: tuple[tuple[str, float], ...] = ()


@dataclass
class DispatchTable:
    """Per-component static dispatch: context scenario -> best variant.

    ``lookup`` matches a concrete call context to the nearest training
    scenario in log-space over the shared numeric context properties —
    a simple instance of the paper's "compacted by machine learning
    techniques" compaction (nearest-neighbour over the scenario grid).
    """

    interface_name: str
    entries: list[DispatchEntry] = field(default_factory=list)

    def winners(self) -> set[str]:
        """All variants that win at least one scenario (the narrowed
        candidate set for multi-stage composition)."""
        return {e.variant for e in self.entries}

    @property
    def unconditional(self) -> str | None:
        """The single winner, if one variant wins every scenario."""
        w = self.winners()
        return next(iter(w)) if len(w) == 1 else None

    def lookup(self, ctx: Mapping[str, object]) -> str:
        """Dispatch-function evaluation for a concrete call context."""
        if not self.entries:
            raise CompositionError(
                f"dispatch table for {self.interface_name!r} is empty"
            )
        best = min(
            self.entries,
            key=lambda e: (_scenario_distance(e.scenario, ctx), e.variant),
        )
        return best.variant

    def compact(self, max_depth: int = 6):
        """Distil this table into a decision tree (section III's
        "compacted by machine learning techniques"); see
        :mod:`repro.composer.compaction`."""
        from repro.composer.compaction import compact_dispatch_table

        return compact_dispatch_table(self, max_depth=max_depth)

    def describe(self) -> str:
        lines = [f"dispatch table for {self.interface_name!r}:"]
        for e in self.entries:
            lines.append(
                f"  {dict(e.scenario)} -> {e.variant} "
                f"({e.predicted_time * 1e3:.4f} ms)"
            )
        return "\n".join(lines)


def _scenario_distance(scenario: ContextInstance, ctx: Mapping[str, object]) -> float:
    """Log-space Euclidean distance over shared numeric properties."""
    dist = 0.0
    shared = 0
    for key in scenario:
        sval = scenario[key]
        cval = ctx.get(key)
        if isinstance(sval, (int, float)) and isinstance(cval, (int, float)):
            shared += 1
            a = math.log(max(float(sval), 1e-12))
            b = math.log(max(float(cval), 1e-12))
            dist += (a - b) ** 2
    if shared == 0:
        return float("inf") if len(scenario) else 0.0
    return math.sqrt(dist)


# ---------------------------------------------------------------------------
# table construction
# ---------------------------------------------------------------------------

def _device_for_arch(machine: Machine, arch: Arch) -> DeviceSpec | None:
    """The device a variant of ``arch`` would execute on."""
    if arch in (Arch.CPU, Arch.OPENMP):
        units = machine.cpu_units
    else:
        units = machine.gpu_units
    return units[0].device if units else None


def _prediction_for(impl, fallback_cost_ref: bool = True) -> PredictionFunction | None:
    """The implementation's prediction function.

    Prefers the programmer-provided ``prediction_ref``; falls back to the
    analytic cost model reference, which plays the role of the "expert
    programmer" prediction the paper assumes when no micro-benchmark
    table exists.
    """
    pred = impl.prediction()
    if pred is not None:
        return pred
    if fallback_cost_ref and impl.cost_ref:
        return PredictionFunction.from_ref(impl.cost_ref)
    return None


def build_dispatch_table(
    node: ComponentNode,
    machine: Machine,
    points_per_param: int = 4,
    training_repetitions: int = 1,
    noise: NoiseModel | None = None,
    store=None,
) -> DispatchTable:
    """Evaluate predictions over training scenarios and record winners.

    ``training_repetitions > 1`` emulates *training executions*: each
    prediction is sampled that many times under timing noise and
    averaged, as a real off-line training run would.

    With ``store`` (a :class:`~repro.tuning.store.PerfModelStore`), a
    dispatch table previously *trained from measurements* on this
    machine (see :func:`~repro.composer.training.train_dispatch_table`)
    is preferred over evaluating analytic predictions — measured data
    beats expert estimates, and the winners reflect the actual machine.
    """
    from repro.components.platform_desc import standard_platforms

    if store is not None:
        stored = store.load_dispatch_table(machine, node.name)
        if stored is not None and stored.entries:
            return stored

    platforms = {p.name: p for p in standard_platforms()}
    decls = node.interface.context_params
    scenarios = training_scenarios(decls, points_per_param)
    table = DispatchTable(interface_name=node.name)
    ncores = max(len(machine.cpu_units), 1)
    for scenario in scenarios:
        predictions: list[tuple[str, float]] = []
        for impl in node.implementations:
            pred = _prediction_for(impl)
            if pred is None:
                continue  # no prediction metadata: cannot place statically
            arch = impl.arch_for(platforms)
            device = _device_for_arch(machine, arch)
            if device is None:
                continue  # e.g. CUDA variant on a CPU-only machine
            ctx = scenario.as_dict()
            if arch is Arch.OPENMP:
                ctx["ncores"] = ncores
            try:
                times = []
                for _ in range(max(training_repetitions, 1)):
                    t = pred.predict(ctx, device)
                    if noise is not None:
                        t = noise.perturb(t)
                    times.append(t)
                t_mean = sum(times) / len(times)
            except Exception:
                continue  # prediction not applicable to this scenario
            guard_ok = all(c.evaluate(ctx) for c in impl.constraints)
            if not guard_ok:
                continue
            predictions.append((impl.name, t_mean))
        if not predictions:
            continue  # insufficient metadata for this scenario
        predictions.sort(key=lambda p: (p[1], p[0]))
        best_name, best_time = predictions[0]
        table.entries.append(
            DispatchEntry(
                scenario=scenario,
                variant=best_name,
                predicted_time=best_time,
                all_predictions=tuple(predictions),
            )
        )
    return table


def apply_static_composition(
    tree: ComponentTree, machine: Machine, store=None
) -> ComponentTree:
    """Run static composition over the IR (multi-stage narrowing).

    For every component with enough prediction metadata, compute the
    dispatch table, attach it to the node, and narrow the candidate set
    to the scenario winners.  Components without metadata keep their
    full candidate set and are composed dynamically (the default).
    ``store`` lets nodes with previously trained tables reuse them (see
    :func:`build_dispatch_table`).
    """
    for node in tree.nodes:
        table = build_dispatch_table(
            node,
            machine,
            points_per_param=tree.recipe.training_points_per_param,
            store=store,
        )
        if not table.entries:
            continue
        node.static_choice = table
        winners = table.winners()
        node.implementations = [
            impl for impl in node.implementations if impl.name in winners
        ]
        node.check()
    return tree
