"""Measured provenance in PerfModel, the store, and calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import sgemm
from repro.components.context import ContextInstance
from repro.errors import RuntimeSystemError
from repro.hw.presets import platform_c2050
from repro.runtime.perfmodel import PerfModel
from repro.tuning.calibrate import calibrate_component
from repro.tuning.store import PerfModelStore

FP = ("axpy", 1024)


def test_record_provenances_are_separate_populations():
    m = PerfModel()
    m.record(FP, "v", 100.0, 1e-3)  # analytical default
    m.record(FP, "v", 100.0, 5e-2, provenance="measured")
    assert m.n_samples(FP, "v") == 1
    assert m.n_samples(FP, "v", provenance="measured") == 1
    assert m.predict(FP, "v", 100.0) == pytest.approx(1e-3)
    assert m.predict(FP, "v", 100.0, provenance="measured") == pytest.approx(5e-2)
    assert m.measured_variants() == {"v"}


def test_unknown_provenance_raises():
    m = PerfModel()
    with pytest.raises(RuntimeSystemError, match="provenance"):
        m.record(FP, "v", 100.0, 1e-3, provenance="vibes")
    with pytest.raises(RuntimeSystemError, match="provenance"):
        m.predict(FP, "v", 100.0, provenance="vibes")


def test_round_trip_preserves_measured_tables(tmp_path):
    m = PerfModel()
    for s in (64.0, 128.0, 256.0, 512.0):
        m.record(FP, "v", s, s * 1e-5)
        m.record(FP, "v", s, s * 1e-3, provenance="measured")
    path = tmp_path / "model.json"
    m.save(path)
    loaded = PerfModel.load(path)
    assert loaded.n_samples(FP, "v", provenance="measured") == 4
    assert loaded.predict(
        FP, "v", 128.0, provenance="measured"
    ) == pytest.approx(m.predict(FP, "v", 128.0, provenance="measured"))


def test_to_dict_omits_measured_keys_when_empty():
    m = PerfModel()
    m.record(FP, "v", 100.0, 1e-3)
    d = m.to_dict()
    assert "measured_history" not in d
    assert "measured_regression" not in d


def test_merge_from_carries_measured_samples():
    a, b = PerfModel(), PerfModel()
    b.record(FP, "v", 100.0, 2e-2, provenance="measured")
    a.merge_from(b)
    assert a.n_samples(FP, "v", provenance="measured") == 1


def test_subset_for_codelets_keeps_measured_only_variants():
    m = PerfModel()
    m.record(("axpy", 64), "axpy_cpu", 64.0, 1e-2, provenance="measured")
    m.record(("gemm", 64), "gemm_cpu", 64.0, 1e-2)
    sub = m.subset_for_codelets({"axpy"})
    assert sub.measured_variants() == {"axpy_cpu"}
    assert sub.n_samples(("gemm", 64), "gemm_cpu") == 0


def test_store_round_trips_measured_tables(tmp_path):
    store = PerfModelStore(tmp_path)
    machine = platform_c2050()
    m = PerfModel()
    m.record(("axpy", 64), "axpy_cpu", 64.0, 1e-2, provenance="measured")
    m.record(("axpy", 64), "axpy_cpu", 64.0, 1e-3)
    store.save(machine, m)
    warm = store.warm_model(machine)
    assert warm.n_samples(("axpy", 64), "axpy_cpu", provenance="measured") == 1


def test_calibrate_component_with_thread_backend_collects_measured():
    ladder = [
        ContextInstance({"m": 24, "n": 24, "k": 24}),
        ContextInstance({"m": 48, "n": 48, "k": 48}),
    ]
    report = calibrate_component(
        sgemm.INTERFACE,
        sgemm.IMPLEMENTATIONS,
        platform_c2050,
        sgemm.training_operands,
        ladder=ladder,
        repetitions=1,
        exec_backend="thread",  # implies run_kernels=True
    )
    assert report.exec_backend == "thread"
    measured = {
        name: vc.measured_runs for name, vc in report.variants.items()
    }
    assert sum(measured.values()) > 0, measured
    assert report.model.measured_variants()
    prov = report.provenance()
    assert prov["exec_backend"] == "thread"
    assert any(
        v["measured_runs"] > 0 for v in prov["variants"].values()
    )


def test_calibrate_component_inline_reports_no_measured():
    ladder = [ContextInstance({"m": 24, "n": 24, "k": 24})]
    report = calibrate_component(
        sgemm.INTERFACE,
        sgemm.IMPLEMENTATIONS,
        platform_c2050,
        sgemm.training_operands,
        ladder=ladder,
        repetitions=1,
    )
    assert report.exec_backend == ""
    assert all(vc.measured_runs == 0 for vc in report.variants.values())
