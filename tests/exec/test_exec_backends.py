"""Unit tests for the repro.exec backends themselves (no engine)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import ExecBackendError
from repro.exec import (
    Measurement,
    ProcessPoolBackend,
    SimulatedBackend,
    ThreadPoolBackend,
    make_backend,
    timed_call,
)


def _add_one(ctx, x):
    x += 1


def test_make_backend_by_name():
    for name, cls in [
        ("simulated", SimulatedBackend),
        ("thread", ThreadPoolBackend),
    ]:
        b = make_backend(name)
        assert isinstance(b, cls)
        assert b.name == name
        b.close()


def test_make_backend_passthrough_instance():
    b = ThreadPoolBackend(max_workers=1)
    assert make_backend(b) is b
    with pytest.raises(ExecBackendError):
        make_backend(b, max_workers=2)  # options need a name
    b.close()


def test_make_backend_unknown_name():
    with pytest.raises(ExecBackendError, match="unknown execution backend"):
        make_backend("gpu-magic")


def test_timed_call_measures_and_runs():
    x = np.zeros(4)
    m = timed_call(_add_one, {}, (x,), codelet="c", variant="v", backend="b")
    assert isinstance(m, Measurement)
    assert np.all(x == 1)
    assert m.wall_s >= 0 and m.end_ns >= m.start_ns
    assert (m.codelet, m.variant, m.backend) == ("c", "v", "b")


def test_measurement_overlaps():
    a = Measurement("c", "v", 0, 1e-9, start_ns=0, end_ns=100, backend="t")
    b = Measurement("c", "v", 1, 1e-9, start_ns=50, end_ns=150, backend="t")
    c = Measurement("c", "v", 2, 1e-9, start_ns=100, end_ns=200, backend="t")
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)  # touching endpoints do not overlap


def test_simulated_backend_is_inline_and_synchronous():
    b = SimulatedBackend()
    assert b.inline
    x = np.zeros(4)
    fut = b.submit_kernel(_add_one, {}, (x,))
    assert fut.done()  # inline: finished before the future is returned
    assert np.all(x == 1)
    assert fut.result().backend == "simulated"


def test_simulated_backend_captures_kernel_exception_in_future():
    def boom(ctx, x):
        raise ValueError("bad kernel")

    fut = SimulatedBackend().submit_kernel(boom, {}, (np.zeros(2),))
    assert fut.done()
    with pytest.raises(ValueError, match="bad kernel"):
        fut.result()


def test_thread_backend_shared_memory_and_measurement():
    with ThreadPoolBackend(max_workers=2) as b:
        assert not b.inline
        x = np.zeros(8)
        m = b.submit_kernel(_add_one, {}, (x,), codelet="c", variant="v").result()
        assert np.all(x == 1)
        assert m.backend == "thread"
        assert m.worker.startswith("repro-exec")


def test_thread_backend_real_overlap_spans():
    ev = threading.Barrier(2, timeout=5)

    def rendezvous(ctx, x):
        ev.wait()  # both kernels must be running simultaneously
        time.sleep(0.01)

    with ThreadPoolBackend(max_workers=2) as b:
        f1 = b.submit_kernel(rendezvous, {}, (np.zeros(1),))
        f2 = b.submit_kernel(rendezvous, {}, (np.zeros(1),))
        m1, m2 = f1.result(timeout=5), f2.result(timeout=5)
    assert m1.overlaps(m2)


def test_thread_backend_cancellation():
    gate = threading.Event()

    def blocker(ctx, x):
        gate.wait(timeout=5)

    b = ThreadPoolBackend(max_workers=1)
    try:
        running = b.submit_kernel(blocker, {}, (np.zeros(1),))
        queued = b.submit_kernel(_add_one, {}, (np.zeros(1),))
        assert queued.cancel()  # still queued behind the blocker
        assert queued.cancelled()
        assert not running.cancel()  # already executing
        with pytest.raises(Exception):  # concurrent.futures.CancelledError
            queued.result(timeout=1)
    finally:
        gate.set()
        b.close()


def test_thread_backend_rejects_use_after_close():
    b = ThreadPoolBackend(max_workers=1)
    b.close()
    b.close()  # idempotent
    with pytest.raises(ExecBackendError, match="closed"):
        b.submit_kernel(_add_one, {}, (np.zeros(1),))


def test_backend_rejects_bad_max_workers():
    with pytest.raises(ExecBackendError):
        ThreadPoolBackend(max_workers=0)
    with pytest.raises(ExecBackendError):
        ProcessPoolBackend(max_workers=0)


def test_measure_warmup_and_reps():
    calls = []

    def counting(ctx, x):
        calls.append(1)

    with ThreadPoolBackend(max_workers=1) as b:
        ms = b.measure(counting, {}, (np.zeros(1),), warmup=2, reps=3)
    assert len(ms) == 3  # warmup runs are discarded
    assert len(calls) == 5


def test_process_backend_write_back():
    with ProcessPoolBackend(max_workers=1) as b:
        x = np.zeros(8)
        m = b.submit_kernel(
            _add_one, {}, (x,), writes=(0,), codelet="c", variant="v"
        ).result(timeout=60)
        assert np.all(x == 1)  # child's writes copied back into parent
        assert m.backend == "process"
        assert m.worker.startswith("pid:")
