"""Asyncio surface: Session.submit_async / submit_batch_async / AsyncClient."""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from conftest import make_axpy_codelet, vecs
from repro import Session
from repro.errors import KernelExecutionError, PeppherError
from repro.runtime import Arch, Codelet, ImplVariant
from repro.runtime.task import TaskState
from repro.serve.aio import AsyncClient

N = 128


def _sleep_codelet(duration=0.1):
    def sleeper(ctx, x):
        time.sleep(duration)
        x += 1

    return Codelet(
        "sleep", [ImplVariant("s_cpu", Arch.CPU, sleeper, lambda ctx, dev: 1e-5)]
    )


def test_submit_async_inline_end_to_end():
    async def main():
        with Session("c2050", scheduler="eager") as s:
            y, x = vecs(N, seed=0)
            hy, hx = s.register(y, "y"), s.register(x, "x")
            task = await s.submit_async(
                make_axpy_codelet(),
                [(hy, "rw"), (hx, "r")],
                ctx={"n": N},
                scalar_args=(2.0,),
            )
            assert task.state is TaskState.DONE
            s.acquire(hy, "r")
            return y, x

    y, x = asyncio.run(main())
    expected, x0 = vecs(N, seed=0)
    np.testing.assert_allclose(y, expected + 2.0 * x0, rtol=1e-6)


def test_submit_batch_async_mixed_codelets_overlaps_on_thread_backend():
    """Acceptance: a mixed-codelet batch under asyncio.run, with real
    kernel overlap (4 x 0.1s sleeps complete in well under 0.4s)."""

    async def main():
        with Session("c2050", scheduler="eager", exec_backend="thread") as s:
            sleep_c = _sleep_codelet()
            axpy_c = make_axpy_codelet()
            arrs = [np.zeros(8) for _ in range(4)]
            hs = [s.register(a, f"a{i}") for i, a in enumerate(arrs)]
            y, x = vecs(N, seed=1)
            hy, hx = s.register(y, "y"), s.register(x, "x")
            t0 = time.perf_counter()
            tasks = await s.submit_batch_async(
                [{"codelet": sleep_c, "operands": [(h, "rw")]} for h in hs]
                + [
                    {
                        "codelet": axpy_c,
                        "operands": [(hy, "rw"), (hx, "r")],
                        "ctx": {"n": N},
                        "scalar_args": (3.0,),
                    }
                ]
            )
            wall = time.perf_counter() - t0
            assert len(tasks) == 5
            assert all(t.state is TaskState.DONE for t in tasks)
            s.acquire(hy, "r")
            for h in hs:
                s.acquire(h, "r")
            return wall, arrs, y, x

    wall, arrs, y, x = asyncio.run(main())
    assert wall < 0.7 * 4 * 0.1, f"batch did not overlap: {wall:.3f}s"
    assert all(np.all(a == 1) for a in arrs)
    expected, x0 = vecs(N, seed=1)
    np.testing.assert_allclose(y, expected + 3.0 * x0, rtol=1e-6)


def test_submit_async_propagates_kernel_errors():
    def boom(ctx, x):
        raise ValueError("async boom")

    codelet = Codelet(
        "boom", [ImplVariant("b_cpu", Arch.CPU, boom, lambda ctx, dev: 1e-5)]
    )

    async def main():
        with Session("c2050", scheduler="eager", exec_backend="thread") as s:
            h = s.register(np.zeros(4), "h")
            with pytest.raises(KernelExecutionError, match="async boom"):
                await s.submit_async(codelet, [(h, "rw")])

    asyncio.run(main())


def test_async_client_call_and_map():
    async def main():
        with Session("c2050", scheduler="eager", exec_backend="thread") as s:
            client = AsyncClient(s, max_inflight=2)
            codelet = _sleep_codelet(0.02)
            arrs = [np.zeros(4) for _ in range(6)]
            hs = [s.register(a, f"m{i}") for i, a in enumerate(arrs)]
            tasks = await client.map(codelet, [[(h, "rw")] for h in hs])
            assert len(tasks) == 6
            assert client.n_completed == 6
            for h in hs:
                s.acquire(h, "r")
            return arrs

    arrs = asyncio.run(main())
    assert all(np.all(a == 1) for a in arrs)


def test_async_client_rejects_bad_inflight():
    with Session("c2050", scheduler="eager") as s:
        with pytest.raises(PeppherError):
            AsyncClient(s, max_inflight=0)
