"""Engine integration: backends behind the codelet API.

Covers the acceptance criteria: the default path stays byte-identical
with repro.exec imported, real backends preserve data-hazard order and
values, kernel failures surface as structured errors at join points,
and the process pool validates picklability at submission.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro.exec  # noqa: F401 -- byte-identity must hold with it imported
from conftest import make_axpy_codelet, vecs
from repro import Session
from repro.errors import KernelExecutionError, VariantNotPicklableError
from repro.exec import ProcessPoolBackend, SimulatedBackend, ThreadPoolBackend
from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.trace_export import canonical_chrome_json

N = 256


def _run_session(exec_backend=None, seed=7):
    with Session(
        "c2050", scheduler="dmda", seed=seed, exec_backend=exec_backend
    ) as s:
        codelet = make_axpy_codelet()
        y, x = vecs(N, seed=3)
        hy, hx = s.register(y, "y"), s.register(x, "x")
        for i in range(12):
            s.submit(
                codelet,
                [(hy, "rw"), (hx, "r")],
                ctx={"n": N},
                scalar_args=(1.5,),
                name=f"axpy{i}",
            )
        s.wait_for_all()
        return canonical_chrome_json(s.trace, s.machine), y.copy()


def test_default_path_byte_identical_to_simulated_backend():
    """Same seed: no backend, and the SimulatedBackend, and a second
    plain run must all produce the identical canonical trace."""
    base, y_base = _run_session()
    again, y_again = _run_session()
    sim, y_sim = _run_session(exec_backend=SimulatedBackend())
    assert base == again
    assert base == sim
    np.testing.assert_array_equal(y_base, y_again)
    np.testing.assert_array_equal(y_base, y_sim)


def test_thread_backend_same_values_as_inline():
    _, y_inline = _run_session()
    _, y_thread = _run_session(exec_backend="thread")
    np.testing.assert_allclose(y_thread, y_inline, rtol=1e-6)


def test_hazard_chain_order_on_thread_backend():
    """A rw chain must see each predecessor's writes: y = ((0+1)*2+1)*2..."""

    def mul2_add1(ctx, y):
        y *= 2
        y += 1

    codelet = Codelet(
        "chain",
        [ImplVariant("c_cpu", Arch.CPU, mul2_add1, lambda ctx, dev: 1e-5)],
    )
    rt = Runtime(platform_c2050(), scheduler="eager", exec_backend="thread")
    y = np.zeros(16)
    h = rt.register(y, "y")
    for _ in range(5):
        rt.submit(codelet, [(h, "rw")])
    rt.acquire(h, "r")
    expected = 0.0
    for _ in range(5):
        expected = expected * 2 + 1
    assert np.all(y == expected)
    rt.shutdown()


def test_independent_kernels_overlap_on_thread_backend():
    """N sleep kernels must take well under N x the single duration."""

    def sleeper(ctx, x):
        time.sleep(0.1)

    codelet = Codelet(
        "sleep",
        [ImplVariant("s_cpu", Arch.CPU, sleeper, lambda ctx, dev: 1e-5)],
    )
    rt = Runtime(
        platform_c2050(),
        scheduler="eager",
        exec_backend=ThreadPoolBackend(max_workers=4),
    )
    handles = [rt.register(np.zeros(4), f"h{i}") for i in range(4)]
    t0 = time.perf_counter()
    for h in handles:
        rt.submit(codelet, [(h, "rw")])
    rt.wait_for_all()
    wall = time.perf_counter() - t0
    ms = rt.measurements
    rt.shutdown()
    assert wall < 0.7 * 4 * 0.1, f"no overlap: {wall:.3f}s for 4 x 0.1s"
    assert len(ms) == 4
    assert any(a.overlaps(b) for i, a in enumerate(ms) for b in ms[i + 1 :])


def test_measurements_feed_measured_provenance():
    rt = Runtime(platform_c2050(), scheduler="eager", exec_backend="thread")
    codelet = make_axpy_codelet()
    y, x = vecs(N, seed=1)
    hy, hx = rt.register(y, "y"), rt.register(x, "x")
    for _ in range(3):
        rt.submit(
            codelet, [(hy, "rw"), (hx, "r")], ctx={"n": N}, scalar_args=(2.0,)
        )
    rt.wait_for_all()
    model = rt.perfmodel
    rt.shutdown()
    assert model.measured_variants()  # wall-clock samples landed
    # ...without touching the analytical history counts
    fp_vars = {var for _, var in model.history._table}
    assert fp_vars  # analytical side also recorded, independently


def test_kernel_exception_wrapped_at_join():
    def boom(ctx, y):
        raise RuntimeError("numerical disaster")

    codelet = Codelet(
        "boom", [ImplVariant("b_cpu", Arch.CPU, boom, lambda ctx, dev: 1e-5)]
    )
    rt = Runtime(platform_c2050(), scheduler="eager", exec_backend="thread")
    h = rt.register(np.zeros(4), "h")
    rt.submit(codelet, [(h, "rw")])
    with pytest.raises(KernelExecutionError, match="b_cpu.*thread.*disaster"):
        rt.wait_for_all()


def test_process_backend_rejects_lambda_at_submit():
    codelet = Codelet(
        "lam",
        [ImplVariant("lam_cpu", Arch.CPU, lambda ctx, y: None, lambda ctx, dev: 1e-5)],
    )
    rt = Runtime(platform_c2050(), scheduler="eager", exec_backend="process")
    h = rt.register(np.zeros(4), "h")
    with pytest.raises(VariantNotPicklableError) as exc_info:
        rt.submit(codelet, [(h, "rw")])
    assert exc_info.value.codelet == "lam"
    assert exc_info.value.variant == "lam_cpu"
    assert "lambda" in str(exc_info.value)


def _scale_by_three(ctx, y):
    y *= 3


def test_process_backend_runs_module_level_kernel():
    codelet = Codelet(
        "scale",
        [ImplVariant("scale_cpu", Arch.CPU, _scale_by_three, lambda ctx, dev: 1e-5)],
    )
    rt = Runtime(
        platform_c2050(),
        scheduler="eager",
        exec_backend=ProcessPoolBackend(max_workers=1),
    )
    y = np.full(8, 2.0)
    h = rt.register(y, "y")
    rt.submit(codelet, [(h, "rw")])
    rt.acquire(h, "r")  # joins the kernel, applies the write-back
    assert np.all(y == 6.0)
    m = rt.measurements[0]
    assert m.backend == "process" and m.worker.startswith("pid:")
    rt.shutdown()
    rt.exec_backend.close()


def _kill_worker(ctx, y):
    os._exit(13)  # simulate a segfaulting native kernel


def test_process_worker_crash_surfaces_as_kernel_error():
    backend = ProcessPoolBackend(max_workers=1)
    codelet = Codelet(
        "crash",
        [ImplVariant("crash_cpu", Arch.CPU, _kill_worker, lambda ctx, dev: 1e-5)],
    )
    rt = Runtime(platform_c2050(), scheduler="eager", exec_backend=backend)
    h = rt.register(np.zeros(4), "h")
    rt.submit(codelet, [(h, "rw")])
    with pytest.raises(KernelExecutionError, match="crash_cpu.*process"):
        rt.wait_for_all()
    backend.close()


def test_session_owns_named_backend_and_closes_it():
    s = Session("c2050", scheduler="eager", exec_backend="thread")
    backend = s.exec_backend
    y, x = vecs(N, seed=2)
    hy, hx = s.register(y, "y"), s.register(x, "x")
    s.submit(
        make_axpy_codelet(),
        [(hy, "rw"), (hx, "r")],
        ctx={"n": N},
        scalar_args=(1.0,),
    )
    s.wait_for_all()
    s.shutdown()
    from repro.errors import ExecBackendError

    with pytest.raises(ExecBackendError, match="closed"):
        backend.submit_kernel(lambda ctx: None, {}, ())


def test_run_kernels_false_skips_backend_dispatch():
    rt = Runtime(
        platform_c2050(),
        scheduler="eager",
        run_kernels=False,
        exec_backend="thread",
    )
    y, x = vecs(N, seed=5)
    hy, hx = rt.register(y, "y"), rt.register(x, "x")
    rt.submit(
        make_axpy_codelet(), [(hy, "rw"), (hx, "r")], ctx={"n": N}, scalar_args=(9.0,)
    )
    rt.wait_for_all()
    assert rt.measurements == []  # nothing ran, nothing measured
    rt.shutdown()
