"""Smoke tests for the backends differential and engine benchmark."""

from __future__ import annotations

import json

from repro.experiments import backends as backends_exp
from repro.experiments import engine_bench


def test_backends_differential_tiny():
    diffs = backends_exp.run_component(
        "sgemm",
        backends_exp.sgemm.INTERFACE,
        backends_exp.sgemm.IMPLEMENTATIONS,
        backends_exp.sgemm.training_operands,
        backends_exp.sgemm_ladder((16, 32)),
        reps=1,
    )
    assert diffs.rows, "no measured samples collected"
    for row in diffs.rows:
        assert row.analytical_s > 0
        assert row.measured_s > 0
    assert diffs.choices  # >= 2 variants ran per rung
    d = diffs.to_dict()
    assert d["scale_wall_over_analytical"] > 0
    assert 0.0 <= d["choice_agreement"] <= 1.0
    text = backends_exp.format_diff([diffs])
    assert "sgemm" in text


def test_backends_main_writes_json_and_exits_zero(tmp_path, capsys):
    rc = backends_exp.main(["--smoke", "--outdir", str(tmp_path)])
    assert rc == 0
    payload = json.loads((tmp_path / "BENCH_backends.json").read_text())
    assert payload["smoke"] is True
    assert {c["component"] for c in payload["components"]} == {"sgemm", "spmv"}
    for comp in payload["components"]:
        assert comp["n_rows"] > 0


def test_engine_bench_workloads():
    fan = engine_bench.run_fanout(n_tasks=300)
    chain = engine_bench.run_chain(n_tasks=300)
    assert fan.tasks_per_s > 0 and chain.tasks_per_s > 0
    assert fan.n_tasks == chain.n_tasks == 300


def test_engine_bench_main_writes_json(tmp_path, capsys):
    rc = engine_bench.main(["--smoke", "--outdir", str(tmp_path)])
    payload = json.loads((tmp_path / "BENCH_engine.json").read_text())
    assert {w["workload"] for w in payload["workloads"]} == {"fanout", "chain"}
    assert payload["within_budget"] == (rc == 0)
