"""The repro.Session facade: machine resolution, store wiring, lifecycle."""

import numpy as np
import pytest

import repro
from repro import Session
from repro.errors import PeppherError
from repro.hw.description import Machine
from repro.hw.presets import platform_c2050
from repro.tuning import PerfModelStore

from tests.conftest import make_axpy_codelet


def _run_axpy(session, n=4096, n_tasks=4):
    cl = make_axpy_codelet()
    y = session.register(np.zeros(n, dtype=np.float32), "y")
    x = session.register(np.ones(n, dtype=np.float32), "x")
    for _ in range(n_tasks):
        session.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": n}, scalar_args=(1.0,))
    session.wait_for_all()
    return y


def test_session_is_reexported_from_package_root():
    assert repro.Session is Session
    assert repro.PerfModelStore is PerfModelStore


def test_session_from_preset_name():
    with Session("c2050", run_kernels=True, noise_sigma=0.0) as s:
        y = _run_axpy(s, n_tasks=2)
        assert s.now > 0.0
        assert s.trace.n_tasks == 2
        assert y.array[0] == 2.0
    assert s.machine.name == platform_c2050().name


def test_session_machine_options_forwarded():
    with Session("c2050", machine_options={"n_cpu_cores": 7}) as s:
        assert len(s.machine.cpu_units) == 6  # n-1 workers + 1 GPU driver


def test_session_accepts_machine_instance_and_factory():
    machine = platform_c2050()
    with Session(machine) as s:
        assert s.machine is machine
    with Session(lambda: platform_c2050()) as s:
        assert isinstance(s.machine, Machine)


def test_session_rejects_options_with_machine_instance():
    with pytest.raises(PeppherError):
        Session(platform_c2050(), machine_options={"n_cpu_cores": 5})
    with pytest.raises(PeppherError):
        Session(42)


def test_session_restart_keeps_learned_model_without_store():
    s = Session("c2050", scheduler="dmda", run_kernels=False)
    _run_axpy(s)
    fp_samples = sum(
        st.n for st in s.perfmodel.history._table.values()
    )
    assert fp_samples > 0
    s.restart()
    assert s.now == 0.0  # fresh virtual clock...
    carried = sum(st.n for st in s.perfmodel.history._table.values())
    assert carried == fp_samples  # ...same learned model
    s.shutdown()


def test_session_store_roundtrip_warm_starts_new_session(tmp_path):
    with Session("c2050", store=tmp_path, run_kernels=False) as s:
        _run_axpy(s)
    # shutdown persisted the learned model; a brand-new session warms up
    warm = Session("c2050", store=PerfModelStore(tmp_path), run_kernels=False)
    assert warm.perfmodel.codelets() == {"axpy"}
    assert "axpy" in warm.calibrated_codelets()
    warm.shutdown()


def test_session_scheduler_options_and_trace_export(tmp_path):
    s = Session(
        "c2050",
        scheduler="dmda",
        scheduler_options={"beta": 2.5},
        run_kernels=False,
        trace_dir=tmp_path,
    )
    assert s.runtime.scheduler.beta == 2.5
    _run_axpy(s, n_tasks=2)
    out = s.save_trace("run.json")
    assert out == tmp_path / "run.json" and out.exists()
    assert "axpy" in s.gantt() or s.gantt()  # renders something
    s.shutdown()


def test_session_partitioning_delegates():
    with Session("c2050", run_kernels=False, noise_sigma=0.0) as s:
        h = s.register(np.zeros(64, dtype=np.float32), "h")
        children = s.partition_equal(h, 4)
        assert len(children) == 4
        s.unpartition(h)
        s.acquire(h, "r")


def test_session_metrics_suite_lifecycle():
    with Session("c2050", metrics=True, noise_sigma=0.0) as s:
        assert s.metrics is not None
        _run_axpy(s, n_tasks=3)
        snap = s.metrics.snapshot()
        submitted = snap["repro_tasks_submitted_total"]["series"]
        assert sum(row["value"] for row in submitted) == 3
        # counters survive a restart (fresh engine, same suite)
        s.restart()
        _run_axpy(s, n_tasks=2)
        snap = s.metrics.snapshot()
        submitted = snap["repro_tasks_submitted_total"]["series"]
        assert sum(row["value"] for row in submitted) == 5
    text = s.metrics.to_prometheus()
    assert "repro_tasks_completed_total" in text


def test_session_metrics_disabled_by_default():
    with Session("c2050") as s:
        assert s.metrics is None
        assert s.runtime.engine.events.n_subscribers() == 0
