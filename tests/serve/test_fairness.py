"""Weighted fair queueing: virtual time, weights, no banked credit."""

import pytest

from repro.serve import WeightedFairQueue


def test_weight_validation_and_default():
    with pytest.raises(ValueError):
        WeightedFairQueue({"t": 0.0})
    q = WeightedFairQueue({"a": 2.0})
    assert q.weight_of("a") == 2.0
    assert q.weight_of("unknown") == 1.0


def test_charge_divides_by_weight():
    q = WeightedFairQueue({"a": 2.0, "b": 1.0})
    q.charge("a", 1.0)
    q.charge("b", 1.0)
    assert q.vtime_of("a") == pytest.approx(0.5)
    assert q.vtime_of("b") == pytest.approx(1.0)
    with pytest.raises(ValueError):
        q.charge("a", -1.0)


def test_pick_least_vtime_work_conserving():
    q = WeightedFairQueue()
    q.pick(["heavy", "light"])  # both become active at vtime 0
    q.charge("heavy", 5.0)
    # both backlogged: the lighter-consumption tenant wins
    assert q.pick(["heavy", "light"]) == "light"
    # only the heavy tenant backlogged: it still runs (work conservation)
    assert q.pick(["heavy"]) == "heavy"
    assert q.pick([]) is None


def test_pick_breaks_ties_by_name():
    q = WeightedFairQueue()
    assert q.pick(["b", "a"]) == "a"


def test_idle_tenant_cannot_bank_credit():
    q = WeightedFairQueue()
    # heavy runs for a long time while "sleeper" is idle
    q.pick(["heavy"])
    q.charge("heavy", 100.0)
    # sleeper wakes: floored to the active minimum, not to 0
    q.pick(["heavy", "sleeper"])
    assert q.vtime_of("sleeper") >= 100.0 - 1e-9
    # so heavy is not starved for 100 virtual seconds afterwards
    q.charge("sleeper", 1.0)
    assert q.pick(["heavy", "sleeper"]) == "heavy"


def test_deactivate_retains_vtime():
    q = WeightedFairQueue()
    q.pick(["a"])
    q.charge("a", 3.0)
    q.deactivate("a")
    assert q.vtime_of("a") == pytest.approx(3.0)


def test_tenant_arriving_to_empty_queue_cannot_bank_credit():
    """A tenant whose every request was shed (so it was never activated)
    must not accumulate virtual-time credit while the queue sits empty.

    Regression: activation used to floor to 0 when no tenant was active,
    letting a late (or always-shed) tenant monopolize workers for as much
    virtual time as the system had already dispatched.
    """
    q = WeightedFairQueue()
    # an established tenant runs for a long time, then its queue drains
    q.pick(["heavy"])
    q.charge("heavy", 100.0)
    q.deactivate("heavy")
    # the queue is now fully idle; a newcomer (e.g. a tenant whose every
    # earlier request was shed by admission control) becomes backlogged
    q.pick(["late"])
    # floored to the largest virtual time ever dispatched, not to 0
    assert q.vtime_of("late") >= 100.0 - 1e-9
    # so when heavy returns, service alternates instead of starving heavy
    q.charge("late", 1.0)
    assert q.pick(["heavy", "late"]) == "heavy"


def test_vclock_floor_does_not_inflate_active_tenants():
    """The idle-queue floor only applies to *newly activated* tenants;
    an already-active tenant keeps its earned virtual time."""
    q = WeightedFairQueue()
    q.pick(["a", "b"])
    q.charge("a", 10.0)
    q.charge("b", 2.0)
    assert q.pick(["a", "b"]) == "b"
    # re-activation of an active tenant is a no-op
    q.activate("b")
    assert q.vtime_of("b") == pytest.approx(2.0)
