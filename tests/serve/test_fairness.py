"""Weighted fair queueing: virtual time, weights, no banked credit."""

import pytest

from repro.serve import WeightedFairQueue


def test_weight_validation_and_default():
    with pytest.raises(ValueError):
        WeightedFairQueue({"t": 0.0})
    q = WeightedFairQueue({"a": 2.0})
    assert q.weight_of("a") == 2.0
    assert q.weight_of("unknown") == 1.0


def test_charge_divides_by_weight():
    q = WeightedFairQueue({"a": 2.0, "b": 1.0})
    q.charge("a", 1.0)
    q.charge("b", 1.0)
    assert q.vtime_of("a") == pytest.approx(0.5)
    assert q.vtime_of("b") == pytest.approx(1.0)
    with pytest.raises(ValueError):
        q.charge("a", -1.0)


def test_pick_least_vtime_work_conserving():
    q = WeightedFairQueue()
    q.pick(["heavy", "light"])  # both become active at vtime 0
    q.charge("heavy", 5.0)
    # both backlogged: the lighter-consumption tenant wins
    assert q.pick(["heavy", "light"]) == "light"
    # only the heavy tenant backlogged: it still runs (work conservation)
    assert q.pick(["heavy"]) == "heavy"
    assert q.pick([]) is None


def test_pick_breaks_ties_by_name():
    q = WeightedFairQueue()
    assert q.pick(["b", "a"]) == "a"


def test_idle_tenant_cannot_bank_credit():
    q = WeightedFairQueue()
    # heavy runs for a long time while "sleeper" is idle
    q.pick(["heavy"])
    q.charge("heavy", 100.0)
    # sleeper wakes: floored to the active minimum, not to 0
    q.pick(["heavy", "sleeper"])
    assert q.vtime_of("sleeper") >= 100.0 - 1e-9
    # so heavy is not starved for 100 virtual seconds afterwards
    q.charge("sleeper", 1.0)
    assert q.pick(["heavy", "sleeper"]) == "heavy"


def test_deactivate_retains_vtime():
    q = WeightedFairQueue()
    q.pick(["a"])
    q.charge("a", 3.0)
    q.deactivate("a")
    assert q.vtime_of("a") == pytest.approx(3.0)
