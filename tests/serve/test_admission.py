"""Admission controller: thresholds, shedding and backpressure."""

import pytest

from repro.serve import AdmissionController, AdmissionOutcome, AdmissionPolicy


def test_policy_validation():
    with pytest.raises(ValueError):
        AdmissionPolicy(on_overload="panic")
    with pytest.raises(ValueError):
        AdmissionPolicy(max_queue_depth=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_queue_per_tenant=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_backlog_s=0.0)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_delay_s=-1.0)
    assert not AdmissionPolicy().bounded
    assert AdmissionPolicy(max_queue_depth=1).bounded
    assert AdmissionPolicy(max_backlog_s=1.0).bounded


def test_default_policy_admits_everything():
    ctl = AdmissionController()
    for i in range(100):
        assert ctl.decide("t", 0.0, 0.0, 1e9) is AdmissionOutcome.ADMIT
        ctl.note_admitted("t")
    assert ctl.queue_depth() == 100
    assert ctl.n_admitted == 100


def test_depth_threshold_sheds():
    ctl = AdmissionController(AdmissionPolicy(max_queue_depth=2))
    for _ in range(2):
        assert ctl.decide("t", 0.0, 0.0, 0.0) is AdmissionOutcome.ADMIT
        ctl.note_admitted("t")
    assert ctl.decide("t", 0.0, 0.0, 0.0) is AdmissionOutcome.SHED
    ctl.note_shed()
    # a completion frees a slot
    ctl.note_finished("t")
    assert ctl.decide("t", 0.0, 0.0, 0.0) is AdmissionOutcome.ADMIT
    assert ctl.n_shed == 1


def test_per_tenant_quota_is_isolated():
    ctl = AdmissionController(AdmissionPolicy(max_queue_per_tenant=1))
    assert ctl.decide("heavy", 0.0, 0.0, 0.0) is AdmissionOutcome.ADMIT
    ctl.note_admitted("heavy")
    # heavy is at quota, light is not
    assert ctl.decide("heavy", 0.0, 0.0, 0.0) is AdmissionOutcome.SHED
    assert ctl.decide("light", 0.0, 0.0, 0.0) is AdmissionOutcome.ADMIT
    ctl.note_admitted("light")
    assert ctl.queue_depth("heavy") == 1
    assert ctl.queue_depth("light") == 1
    assert ctl.queue_depth() == 2


def test_backlog_threshold():
    ctl = AdmissionController(AdmissionPolicy(max_backlog_s=0.5))
    assert ctl.decide("t", 0.0, 0.0, 0.4) is AdmissionOutcome.ADMIT
    assert ctl.decide("t", 0.0, 0.0, 0.6) is AdmissionOutcome.SHED


def test_delay_mode_buffers_then_sheds_after_patience():
    ctl = AdmissionController(
        AdmissionPolicy(
            max_queue_depth=1, on_overload="delay", max_delay_s=0.010
        )
    )
    ctl.note_admitted("t")
    # within patience: buffered, not shed
    assert ctl.decide("t", 0.005, 0.0, 0.0) is AdmissionOutcome.DELAY
    # patience exhausted: shed
    assert ctl.decide("t", 0.011, 0.0, 0.0) is AdmissionOutcome.SHED
    ctl.note_delayed()
    assert ctl.n_delayed == 1
