"""The issue's acceptance criteria, asserted with fixed seeds.

Under identical offered load on the C2050 platform:

(a) admission control bounds p99 latency relative to the unbounded
    queue, at the price of a non-zero shed rate;
(b) with a flooding heavy tenant and a light tenant of near-identical
    per-request cost, throughput-greedy dispatch (``eager``) starves
    the light tenant (per-tenant p99 spread well beyond 2x) while the
    ``fair`` policy keeps the spread within 2x.

Both reuse the tuned study configuration from
:mod:`repro.experiments.serving` (warm perfmodel, batch cap 4,
in-flight cap 4, per-tenant quota 16) so the numbers here match the
published tables.
"""

import copy

import pytest

from repro.experiments.serving import (
    BATCH,
    MAX_INFLIGHT,
    TENANT_QUOTA,
    calibrate_perfmodel,
    fairness_tenants,
)
from repro.hw.presets import platform_c2050
from repro.serve import AdmissionPolicy, CompositionServer, TenantSpec


@pytest.fixture(scope="module")
def machine():
    return platform_c2050()


def serve(machine, tenants, scheduler, admission, perf):
    server = CompositionServer(
        machine,
        tenants=tenants,
        scheduler=scheduler,
        admission=admission,
        batching=BATCH,
        max_inflight=MAX_INFLIGHT,
        perfmodel=copy.deepcopy(perf),
    )
    return server.run()


def test_admission_bounds_p99_under_identical_load(machine):
    tenants = [
        TenantSpec(
            "t0", workload="sgemm", size=256, rate_hz=20000.0,
            n_requests=400, seed=5,
        )
    ]
    perf = calibrate_perfmodel(machine, tenants)
    unbounded = serve(machine, tenants, "dmda", None, perf)
    bounded = serve(
        machine, tenants, "dmda", AdmissionPolicy(max_queue_depth=16), perf
    )
    t_unb, t_bnd = unbounded.tenants[0], bounded.tenants[0]
    # same offered load either way
    assert t_unb.n_offered == t_bnd.n_offered == 400
    assert t_unb.n_shed == 0
    # the bound costs sheds and buys the tail
    assert t_bnd.n_shed > 0
    assert t_bnd.p99_s < t_unb.p99_s
    assert t_bnd.mean_queue_wait_s < t_unb.mean_queue_wait_s


def test_fair_bounds_tenant_spread_where_eager_starves(machine):
    tenants = fairness_tenants(n_requests=400, seed=7)
    perf = calibrate_perfmodel(machine, tenants)
    admission = AdmissionPolicy(max_queue_per_tenant=TENANT_QUOTA)
    greedy = serve(machine, tenants, "eager", admission, perf)
    fair = serve(machine, tenants, "fair", admission, perf)
    # greedy dispatch starves the light tenant's minority shape
    assert greedy.p99_spread() > 2.0
    assert (
        greedy.for_tenant("light").p99_s > greedy.for_tenant("heavy").p99_s
    )
    # weighted fair queueing keeps per-tenant p99s within 2x
    assert fair.p99_spread() <= 2.0
    # fairness does not come from refusing the light tenant's load
    assert fair.for_tenant("light").n_shed == 0
    assert (
        fair.for_tenant("light").p99_s
        < greedy.for_tenant("light").p99_s
    )
