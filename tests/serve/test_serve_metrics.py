"""Live serving metrics agree with the end-of-run SLO report."""

import pytest

from repro.hw.presets import platform_c2050
from repro.obs import MetricsSuite
from repro.serve import CompositionServer, TenantSpec
from repro.serve.admission import AdmissionPolicy
from repro.serve.slo import slo_report

TENANTS = [
    TenantSpec("a", workload="sgemm", size=96, rate_hz=2000.0, n_requests=30, seed=1),
    TenantSpec("b", workload="pathfinder", size=64, rate_hz=500.0, n_requests=8, seed=2),
]


def _server(**kw):
    defaults = dict(tenants=TENANTS, scheduler="fair", metrics=True)
    defaults.update(kw)
    return CompositionServer(platform_c2050(), **defaults)


def test_metrics_off_by_default():
    server = CompositionServer(platform_c2050(), tenants=TENANTS)
    assert server.metrics is None
    assert server.serving_metrics is None


def test_final_gauges_agree_with_slo_report():
    server = _server()
    report = server.run()
    quantiles = server.metrics.registry.get(
        "repro_request_latency_quantile_seconds"
    )
    requests = server.metrics.registry.get("repro_requests_total")
    by_name = {t.tenant: t for t in report.tenants}
    for tenant, slo in by_name.items():
        # the live gauges were updated per request with the same exact
        # interpolation the report uses — they must agree to the bit
        assert quantiles.value(tenant=tenant, q=50) == slo.p50_s
        assert quantiles.value(tenant=tenant, q=95) == slo.p95_s
        assert quantiles.value(tenant=tenant, q=99) == slo.p99_s
        assert requests.value(tenant=tenant, outcome="completed") == (
            slo.n_completed
        )
    # and both agree with an independent recomputation from the trace
    recomputed = slo_report(server.trace)
    for t in recomputed.tenants:
        assert quantiles.value(tenant=t.tenant, q=99) == t.p99_s


def test_latency_histograms_count_completed_requests():
    server = _server()
    report = server.run()
    latency = server.metrics.registry.get("repro_request_latency_seconds")
    for t in report.tenants:
        assert latency.count(tenant=t.tenant) == t.n_completed
        assert latency.sum(tenant=t.tenant) == pytest.approx(
            sum(
                r.latency
                for r in server.trace.requests_for(t.tenant)
                if r.completed
            )
        )


def test_shed_requests_counted_by_outcome():
    server = _server(
        tenants=[
            TenantSpec(
                "hot",
                workload="sgemm",
                size=96,
                rate_hz=50_000.0,
                n_requests=60,
                seed=3,
            )
        ],
        admission=AdmissionPolicy(max_queue_depth=4),
    )
    report = server.run()
    t = report.tenants[0]
    assert t.n_shed > 0, "queue bound should shed under this load"
    requests = server.metrics.registry.get("repro_requests_total")
    assert requests.value(tenant="hot", outcome="shed") == t.n_shed
    assert requests.value(tenant="hot", outcome="completed") == t.n_completed


def test_engine_and_serving_metrics_share_one_registry():
    server = _server()
    server.run()
    snap = server.metrics.snapshot()
    assert "repro_tasks_completed_total" in snap  # engine catalogue
    assert "repro_requests_total" in snap  # serving catalogue
    assert "repro_queue_depth" in snap  # samplers
    completed = sum(
        s["value"] for s in snap["repro_tasks_completed_total"]["series"]
    )
    assert completed == len(server.trace.tasks)


def test_suite_instance_can_be_passed_in():
    suite = MetricsSuite(period_s=1e-2)
    server = _server(metrics=suite)
    assert server.metrics is suite
    server.run()
    assert suite.samplers is not None
