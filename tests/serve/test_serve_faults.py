"""Serving with an active FaultModel: admission and coalescing must
stay balanced while the engine retries under the hood.

The key hazard: a faulted task is retried *inside* the engine (its
timeline is recomputed at submit), so from the server's point of view a
request is dispatched exactly once.  If retries leaked back into the
dispatch queue, backlog prediction would price the same work twice —
once through the engine's committed horizon and once through the
coalescer — and admission would shed too aggressively.
"""

import pytest

from repro.hw.faults import FaultModel
from repro.hw.presets import platform_c2050
from repro.runtime.engine import RecoveryPolicy
from repro.serve import (
    AdmissionPolicy,
    BatchPolicy,
    CompositionServer,
    TenantSpec,
)

TENANTS = [
    TenantSpec("a", workload="sgemm", size=96, rate_hz=4000.0,
               n_requests=60, seed=1),
    TenantSpec("b", workload="bfs", size=200, rate_hz=1500.0,
               n_requests=30, seed=2),
]

FAULTS = FaultModel(kernel_fault_rate=0.3, seed=3)
RECOVERY = RecoveryPolicy(max_retries=8, backoff_base_s=1e-5)


def make_server(**kw):
    defaults = dict(tenants=TENANTS, scheduler="dmda",
                    faults=FAULTS, recovery=RECOVERY)
    defaults.update(kw)
    return CompositionServer(platform_c2050(), **defaults)


def _fault_count(server):
    return sum(1 for f in server.trace.faults if f.kind == "kernel")


def test_faulty_run_accounting_balances():
    server = make_server()
    report = server.run()
    assert _fault_count(server) > 0, "fault rate too low to exercise retries"
    offered = report.total_offered
    done = report.total_completed
    shed = report.total_shed
    failed = sum(t.n_failed for t in report.tenants)
    assert offered == 90
    assert done + shed + failed == offered
    # every admitted request released its slot exactly once
    assert server.admission.queue_depth() == 0
    assert server.admission.n_admitted == done + failed


def test_exhausted_recovery_surfaces_as_failures_not_stuck_slots():
    server = make_server(
        faults=FaultModel(kernel_fault_rate=1.0, seed=0),
        recovery=RecoveryPolicy(max_retries=2),
        admission=AdmissionPolicy(max_queue_depth=4),
    )
    report = server.run()
    failed = sum(t.n_failed for t in report.tenants)
    assert failed > 0
    assert report.total_completed + report.total_shed + failed == 90
    # failed requests still produced completion events: nothing leaked
    assert server.admission.queue_depth() == 0
    assert server.queue_depth() == 0


def test_backlog_estimate_never_prices_dispatched_work(monkeypatch):
    """A request that reached the engine (where faulted attempts retry)
    must never reappear in the coalescer term of the backlog estimate —
    that would count its retries twice in shed/delay decisions."""
    dispatched: set[tuple[str, int]] = set()
    orig_submit = CompositionServer._submit_one
    orig_backlog = CompositionServer._predicted_backlog
    checks = []

    def spy_submit(self, req, batch_size):
        dispatched.add((req.tenant, req.req_id))
        return orig_submit(self, req, batch_size)

    def spy_backlog(self, t):
        queued = {(r.tenant, r.req_id) for r in self.coalescer.iter_requests()}
        assert not queued & dispatched, (
            "retrying request double-counted in backlog estimate"
        )
        checks.append(t)
        return orig_backlog(self, t)

    monkeypatch.setattr(CompositionServer, "_submit_one", spy_submit)
    monkeypatch.setattr(CompositionServer, "_predicted_backlog", spy_backlog)
    server = make_server(
        admission=AdmissionPolicy(max_backlog_s=5e-4),
        batching=BatchPolicy(max_batch=4),
    )
    report = server.run()
    assert _fault_count(server) > 0
    assert checks, "admission never consulted the backlog estimate"
    assert report.total_offered == 90


def test_bounded_admission_with_faults_sheds_but_stays_consistent():
    server = make_server(
        admission=AdmissionPolicy(max_queue_depth=2),
        max_inflight=1,
    )
    report = server.run()
    failed = sum(t.n_failed for t in report.tenants)
    assert report.total_shed > 0
    assert report.total_completed + report.total_shed + failed == 90
    assert server.admission.n_shed == report.total_shed
    assert server.admission.queue_depth() == 0


def test_delay_mode_with_faults_resolves_every_buffered_request():
    server = make_server(
        admission=AdmissionPolicy(
            max_queue_depth=2, on_overload="delay", max_delay_s=2e-3
        ),
        max_inflight=1,
    )
    report = server.run()
    failed = sum(t.n_failed for t in report.tenants)
    assert report.total_completed + report.total_shed + failed == 90
    assert not server._delayed, "buffered requests left unresolved"
    # a delayed-then-shed request is recorded once, not once per decision
    shed_ids = [
        (r.tenant, r.req_id) for r in server.trace.requests if r.shed
    ]
    assert len(shed_ids) == len(set(shed_ids))


def test_coalescing_under_faults_is_deterministic():
    kw = dict(batching=BatchPolicy(max_batch=8),
              admission=AdmissionPolicy(max_queue_depth=16))
    r1 = make_server(**kw).run()
    r2 = make_server(**kw).run()
    assert r1.to_dict() == r2.to_dict()


@pytest.mark.parametrize("rate", [0.0, 0.3])
def test_batch_records_are_coherent_under_faults(rate):
    server = make_server(
        faults=FaultModel(kernel_fault_rate=rate, seed=3) if rate else None,
        recovery=RECOVERY if rate else None,
        batching=BatchPolicy(max_batch=8),
    )
    server.run()
    for rec in server.trace.requests:
        if rec.completed:
            assert rec.batch_size >= 1
            assert rec.end_time > rec.start_time
