"""SLO accounting: percentiles, per-tenant rollups, spread."""

import math

import pytest

from repro.runtime.stats import ExecutionTrace, RequestRecord
from repro.serve import SloReport, percentile, slo_report
from repro.serve.slo import TenantSlo, tenant_slo


def test_percentile_basics():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert percentile(xs, 0) == 1.0
    assert percentile(xs, 100) == 4.0
    assert percentile(xs, 50) == pytest.approx(2.5)
    assert percentile([5.0], 99) == 5.0
    assert math.isnan(percentile([], 50))
    with pytest.raises(ValueError):
        percentile(xs, 101)


def rec(tenant, req_id, arrival, end, **kw):
    defaults = dict(
        tenant=tenant,
        req_id=req_id,
        codelet="sgemm",
        arrival_time=arrival,
        dispatch_time=arrival + 0.001,
        start_time=arrival + 0.002,
        end_time=end,
    )
    defaults.update(kw)
    return RequestRecord.make(**defaults)


def test_request_record_decomposition():
    r = rec("t", 0, 1.0, 1.010)
    assert r.completed
    assert r.latency == pytest.approx(0.010)
    assert r.queue_wait == pytest.approx(0.001)
    assert r.pending_wait == pytest.approx(0.001)
    assert r.exec_s == pytest.approx(0.008)
    shed = RequestRecord.make(
        tenant="t", req_id=1, codelet="sgemm", arrival_time=0.0, shed=True
    )
    assert not shed.completed
    assert math.isnan(shed.latency)


def test_tenant_slo_counts_and_rates():
    records = [rec("t", i, i * 0.01, i * 0.01 + 0.005) for i in range(8)]
    records.append(
        RequestRecord.make(
            tenant="t", req_id=8, codelet="sgemm", arrival_time=0.2, shed=True
        )
    )
    records.append(
        RequestRecord.make(
            tenant="t",
            req_id=9,
            codelet="sgemm",
            arrival_time=0.3,
            failed=True,
            dispatch_time=0.301,
        )
    )
    slo = tenant_slo("t", records, window_s=1.0)
    assert slo.n_offered == 10
    assert slo.n_completed == 8
    assert slo.n_shed == 1
    assert slo.n_failed == 1
    assert slo.shed_rate == pytest.approx(0.1)
    assert slo.goodput_rps == pytest.approx(8.0)
    assert slo.p50_s == pytest.approx(0.005)


def test_slo_report_from_trace_and_spread():
    trace = ExecutionTrace()
    for i in range(4):
        trace.record_request(rec("a", i, i * 0.01, i * 0.01 + 0.002))
    for i in range(4):
        trace.record_request(rec("b", i, i * 0.01, i * 0.01 + 0.004))
    report = slo_report(trace)
    assert [t.tenant for t in report.tenants] == ["a", "b"]
    assert report.total_offered == 8
    assert report.p99_spread() == pytest.approx(2.0)
    assert report.for_tenant("b").p99_s == pytest.approx(0.004)
    with pytest.raises(KeyError):
        report.for_tenant("zzz")
    d = report.to_dict()
    assert {t["tenant"] for t in d["tenants"]} == {"a", "b"}
    assert d["p99_spread"] == pytest.approx(2.0)


def test_spread_needs_two_tenants():
    report = SloReport(window_s=1.0, tenants=[])
    assert math.isnan(report.p99_spread())
    report.tenants.append(
        TenantSlo(
            tenant="only",
            n_offered=1,
            n_completed=1,
            n_shed=0,
            n_failed=0,
            goodput_rps=1.0,
            p50_s=0.1,
            p95_s=0.1,
            p99_s=0.1,
            mean_queue_wait_s=0.0,
            mean_pending_wait_s=0.0,
            mean_exec_s=0.1,
            mean_transfer_s=0.0,
            mean_batch_size=1.0,
        )
    )
    assert math.isnan(report.p99_spread())
