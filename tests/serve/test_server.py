"""CompositionServer end-to-end behaviour on the simulated machine."""

import math

import pytest

from repro.errors import PeppherError
from repro.hw.faults import FaultModel
from repro.hw.presets import platform_c2050
from repro.runtime.engine import RecoveryPolicy
from repro.runtime.trace_export import to_chrome_trace
from repro.serve import (
    AdmissionPolicy,
    BatchPolicy,
    CompositionServer,
    TenantSpec,
)

TENANTS = [
    TenantSpec("a", workload="sgemm", size=96, rate_hz=2000.0, n_requests=40, seed=1),
    TenantSpec("b", workload="pathfinder", size=64, rate_hz=500.0, n_requests=10, seed=2),
]


def make_server(**kw):
    defaults = dict(tenants=TENANTS, scheduler="fair")
    defaults.update(kw)
    return CompositionServer(platform_c2050(), **defaults)


def test_constructor_validation():
    with pytest.raises(PeppherError):
        CompositionServer(platform_c2050(), tenants=[])
    with pytest.raises(PeppherError):
        CompositionServer(
            platform_c2050(),
            tenants=[TENANTS[0], TENANTS[0]],  # duplicate names
        )
    with pytest.raises(PeppherError):
        make_server(max_inflight=0)


def test_run_completes_every_request():
    server = make_server()
    report = server.run()
    assert report.total_offered == 50
    assert report.total_completed == 50
    assert report.total_shed == 0
    assert [t.tenant for t in report.tenants] == ["a", "b"]
    # every record's decomposition is coherent
    for rec in server.trace.requests:
        assert rec.completed
        assert rec.dispatch_time >= rec.arrival_time
        assert rec.start_time >= rec.dispatch_time - 1e-12
        assert rec.end_time > rec.start_time
        assert rec.latency >= rec.exec_s - 1e-12


def test_run_is_deterministic():
    r1 = make_server().run()
    r2 = make_server().run()
    assert r1.to_dict() == r2.to_dict()


def test_admission_sheds_are_recorded():
    server = make_server(
        admission=AdmissionPolicy(max_queue_depth=2), max_inflight=1
    )
    report = server.run()
    assert report.total_shed > 0
    assert report.total_shed == server.admission.n_shed
    assert report.total_completed + report.total_shed == 50
    shed = [r for r in server.trace.requests if r.shed]
    assert all(math.isnan(r.latency) for r in shed)


def test_delay_mode_backpressure():
    server = make_server(
        admission=AdmissionPolicy(
            max_queue_depth=2, on_overload="delay", max_delay_s=1.0
        ),
        max_inflight=1,
    )
    report = server.run()
    # ample patience: everything eventually admitted, nothing shed
    assert report.total_shed == 0
    assert report.total_completed == 50
    assert server.admission.n_delayed > 0
    assert any(r.delayed for r in server.trace.requests)


def test_batches_fuse_same_shape_requests():
    heavy = [
        TenantSpec(
            "a", workload="sgemm", size=96, rate_hz=50000.0,
            n_requests=60, seed=3,
        )
    ]
    server = make_server(
        tenants=heavy, batching=BatchPolicy(max_batch=4), max_inflight=2
    )
    server.run()
    assert server.coalescer.mean_batch_size > 1.0
    assert max(r.batch_size for r in server.trace.requests) > 1


def test_lookahead_batches_plan_as_windows():
    """Bulk policy: each coalesced batch plans and commits as one window."""
    server = make_server(
        scheduler="lookahead",
        scheduler_options={"window_size": 8},
        batching=BatchPolicy(max_batch=4),
    )
    report = server.run()
    assert report.total_completed == 50
    sched = server.engine.scheduler
    assert sched.is_bulk
    assert sched.n_windows > 0
    assert sched.n_planned_tasks + sched.n_fallback_tasks == 50
    # accounting must stay coherent although placement was deferred to
    # the per-batch flush
    for rec in server.trace.requests:
        assert rec.completed
        assert rec.dispatch_time >= rec.arrival_time
        assert rec.start_time >= rec.dispatch_time - 1e-12
        assert rec.end_time > rec.start_time
        assert rec.latency >= rec.exec_s - 1e-12
        assert rec.transfer_s >= 0.0
    server.shutdown()


def test_lookahead_serving_is_deterministic():
    kw = dict(scheduler="lookahead", batching=BatchPolicy(max_batch=4))
    r1 = make_server(**kw).run()
    r2 = make_server(**kw).run()
    assert r1.to_dict() == r2.to_dict()


def test_lookahead_faults_surface_as_failed_requests():
    server = make_server(
        scheduler="lookahead",
        faults=FaultModel(kernel_fault_rate=0.9, seed=11),
        recovery=RecoveryPolicy(max_retries=1, blacklist_after=10**6),
    )
    report = server.run()  # must not raise
    failed = sum(t.n_failed for t in report.tenants)
    assert failed > 0
    assert report.total_completed + failed == 50
    for rec in server.trace.requests:
        if rec.failed:
            assert not rec.completed
            assert not math.isnan(rec.dispatch_time)


def test_faults_surface_as_failed_requests_not_crashes():
    server = make_server(
        faults=FaultModel(kernel_fault_rate=0.9, seed=11),
        recovery=RecoveryPolicy(max_retries=1, blacklist_after=10**6),
    )
    report = server.run()  # must not raise
    failed = sum(t.n_failed for t in report.tenants)
    assert failed > 0
    assert report.total_completed + failed == 50
    for rec in server.trace.requests:
        if rec.failed:
            assert not rec.completed
            assert not math.isnan(rec.dispatch_time)


def test_chrome_trace_gets_counters_and_request_rows():
    server = make_server()
    server.run()
    obj = to_chrome_trace(server.trace, server.runtime.machine)
    events = obj["traceEvents"]
    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert "queue depth" in counters
    assert "workers busy" in counters
    assert any(name.startswith("util u") for name in counters)
    # counters never go negative
    for e in events:
        if e["ph"] == "C":
            assert all(
                v >= 0 for v in e["args"].values() if isinstance(v, int)
            )
    rows = [e for e in events if e.get("cat") == "request"]
    assert sum(1 for e in rows if e["ph"] == "X") == 50
    tenant_rows = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 1
    }
    assert tenant_rows == {"tenant a", "tenant b"}


def test_context_manager_shutdown():
    with make_server() as server:
        server.run()
    import numpy as np

    with pytest.raises(PeppherError):
        server.runtime.register(np.zeros(4, dtype=np.float32), "late")
