"""Coalescer: same-shape fusion, greedy vs tenant-led draining."""

import pytest

from repro.serve import BatchPolicy, Coalescer
from repro.serve.client import Request


def req(tenant, req_id, arrival, shape):
    return Request(
        tenant=tenant,
        req_id=req_id,
        arrival_s=arrival,
        codelet_name=shape[0],
        shape_key=shape,
        submit=lambda rt: None,
    )


A = ("sgemm", 256)
B = ("sgemm", 255)


def test_policy_validation():
    with pytest.raises(ValueError):
        BatchPolicy(max_batch=0)


def test_push_and_introspection():
    c = Coalescer()
    c.push(req("x", 0, 0.0, A))
    c.push(req("y", 1, 0.1, A))
    c.push(req("x", 2, 0.2, B))
    assert len(c) == 3
    assert not c.empty
    assert c.pending_for("x") == 2
    assert c.tenants_waiting() == {"x", "y"}
    assert c.oldest_for("x").req_id == 0


def test_take_greedy_drains_deepest_bucket():
    c = Coalescer(BatchPolicy(max_batch=8))
    for i in range(3):
        c.push(req("x", i, i * 0.1, A))
    c.push(req("y", 9, 0.05, B))
    batch = c.take_greedy()
    assert [r.req_id for r in batch] == [0, 1, 2]  # FIFO within bucket
    assert c.take_greedy()[0].req_id == 9
    assert c.empty
    assert c.take_greedy() == []


def test_take_greedy_respects_max_batch():
    c = Coalescer(BatchPolicy(max_batch=2))
    for i in range(5):
        c.push(req("x", i, i * 0.1, A))
    assert [r.req_id for r in c.take_greedy()] == [0, 1]
    assert [r.req_id for r in c.take_greedy()] == [2, 3]
    assert [r.req_id for r in c.take_greedy()] == [4]
    assert c.n_batches == 3
    assert c.n_fused == 2  # two requests rode along in full batches
    assert c.mean_batch_size == pytest.approx(5 / 3)


def test_take_for_leads_with_tenant_and_fuses_others():
    c = Coalescer(BatchPolicy(max_batch=4))
    c.push(req("heavy", 0, 0.0, A))
    c.push(req("heavy", 1, 0.1, A))
    c.push(req("light", 2, 0.2, A))  # same shape as heavy's
    batch = c.take_for("light")
    # light's request leads, heavy's compatible requests fuse in behind
    assert batch[0].tenant == "light"
    assert {r.tenant for r in batch[1:]} == {"heavy"}
    assert len(batch) == 3


def test_take_for_unknown_tenant_returns_empty():
    c = Coalescer()
    c.push(req("x", 0, 0.0, A))
    assert c.take_for("nobody") == []
    assert len(c) == 1


def test_take_for_picks_tenants_oldest_bucket():
    c = Coalescer()
    c.push(req("x", 0, 0.5, A))
    c.push(req("x", 1, 0.1, B))  # older request, different shape
    batch = c.take_for("x")
    assert batch[0].req_id == 1
    assert batch[0].shape_key == B
