"""Tenant specs and load generators."""

import pytest

from repro.errors import PeppherError
from repro.hw.presets import platform_c2050
from repro.runtime.runtime import Runtime
from repro.serve import WORKLOADS, TenantSpec, make_client
from repro.serve.client import ClosedLoopClient, OpenLoopClient


@pytest.fixture
def runtime():
    rt = Runtime(platform_c2050(), noise_sigma=0.0, run_kernels=False)
    yield rt
    rt.shutdown()


def test_spec_validation():
    with pytest.raises(PeppherError):
        TenantSpec("t", workload="nope")
    with pytest.raises(PeppherError):
        TenantSpec("t", size=0)
    with pytest.raises(PeppherError):
        TenantSpec("t", rate_hz=-1.0)
    with pytest.raises(PeppherError):
        TenantSpec("t", n_requests=0)
    with pytest.raises(PeppherError):
        TenantSpec("t", rate_hz=None, concurrency=0)
    with pytest.raises(PeppherError):
        TenantSpec("t", weight=0.0)
    with pytest.raises(PeppherError):
        TenantSpec("")


def test_every_workload_has_a_session(runtime):
    for name in WORKLOADS:
        spec = TenantSpec("t", workload=name, size=64, n_requests=2)
        client = make_client(runtime, spec)
        reqs = client.arrivals()
        assert len(reqs) == 2
        assert all(r.shape_key[0] == name for r in reqs)


def test_open_loop_arrivals_sorted_and_deterministic(runtime):
    spec = TenantSpec("t", rate_hz=500.0, n_requests=20, seed=3)
    a = [r.arrival_s for r in make_client(runtime, spec).arrivals()]
    b = [r.arrival_s for r in make_client(runtime, spec).arrivals()]
    assert a == b
    assert a == sorted(a)
    assert len(a) == 20
    # a different seed gives a different arrival process
    other = TenantSpec("t", rate_hz=500.0, n_requests=20, seed=4)
    assert [r.arrival_s for r in make_client(runtime, other).arrivals()] != a


def test_open_loop_mean_rate_roughly_matches(runtime):
    spec = TenantSpec("t", rate_hz=1000.0, n_requests=400, seed=0)
    arrivals = [r.arrival_s for r in make_client(runtime, spec).arrivals()]
    mean_gap = arrivals[-1] / (len(arrivals) - 1)
    assert mean_gap == pytest.approx(1e-3, rel=0.25)


def test_closed_loop_initial_wave_and_feedback(runtime):
    spec = TenantSpec(
        "t", rate_hz=None, n_requests=5, concurrency=2, think_time_s=0.01
    )
    client = make_client(runtime, spec)
    assert isinstance(client, ClosedLoopClient)
    wave = client.arrivals()
    assert len(wave) == 2  # one per in-flight user
    nxt = client.on_complete(wave[0], end_s=1.0)
    assert nxt is not None and nxt.arrival_s == pytest.approx(1.01)
    client.on_complete(wave[1], end_s=1.0)
    last = client.on_complete(nxt, end_s=2.0)
    assert last is not None
    # budget of 5 requests: 2 initial + 3 follow-ups, then None
    assert client.on_complete(last, end_s=3.0) is None


def test_open_loop_client_type_and_ids(runtime):
    spec = TenantSpec("alice", rate_hz=100.0, n_requests=3)
    client = make_client(runtime, spec)
    assert isinstance(client, OpenLoopClient)
    reqs = client.arrivals()
    assert [r.req_id for r in reqs] == [0, 1, 2]
    assert all(r.tenant == "alice" for r in reqs)
    assert client.on_complete(reqs[0], end_s=1.0) is None


def test_submit_produces_runnable_tasks(runtime):
    spec = TenantSpec("t", workload="sgemm", size=32, n_requests=2, seed=1)
    reqs = make_client(runtime, spec).arrivals()
    t0 = reqs[0].submit(runtime)
    t1 = reqs[1].submit(runtime)
    assert t0.end_time > t0.start_time
    assert t1.end_time > t1.start_time
    # shared read-only inputs, fresh output buffer per request
    assert t0.handles[0] is t1.handles[0]
    assert t0.handles[2] is not t1.handles[2]
