"""The nine-component ODE solver."""

import numpy as np
import pytest

from repro.apps import odesolver as ode


def test_nine_components_declared():
    assert len(ode.COMPONENT_NAMES) == 9
    assert set(ode.INTERFACES) == set(ode.COMPONENT_NAMES)
    for name in ode.COMPONENT_NAMES:
        assert len(ode.IMPLEMENTATIONS[name]) == 3


def test_rhs_is_smooth_and_bounded():
    y = np.linspace(0.5, 1.5, 100).astype(np.float32)
    k = np.empty_like(y)
    ode.ode_rhs_kernel(y, k, 100, 0.0)
    assert np.isfinite(k).all()


def test_accum_update_algebra():
    du = np.array([1.0, 2.0], dtype=np.float32)
    k = np.array([10.0, 20.0], dtype=np.float32)
    ode.ode_accum_kernel(du, k, a=0.5, h=0.1, n=2)
    assert np.allclose(du, [1.5, 3.0])
    y = np.array([0.0, 0.0], dtype=np.float32)
    ode.ode_update_kernel(y, du, b=2.0, n=2)
    assert np.allclose(y, [3.0, 6.0])


def test_norm_kernel_weighted_rms():
    err = np.array([1e-3, 1e-3], dtype=np.float32)
    y = np.zeros(2, dtype=np.float32)
    out = np.zeros(1, dtype=np.float32)
    ode.ode_norm_kernel(err, y, out, 2)
    assert out[0] > 0


def test_output_kernel_strides():
    y = np.arange(16, dtype=np.float32)
    sample = np.zeros(4, dtype=np.float32)
    ode.ode_output_kernel(y, sample, 16, 4)
    assert (sample == [0, 4, 8, 12]).all()


def test_solve_matches_reference():
    n, steps = 96, 25
    inv = ode.local_invoke_table()
    arrays = {
        "y": np.zeros(n, dtype=np.float32),
        "k": np.zeros(n, dtype=np.float32),
        "du": np.zeros(n, dtype=np.float32),
        "err": np.zeros(n, dtype=np.float32),
        "norm": np.zeros(1, dtype=np.float32),
        "sample": np.zeros(8, dtype=np.float32),
    }
    calls = ode.solve(inv, arrays, n, steps=steps)
    assert np.allclose(arrays["y"], ode.reference_solution(n, steps), rtol=1e-4)
    assert calls == 2 + steps * 18 + steps // 10


def test_solve_invocation_count_matches_paper_scale():
    """588 steps yield ~10600 invocations (paper: 10613)."""
    per_step = 18
    total = 2 + 588 * per_step + 588 // 10
    assert abs(total - 10613) < 100


def test_solution_stays_finite_and_positive():
    y = ode.reference_solution(256, 200)
    assert np.isfinite(y).all()
    assert (y > 0).all()  # Brusselator-like dynamics stay positive here


def test_read_norm_hook_called_each_step():
    n, steps = 32, 7
    inv = ode.local_invoke_table()
    arrays = {
        "y": np.zeros(n, dtype=np.float32),
        "k": np.zeros(n, dtype=np.float32),
        "du": np.zeros(n, dtype=np.float32),
        "err": np.zeros(n, dtype=np.float32),
        "norm": np.zeros(1, dtype=np.float32),
        "sample": np.zeros(4, dtype=np.float32),
    }
    seen = []
    ode.solve(
        inv, arrays, n, steps=steps,
        read_norm=lambda: seen.append(float(arrays["norm"][0])),
    )
    assert len(seen) == steps
