"""Cost-model shape checks: the relative structure the figures rely on."""

import pytest

from repro.apps import bfs, hotspot, nw, particlefilter, sgemm, spmv
from repro.apps import odesolver as ode
from repro.apps.costkit import gpu_time, openmp_time, serial_time
from repro.hw.devices import AccessPattern, tesla_c1060, tesla_c2050, xeon_e5520_core


CPU = xeon_e5520_core()
C2050 = tesla_c2050()
C1060 = tesla_c1060()


def test_costkit_openmp_scales_compute_with_cores():
    flops, size = 1e9, 1e6
    t1 = openmp_time(CPU, 1, flops, size)
    t4 = openmp_time(CPU, 4, flops, size)
    assert t4 < t1 / 2  # compute-bound: near-linear scaling


def test_costkit_openmp_bandwidth_saturates():
    size = 1e9  # memory-bound
    t4 = openmp_time(CPU, 4, 1, size)
    t16 = openmp_time(CPU, 16, 1, size)
    assert t16 > 0.9 * t4  # no further scaling past saturation


def test_costkit_validation():
    with pytest.raises(ValueError):
        openmp_time(CPU, 0, 1, 1)
    with pytest.raises(ValueError):
        gpu_time(C2050, 1, 1, AccessPattern.REGULAR, library_factor=0.0)


def test_costkit_library_factor_speeds_up_kernel():
    slow = gpu_time(C2050, 1e9, 1e8, AccessPattern.REGULAR, library_factor=1.0)
    fast = gpu_time(C2050, 1e9, 1e8, AccessPattern.REGULAR, library_factor=0.5)
    assert fast < slow


@pytest.mark.parametrize(
    "gpu_cost,omp_cost,big_ctx",
    [
        (sgemm.cost_cublas, sgemm.cost_openmp, {"m": 2048, "n": 2048, "k": 2048}),
        (
            hotspot.cost_cuda,
            hotspot.cost_openmp,
            {"rows": 1024, "cols": 1024, "iters": 16},
        ),
    ],
)
def test_gpu_wins_large_regular_kernels(gpu_cost, omp_cost, big_ctx):
    t_cuda = gpu_cost(dict(big_ctx), C2050)
    t_omp = omp_cost({**big_ctx, "ncores": 4}, CPU)
    assert t_cuda < t_omp / 3


@pytest.mark.parametrize(
    "gpu_cost,cpu_cost,small_ctx",
    [
        (sgemm.cost_cublas, sgemm.cost_cpu, {"m": 16, "n": 16, "k": 16}),
        (spmv.cost_cuda, spmv.cost_cpu, {"nnz": 200, "nrows": 50}),
    ],
)
def test_cpu_wins_tiny_kernels(gpu_cost, cpu_cost, small_ctx):
    t_cuda = gpu_cost(dict(small_ctx), C2050)
    t_cpu = cpu_cost(dict(small_ctx), CPU)
    assert t_cpu < t_cuda  # launch overhead dominates


def test_c1060_degrades_irregular_kernels_more():
    ctx = {"n_nodes": 1_000_000, "n_edges": 8_000_000}
    slowdown_bfs = bfs.cost_cuda(ctx, C1060) / bfs.cost_cuda(ctx, C2050)
    ctx_hs = {"rows": 1024, "cols": 1024, "iters": 8}
    slowdown_hs = hotspot.cost_cuda(ctx_hs, C1060) / hotspot.cost_cuda(ctx_hs, C2050)
    assert slowdown_bfs > 1.5 * slowdown_hs  # cache-less GPU hurts gathers


def test_branchy_filter_prefers_cpu_gang_on_c1060():
    ctx = {"n_frames": 8, "dim": 64, "n_particles": 100_000, "ncores": 4}
    assert particlefilter.cost_openmp(ctx, CPU) < particlefilter.cost_cuda(ctx, C1060)


def test_nw_wavefront_launches_limit_gpu_advantage():
    """Per-diagonal launches keep nw's GPU advantage far below a
    stencil's: the wavefront app class is where OpenMP stays relevant."""
    ctx_nw = {"n": 2048, "penalty": 2, "ncores": 4}
    nw_advantage = nw.cost_openmp(ctx_nw, CPU) / nw.cost_cuda(ctx_nw, C2050)
    ctx_hs = {"rows": 1024, "cols": 1024, "iters": 16, "ncores": 4}
    hs_advantage = hotspot.cost_openmp(ctx_hs, CPU) / hotspot.cost_cuda(ctx_hs, C2050)
    assert nw_advantage < hs_advantage / 2


def test_costs_monotone_in_problem_size():
    small = sgemm.cost_cublas({"m": 128, "n": 128, "k": 128}, C2050)
    large = sgemm.cost_cublas({"m": 1024, "n": 1024, "k": 1024}, C2050)
    assert large > small


def test_ode_costs_exist_for_all_components():
    for name in ode.COMPONENT_NAMES:
        for suffix in ("cpu", "openmp", "cuda"):
            cost = getattr(ode, f"{name}_cost_{suffix}")
            device = CPU if suffix != "cuda" else C2050
            assert cost({"n": 10_000, "ncores": 4}, device) > 0


def test_ode_rhs_is_the_expensive_component():
    cheap = ode.ode_copy_cost_cpu({"n": 100_000}, CPU)
    pricey = ode.ode_rhs_cost_cpu({"n": 100_000}, CPU)
    assert pricey > cheap
