"""Application kernels: correctness against oracles, variant equivalence."""

import numpy as np
import pytest

from repro.apps import bfs, cfd, hotspot, lud, nw, particlefilter, pathfinder, sgemm, spmv
from repro.workloads import (
    gemm_inputs,
    hotspot_inputs,
    pathfinder_wall,
    random_csr,
    random_graph,
)


# -- spmv ------------------------------------------------------------------

def test_spmv_variants_agree():
    mat = random_csr(200, 200, 6, seed=1)
    x = np.random.default_rng(0).standard_normal(200).astype(np.float32)
    ref = spmv.reference(mat.values, mat.colidxs, mat.rowptr, x, 200)
    for kernel in (spmv.spmv_cpu, spmv.spmv_openmp, spmv.spmv_cuda):
        y = np.zeros(200, dtype=np.float32)
        kernel(mat.values, mat.nnz, 200, 200, 0, mat.colidxs, mat.rowptr, x, y)
        assert np.allclose(y, ref, rtol=1e-5)


def test_spmv_matches_scipy():
    import scipy.sparse

    mat = random_csr(150, 150, 5, seed=2)
    x = np.ones(150, dtype=np.float32)
    sp = scipy.sparse.csr_matrix(
        (mat.values, mat.colidxs, mat.rowptr), shape=(150, 150)
    )
    assert np.allclose(
        spmv.reference(mat.values, mat.colidxs, mat.rowptr, x, 150),
        sp @ x,
        rtol=1e-4,
    )


def test_spmv_chunk_slices_balance_nnz():
    mat = random_csr(1000, 1000, 8, seed=3)
    spans = spmv.chunk_slices(mat.rowptr, 8)
    assert spans[0][0] == 0 and spans[-1][1] == 1000
    assert all(hi > lo for lo, hi in spans)
    nnz_per = [int(mat.rowptr[hi] - mat.rowptr[lo]) for lo, hi in spans]
    assert max(nnz_per) < 2 * min(nnz_per)


def test_spmv_chunk_slices_more_chunks_than_rows():
    mat = random_csr(4, 4, 2, seed=0)
    assert len(spmv.chunk_slices(mat.rowptr, 100)) == 4


def test_spmv_kernel_detects_inconsistent_chunk():
    mat = random_csr(10, 10, 2, seed=0)
    y = np.zeros(10, dtype=np.float32)
    with pytest.raises(ValueError):
        spmv.spmv_cpu(
            mat.values[:-3], mat.nnz, 10, 10, 0, mat.colidxs, mat.rowptr,
            np.ones(10, dtype=np.float32), y,
        )


# -- sgemm ----------------------------------------------------------------

def test_sgemm_variants_agree():
    a, b, c0 = gemm_inputs(20, 30, 10, seed=4)
    ref = sgemm.reference(20, 30, 10, 1.5, a, b, 0.5, c0)
    for kernel in (sgemm.sgemm_cpu, sgemm.sgemm_openmp, sgemm.sgemm_cublas):
        c = c0.copy()
        kernel(20, 30, 10, 1.5, a, b, 0.5, c)
        assert np.allclose(c.reshape(20, 30), ref, rtol=1e-4)


def test_sgemm_beta_zero_ignores_c():
    a, b, c0 = gemm_inputs(8, 8, 8, seed=5)
    c = np.full_like(c0, np.nan)
    c[:] = c0  # defined values, beta=0 must overwrite them
    sgemm.sgemm_cpu(8, 8, 8, 1.0, a, b, 0.0, c)
    assert np.allclose(c, a @ b, rtol=1e-4)


# -- bfs -------------------------------------------------------------------

def test_bfs_costs_match_networkx():
    import networkx as nx

    nodes, edges = random_graph(200, 5, seed=6)
    costs = bfs.reference(nodes, edges, 200, 0)
    g = nx.DiGraph()
    g.add_nodes_from(range(200))
    for u in range(200):
        for e in range(nodes[u], nodes[u + 1]):
            g.add_edge(u, int(edges[e]))
    lengths = nx.single_source_shortest_path_length(g, 0)
    for v in range(200):
        assert costs[v] == lengths.get(v, -1)


def test_bfs_unreachable_marked_minus_one():
    # two nodes, no edge from 0 to 1 except ring (ring guarantees reach);
    # craft manually: node 0 has no edges
    nodes = np.array([0, 0, 1], dtype=np.int32)
    edges = np.array([1], dtype=np.int32)  # node1 -> node1
    costs = bfs.reference(nodes, edges, 2, 0)
    assert costs[0] == 0 and costs[1] == -1


# -- cfd -------------------------------------------------------------------

def test_cfd_variants_agree():
    u, nb = cfd.make_grid(128, seed=7)
    ref = cfd.reference(u, nb, 128, 3)
    for kernel in (cfd.cfd_cpu, cfd.cfd_openmp, cfd.cfd_cuda):
        u2 = u.copy()
        kernel(u2, nb, 128, 3)
        assert np.allclose(u2, ref, rtol=1e-5)


def test_cfd_conserves_on_uniform_state():
    ncells = 64
    u = np.tile(np.array([1.0, 0.0, 0.0, 2.5], dtype=np.float32), ncells)
    _, nb = cfd.make_grid(ncells, seed=0)
    out = cfd.reference(u, nb, ncells, 5)
    assert np.allclose(out, u, atol=1e-5)  # uniform flow: zero net flux


# -- hotspot ---------------------------------------------------------------

def test_hotspot_variants_agree():
    power, temp = hotspot_inputs(16, 16, seed=8)
    ref = hotspot.reference(power, temp, 16, 16, 4)
    for kernel in (hotspot.hotspot_cpu, hotspot.hotspot_openmp, hotspot.hotspot_cuda):
        t = temp.copy()
        kernel(power, t, 16, 16, 4)
        assert np.allclose(t, ref, rtol=1e-5)


def test_hotspot_converges_toward_ambient_without_power():
    temp = np.full(16 * 16, 100.0, dtype=np.float32)
    power = np.zeros(16 * 16, dtype=np.float32)
    out = hotspot.reference(power, temp, 16, 16, 200)
    assert abs(out.mean() - 80.0) < abs(temp.mean() - 80.0)  # cooling to _AMB


# -- lud -------------------------------------------------------------------

@pytest.mark.parametrize("n", [16, 64, 150])  # below, at, above one block
def test_lud_variants_agree(n):
    A0 = lud.make_spd_matrix(n, seed=9)
    ref = lud.reference(A0, n)
    for kernel in (lud.lud_cpu, lud.lud_openmp, lud.lud_cuda):
        A = A0.copy()
        kernel(A, n)
        assert np.allclose(A, ref, rtol=2e-2, atol=2e-2)


def test_lud_factors_reconstruct_matrix():
    n = 80
    A0 = lud.make_spd_matrix(n, seed=10)
    A = A0.copy()
    lud.lud_cpu(A, n)
    lu = A.reshape(n, n).astype(np.float64)
    L = np.tril(lu, -1) + np.eye(n)
    U = np.triu(lu)
    assert np.allclose(L @ U, A0.reshape(n, n), rtol=1e-3, atol=1e-3)


def test_lud_zero_pivot_raises():
    A = np.zeros(4 * 4, dtype=np.float32)
    with pytest.raises(ZeroDivisionError):
        lud.lud_cpu(A, 4)


# -- nw --------------------------------------------------------------------

def test_nw_variants_agree_with_cellwise_oracle():
    s1, s2 = nw.make_sequences(24, seed=11)
    ref = nw.reference(s1, s2, 24, 3)
    for kernel in (nw.nw_cpu, nw.nw_openmp, nw.nw_cuda):
        score = np.zeros(25 * 25, dtype=np.int32)
        kernel(s1, s2, score, 24, 3)
        assert (score == ref).all()


def test_nw_identical_sequences_score_perfectly():
    s = np.arange(10, dtype=np.int32) % 4
    score = np.zeros(11 * 11, dtype=np.int32)
    nw.nw_cpu(s, s, score, 10, 2)
    assert score.reshape(11, 11)[10, 10] == 50  # 10 matches x _MATCH=5


# -- particlefilter -----------------------------------------------------------

def test_particlefilter_variants_agree():
    frames, _ = particlefilter.make_video(5, 24, seed=12)
    ref = particlefilter.reference(frames, 5, 24, 128, 3)
    for kernel in (
        particlefilter.particlefilter_cpu,
        particlefilter.particlefilter_openmp,
        particlefilter.particlefilter_cuda,
    ):
        track = np.zeros(10, dtype=np.float32)
        kernel(frames, 5, 24, 128, 3, track)
        assert np.allclose(track, ref)


def test_particlefilter_tracks_the_blob():
    frames, truth = particlefilter.make_video(10, 48, seed=13)
    track = particlefilter.reference(frames, 10, 48, 2048, 5).reshape(10, 2)
    err = np.abs(track - truth).mean()
    assert err < 2.0


def test_particlefilter_deterministic_per_seed():
    frames, _ = particlefilter.make_video(4, 24, seed=14)
    a = particlefilter.reference(frames, 4, 24, 64, 5)
    b = particlefilter.reference(frames, 4, 24, 64, 5)
    assert (a == b).all()


# -- pathfinder -----------------------------------------------------------------

def test_pathfinder_variants_agree():
    wall = pathfinder_wall(20, 50, seed=15)
    ref = pathfinder.reference(wall, 20, 50)
    for kernel in (
        pathfinder.pathfinder_cpu,
        pathfinder.pathfinder_openmp,
        pathfinder.pathfinder_cuda,
    ):
        out = np.zeros(50, dtype=np.int32)
        kernel(wall, 20, 50, out)
        assert (out == ref).all()


def test_pathfinder_against_bruteforce():
    rng = np.random.default_rng(16)
    rows, cols = 5, 6
    wall = rng.integers(1, 9, size=rows * cols).astype(np.int32)
    w = wall.reshape(rows, cols)

    best = np.full(cols, 10**9)
    import itertools

    for start in range(cols):
        for moves in itertools.product((-1, 0, 1), repeat=rows - 1):
            c = start
            total = w[0, c]
            ok = True
            for r, dc in enumerate(moves, start=1):
                c += dc
                if not 0 <= c < cols:
                    ok = False
                    break
                total += w[r, c]
            if ok:
                best[c] = min(best[c], total)
    assert (pathfinder.reference(wall, rows, cols) == best).all()


# -- interfaces sanity across all simple apps -----------------------------------

@pytest.mark.parametrize(
    "module", [spmv, sgemm, bfs, cfd, hotspot, lud, nw, particlefilter, pathfinder]
)
def test_app_declares_three_platform_variants(module):
    platforms = {impl.platform for impl in module.IMPLEMENTATIONS}
    assert platforms == {"cpu_serial", "openmp", "cuda"}
    assert all(impl.provides == module.INTERFACE.name for impl in module.IMPLEMENTATIONS)
    assert all(impl.kernel_ref and impl.cost_ref for impl in module.IMPLEMENTATIONS)
