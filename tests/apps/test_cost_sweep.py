"""Broad cost-model sweep: sanity across every app, device and size.

Guards the calibration every figure rests on: costs are positive,
finite, monotone in the primary size, and ordered sensibly between the
two GPUs (the C2050 never loses to the C1060 on the same kernel).
"""

import pytest

from repro.apps import bfs, cfd, hotspot, lud, nw, particlefilter, pathfinder, sgemm, sort, spmv
from repro.apps import odesolver as ode
from repro.hw.devices import tesla_c1060, tesla_c2050, xeon_e5520_core

CPU = xeon_e5520_core()
C2050 = tesla_c2050()
C1060 = tesla_c1060()

#: (module, cuda cost fn name, primary size key, small ctx, big ctx)
SWEEPS = [
    (spmv, "cost_cuda", {"nnz": 10_000, "nrows": 1_000}, {"nnz": 1_000_000, "nrows": 100_000}),
    (sgemm, "cost_cublas", {"m": 64, "n": 64, "k": 64}, {"m": 1024, "n": 1024, "k": 1024}),
    (bfs, "cost_cuda", {"n_nodes": 1_000, "n_edges": 8_000}, {"n_nodes": 100_000, "n_edges": 800_000}),
    (cfd, "cost_cuda", {"ncells": 1_000, "iters": 4}, {"ncells": 100_000, "iters": 4}),
    (hotspot, "cost_cuda", {"rows": 64, "cols": 64, "iters": 8}, {"rows": 1024, "cols": 1024, "iters": 8}),
    (lud, "cost_cuda", {"n": 64}, {"n": 1024}),
    (nw, "cost_cuda", {"n": 64, "penalty": 2}, {"n": 2048, "penalty": 2}),
    (particlefilter, "cost_cuda", {"n_frames": 8, "dim": 64, "n_particles": 1_000}, {"n_frames": 8, "dim": 64, "n_particles": 100_000}),
    (pathfinder, "cost_cuda", {"rows": 50, "cols": 1_000}, {"rows": 50, "cols": 1_000_000}),
    (sort, "cost_cuda", {"n": 2_000}, {"n": 2_000_000}),
]

_GPU_FN = {sgemm: "cost_cublas"}


def _cost_fns(module):
    gpu = getattr(module, _GPU_FN.get(module, "cost_cuda"))
    return [
        (getattr(module, "cost_cpu"), CPU),
        (getattr(module, "cost_openmp"), CPU),
        (gpu, C2050),
        (gpu, C1060),
    ]


@pytest.mark.parametrize("module,_gpu,small,big", SWEEPS)
def test_costs_positive_finite_and_monotone(module, _gpu, small, big):
    import math

    for fn, device in _cost_fns(module):
        ctx_small = {**small, "ncores": 4}
        ctx_big = {**big, "ncores": 4}
        t_small = fn(ctx_small, device)
        t_big = fn(ctx_big, device)
        assert 0 < t_small < 10 and math.isfinite(t_small)
        assert t_big > t_small, (module.__name__, fn.__name__)


@pytest.mark.parametrize("module,gpu_name,small,big", SWEEPS)
def test_c2050_never_loses_to_c1060(module, gpu_name, small, big):
    gpu = getattr(module, gpu_name)
    for ctx in (small, big):
        assert gpu(dict(ctx), C2050) <= gpu(dict(ctx), C1060)


@pytest.mark.parametrize(
    "suffix,device",
    [("cpu", CPU), ("openmp", CPU), ("cuda", C2050), ("cuda", C1060)],
)
@pytest.mark.parametrize("name", ode.COMPONENT_NAMES)
def test_ode_component_costs_monotone(name, suffix, device):
    cost = getattr(ode, f"{name}_cost_{suffix}")
    small = cost({"n": 1_000, "ncores": 4}, device)
    big = cost({"n": 1_000_000, "ncores": 4}, device)
    assert 0 < small < big


def test_openmp_never_slower_than_serial_at_size():
    """The gang must beat one core on large problems for every app."""
    for module, _, _, big in SWEEPS:
        ctx = {**big, "ncores": 4}
        assert module.cost_openmp(ctx, CPU) < module.cost_cpu(dict(big), CPU), (
            module.__name__
        )
