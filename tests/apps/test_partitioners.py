"""Intra-component parallelism helpers (paper section IV-F)."""

import numpy as np
import pytest

from repro.apps import sgemm, spmv
from repro.composer.glue import lower_component
from repro.hw.presets import cpu_only, platform_c2050
from repro.runtime import Runtime
from repro.workloads.dense import gemm_inputs
from repro.workloads.sparse import random_csr


def test_sgemm_blocked_matches_reference():
    """Blocked matrix multiplication: row-block sub-tasks concatenate to
    the full result (the paper's canonical example)."""
    m = n = k = 96
    rt = Runtime(platform_c2050(), scheduler="dmda", seed=0)
    cl = lower_component(sgemm.INTERFACE, sgemm.IMPLEMENTATIONS).without(
        ["sgemm_openmp"]
    )
    a, b, c0 = gemm_inputs(m, n, k, seed=1)
    c = c0.copy()
    ha = rt.register(a, "A")
    hb = rt.register(b, "B")
    hc = rt.register(c, "C")
    tasks = sgemm.submit_partitioned(rt, cl, ha, hb, hc, m, n, k, 1.5, 0.5, 4)
    assert len(tasks) == 4
    rt.unpartition(hc)
    rt.unpartition(ha)
    ref = sgemm.reference(m, n, k, 1.5, a, b, 0.5, c0)
    assert np.allclose(c.reshape(m, n), ref, rtol=1e-3)
    rt.shutdown()


def test_sgemm_blocks_share_b_single_upload():
    """B is read by every block: one h2d transfer serves all GPU blocks."""
    m = n = k = 64
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    cuda_only = [i for i in sgemm.IMPLEMENTATIONS if i.platform == "cuda"]
    cl = lower_component(sgemm.INTERFACE, cuda_only)
    a, b, c0 = gemm_inputs(m, n, k, seed=2)
    ha = rt.register(a, "A")
    hb = rt.register(b, "B")
    hc = rt.register(c0.copy(), "C")
    sgemm.submit_partitioned(rt, cl, ha, hb, hc, m, n, k, 1.0, 0.0, 4)
    rt.unpartition(hc)
    b_uploads = [
        t for t in rt.trace.transfers if t.is_h2d and t.handle_name == "B"
    ]
    assert len(b_uploads) == 1
    rt.shutdown()


def test_spmv_partitioned_on_cpu_only_machine():
    """The same partitioned call runs unchanged without a GPU."""
    mat = random_csr(600, 600, 6, seed=3)
    rt = Runtime(cpu_only(4), scheduler="eager", seed=0, noise_sigma=0.0)
    cpu_impls = [i for i in spmv.IMPLEMENTATIONS if i.platform == "cpu_serial"]
    cl = lower_component(spmv.INTERFACE, cpu_impls)
    x = np.ones(600, dtype=np.float32)
    y = np.zeros(600, dtype=np.float32)
    hv = rt.register(mat.values)
    hc = rt.register(mat.colidxs)
    hp = rt.register(mat.rowptr)
    hx = rt.register(x)
    hy = rt.register(y)
    tasks = spmv.submit_partitioned(rt, cl, hv, hc, hp, hx, hy, mat.rowptr, 600, 8)
    rt.unpartition(hy)
    ref = spmv.reference(mat.values, mat.colidxs, mat.rowptr, x, 600)
    assert np.allclose(y, ref, rtol=1e-4)
    # chunks genuinely spread over the four cores
    workers = {w for t in tasks for w in t.workers}
    assert len(workers) == 4
    rt.shutdown()


def test_spmv_chunks_overlap_in_time():
    mat = random_csr(2000, 2000, 8, seed=4)
    rt = Runtime(cpu_only(4), scheduler="eager", seed=0, noise_sigma=0.0)
    cpu_impls = [i for i in spmv.IMPLEMENTATIONS if i.platform == "cpu_serial"]
    cl = lower_component(spmv.INTERFACE, cpu_impls)
    hv = rt.register(mat.values)
    hc = rt.register(mat.colidxs)
    hp = rt.register(mat.rowptr)
    hx = rt.register(np.ones(2000, dtype=np.float32))
    hy = rt.register(np.zeros(2000, dtype=np.float32))
    tasks = spmv.submit_partitioned(rt, cl, hv, hc, hp, hx, hy, mat.rowptr, 2000, 8)
    rt.wait_for_all()
    # at least two chunk tasks run concurrently
    t0 = tasks[0]
    assert any(
        t.start_time < t0.end_time and t0.start_time < t.end_time
        for t in tasks[1:]
    )
    rt.shutdown()


def test_partitioned_speedup_over_single_task():
    """The whole point: one invocation mapped to sub-tasks finishes
    faster than the same invocation as a single task."""
    mat = random_csr(20_000, 20_000, 8, seed=5)
    x = np.ones(20_000, dtype=np.float32)

    def single():
        rt = Runtime(cpu_only(4), scheduler="eager", seed=0, noise_sigma=0.0)
        cpu_impls = [i for i in spmv.IMPLEMENTATIONS if i.platform == "cpu_serial"]
        cl = lower_component(spmv.INTERFACE, cpu_impls)
        hv = rt.register(mat.values)
        hc = rt.register(mat.colidxs)
        hp = rt.register(mat.rowptr)
        hx = rt.register(x)
        hy = rt.register(np.zeros(20_000, dtype=np.float32))
        rt.submit(
            cl,
            [(hv, "r"), (hc, "r"), (hp, "r"), (hx, "r"), (hy, "w")],
            ctx={"nnz": mat.nnz, "nrows": 20_000},
            scalar_args=(mat.nnz, 20_000, 20_000, 0),
        )
        return rt.shutdown()

    def partitioned():
        rt = Runtime(cpu_only(4), scheduler="eager", seed=0, noise_sigma=0.0)
        cpu_impls = [i for i in spmv.IMPLEMENTATIONS if i.platform == "cpu_serial"]
        cl = lower_component(spmv.INTERFACE, cpu_impls)
        hv = rt.register(mat.values)
        hc = rt.register(mat.colidxs)
        hp = rt.register(mat.rowptr)
        hx = rt.register(x)
        hy = rt.register(np.zeros(20_000, dtype=np.float32))
        spmv.submit_partitioned(rt, cl, hv, hc, hp, hx, hy, mat.rowptr, 20_000, 8)
        rt.unpartition(hy)
        return rt.shutdown()

    assert partitioned() < single() / 2.5  # ~4 cores worth of speedup
