"""The OpenCL backend: portability when CUDA variants are unavailable."""

import numpy as np

from repro.apps import hotspot
from repro.composer.glue import lower_component
from repro.hw.devices import tesla_c2050
from repro.hw.presets import platform_c2050
from repro.runtime import Runtime
from repro.runtime.archs import Arch
from repro.workloads.grids import hotspot_inputs


def _codelet_with_opencl():
    return lower_component(
        hotspot.INTERFACE,
        list(hotspot.IMPLEMENTATIONS) + [hotspot.OPENCL_IMPLEMENTATION],
    )


def test_opencl_variant_lowered_to_gpu_arch():
    cl = _codelet_with_opencl()
    opencl = [v for v in cl.variants if v.arch is Arch.OPENCL]
    assert [v.name for v in opencl] == ["hotspot_opencl"]


def test_opencl_cost_between_cuda_and_cpu():
    ctx = {"rows": 512, "cols": 512, "iters": 16, "ncores": 4}
    dev = tesla_c2050()
    from repro.hw.devices import xeon_e5520_core

    t_cuda = hotspot.cost_cuda(ctx, dev)
    t_opencl = hotspot.cost_opencl(ctx, dev)
    t_omp = hotspot.cost_openmp(ctx, xeon_e5520_core())
    assert t_cuda < t_opencl < t_omp  # portable but less tuned


def test_opencl_runs_when_cuda_is_narrowed_out():
    """disableImpls on the CUDA variant leaves the OpenCL port to keep
    the GPU busy — the portability story of the component model."""
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    cl = _codelet_with_opencl().without(["hotspot_cuda", "hotspot_cpu", "hotspot_openmp"])
    power, temp = hotspot_inputs(24, 24, seed=1)
    hp = rt.register(power)
    ht = rt.register(temp)
    rt.submit(
        cl,
        [(hp, "r"), (ht, "rw")],
        ctx={"rows": 24, "cols": 24, "iters": 4},
        scalar_args=(24, 24, 4),
        sync=True,
    )
    rec = rt.trace.tasks[0]
    assert rec.arch == "opencl"
    assert rec.worker_ids[0] == rt.machine.gpu_units[0].unit_id
    rt.acquire(ht, "r")
    power2, temp2 = hotspot_inputs(24, 24, seed=1)
    ref = hotspot.reference(power2, temp2, 24, 24, 4)
    assert np.allclose(temp, ref, rtol=1e-5)
    rt.shutdown()


def test_dmda_prefers_cuda_over_opencl_when_both_present():
    rt = Runtime(platform_c2050(), scheduler="dmda", seed=0)
    cl = _codelet_with_opencl()
    power, temp = hotspot_inputs(128, 128, seed=2)
    hp = rt.register(power)
    ht = rt.register(temp)
    for _ in range(16):
        rt.submit(
            cl,
            [(hp, "r"), (ht, "rw")],
            ctx={"rows": 128, "cols": 128, "iters": 8},
            scalar_args=(128, 128, 8),
        )
    rt.wait_for_all()
    tail = [rec.variant for rec in rt.trace.tasks][-6:]
    assert all(v == "hotspot_cuda" for v in tail)
    rt.shutdown()
