"""Platform presets."""

import pytest

from repro.hw.presets import by_name, cpu_only, platform_c1060, platform_c2050


def test_c2050_platform_layout():
    m = platform_c2050()
    assert len(m.cpu_units) == 3  # one of 4 cores drives the GPU
    assert len(m.gpu_units) == 1
    assert m.gpu_units[0].device.name == "Tesla C2050"
    assert m.links[1].duplex  # Fermi has two DMA engines


def test_c1060_platform_layout():
    m = platform_c1060()
    assert m.gpu_units[0].device.name == "Tesla C1060"
    assert not m.links[1].duplex


def test_cpu_only_has_no_gpu():
    m = cpu_only(4)
    assert len(m.cpu_units) == 4
    assert not m.gpu_units
    assert m.n_memory_nodes == 1


def test_by_name_dispatch():
    assert by_name("c2050").name == "xeon-e5520+c2050"
    assert by_name("cpu", n_cpu_cores=2).name == "xeon-e5520-2c"


def test_by_name_unknown():
    with pytest.raises(KeyError):
        by_name("gtx9000")


def test_custom_core_count():
    assert len(platform_c2050(n_cpu_cores=5).cpu_units) == 4
