"""Machine assembly and transfer routing."""

import pytest

from repro.errors import RuntimeSystemError
from repro.hw.devices import tesla_c1060, tesla_c2050, xeon_e5520_core
from repro.hw.description import HOST_NODE, make_machine
from repro.hw.interconnect import pcie2_x16


def _machine(n_cores=4, gpus=1, reserve=True):
    return make_machine(
        "m",
        cpu=xeon_e5520_core(),
        n_cpu_cores=n_cores,
        gpus=[tesla_c2050() for _ in range(gpus)],
        reserve_core_per_gpu=reserve,
    )


def test_reserves_one_core_per_gpu():
    m = _machine(4, 1)
    assert len(m.cpu_units) == 3
    assert len(m.gpu_units) == 1


def test_no_reservation_exposes_all_cores():
    m = _machine(4, 1, reserve=False)
    assert len(m.cpu_units) == 4


def test_memory_nodes():
    m = _machine(4, 2)
    assert m.n_memory_nodes == 3
    assert {u.memory_node for u in m.cpu_units} == {HOST_NODE}
    assert {u.memory_node for u in m.gpu_units} == {1, 2}


def test_unit_ids_are_dense():
    m = _machine(4, 2)
    assert [u.unit_id for u in m.units] == list(range(len(m.units)))


def test_too_many_gpus_for_cores():
    with pytest.raises(ValueError):
        _machine(1, 2)


def test_needs_a_core():
    with pytest.raises(ValueError):
        make_machine("m", cpu=xeon_e5520_core(), n_cpu_cores=0)


def test_unit_lookup_bounds():
    m = _machine()
    with pytest.raises(RuntimeSystemError):
        m.unit(99)


def test_transfer_same_node_free():
    m = _machine()
    assert m.transfer_time(HOST_NODE, HOST_NODE, 1 << 20) == 0.0


def test_transfer_host_to_gpu_uses_link():
    m = _machine()
    expected = pcie2_x16().transfer_time(1 << 20)
    assert m.transfer_time(HOST_NODE, 1, 1 << 20) == pytest.approx(expected)


def test_transfer_gpu_to_gpu_stages_through_host():
    m = _machine(4, 2)
    one_leg = m.transfer_time(HOST_NODE, 1, 1 << 20)
    assert m.transfer_time(1, 2, 1 << 20) == pytest.approx(2 * one_leg)


def test_transfer_unknown_node_rejected():
    m = _machine()
    with pytest.raises(RuntimeSystemError):
        m.transfer_time(0, 5, 1024)


def test_describe_is_structured():
    desc = _machine().describe()
    assert desc["fidelity"] == "coarse"
    assert desc["n_memory_nodes"] == 2
    names = [u["device"]["name"] for u in desc["units"]]
    assert "Tesla C2050" in names
    assert desc["links"][1]["bandwidth_gbs"] == pytest.approx(5.5)


def test_summary_lists_units():
    text = _machine().summary()
    assert "Tesla C2050" in text and "Xeon" in text


def test_mixed_gpu_machine():
    m = make_machine(
        "mix",
        cpu=xeon_e5520_core(),
        n_cpu_cores=6,
        gpus=[tesla_c2050(), tesla_c1060()],
    )
    names = [u.device.name for u in m.gpu_units]
    assert names == ["Tesla C2050", "Tesla C1060"]
