"""Hierarchical device models: occupancy, memory blend, tier equivalence."""

import pytest

from repro.hw.devices import AccessPattern, tesla_c2050, xeon_e5520_core
from repro.hw.model import (
    DEFAULT_PROFILES,
    CoarseDeviceModel,
    DetailedDeviceModel,
    KernelProfile,
    LatencyTable,
    MemoryHierarchy,
    SMConfig,
)
from repro.hw.zoo import fermi_c2050, volta_v100


def _fermi_model() -> DetailedDeviceModel:
    return fermi_c2050("detailed").model


def _volta_model() -> DetailedDeviceModel:
    return volta_v100("detailed").model


# -- SMConfig ---------------------------------------------------------------

def test_sm_config_derived_quantities():
    sm = _fermi_model().sm
    assert sm.max_warps_per_sm == 48
    assert sm.issue_width == pytest.approx(1.0)


def test_sm_config_rejects_bad_values():
    with pytest.raises(ValueError):
        SMConfig(
            n_sms=0, cores_per_sm=32, clock_ghz=1.0,
            max_threads_per_sm=1024, max_blocks_per_sm=8,
            registers_per_sm=32768, shared_mem_per_sm=49152,
        )
    with pytest.raises(ValueError):
        SMConfig(
            n_sms=14, cores_per_sm=32, clock_ghz=1.0,
            max_threads_per_sm=1000,  # not a multiple of warp_size
            max_blocks_per_sm=8,
            registers_per_sm=32768, shared_mem_per_sm=49152,
        )


def test_detailed_peak_matches_headline():
    """n_sms * cores_per_sm * 2 * clock reproduces the published peak."""
    for spec in (fermi_c2050("detailed"), volta_v100("detailed")):
        sm = spec.model.sm
        issue_peak = sm.n_sms * sm.cores_per_sm * 2 * sm.clock_ghz
        assert issue_peak == pytest.approx(spec.peak_gflops, rel=0.02)


# -- MemoryHierarchy --------------------------------------------------------

def test_memory_blend_bounds():
    mem = _fermi_model().memory
    bw = mem.effective_bandwidth_gbs()
    assert mem.dram_bandwidth_gbs <= bw <= mem.l1_bandwidth_gbs


def test_memory_blend_zero_hit_rates_is_dram():
    mem = MemoryHierarchy(0.0, 0.0, 1000.0, 500.0, 100.0)
    assert mem.effective_bandwidth_gbs() == pytest.approx(100.0)
    assert mem.dram_fraction() == pytest.approx(1.0)


def test_memory_rejects_inverted_bandwidths():
    with pytest.raises(ValueError):
        MemoryHierarchy(0.5, 0.5, 100.0, 500.0, 1000.0)


def test_memory_rejects_bad_hit_rate():
    with pytest.raises(ValueError):
        MemoryHierarchy(1.5, 0.5, 1000.0, 500.0, 100.0)


# -- LatencyTable -----------------------------------------------------------

def test_mean_latency_weighted():
    lat = LatencyTable(fma=10.0, ldst_global=400.0)
    assert lat.mean_latency({"fma": 1.0}) == pytest.approx(10.0)
    assert lat.mean_latency({"fma": 0.5, "ldst_global": 0.5}) == pytest.approx(205.0)


def test_mean_latency_rejects_unknown_class():
    with pytest.raises(ValueError):
        LatencyTable().mean_latency({"tensorcore": 1.0})


def test_mean_latency_rejects_empty_mix():
    with pytest.raises(ValueError):
        LatencyTable().mean_latency({})


# -- occupancy --------------------------------------------------------------

def test_occupancy_respects_all_limits():
    model = _fermi_model()
    for profile in DEFAULT_PROFILES.values():
        occ = model.occupancy(profile)
        sm = model.sm
        assert 1 <= occ.active_blocks <= sm.max_blocks_per_sm
        assert occ.active_warps <= sm.max_warps_per_sm
        assert occ.active_blocks * profile.threads_per_block <= sm.max_threads_per_sm
        assert (
            occ.active_blocks * profile.regs_per_thread * profile.threads_per_block
            <= sm.registers_per_sm
        )
        assert 0.0 < occ.fraction <= 1.0


def test_occupancy_register_limited_on_fermi():
    occ = _fermi_model().occupancy(DEFAULT_PROFILES[AccessPattern.REGULAR])
    assert occ.limiter == "registers"


def test_occupancy_infeasible_launch_shape():
    model = _fermi_model()
    fat = KernelProfile(threads_per_block=1024, regs_per_thread=64)
    with pytest.raises(ValueError):
        model.occupancy(fat)  # 64 KB of regs/block on a 32 KB-reg SM
    assert not model.feasible(fat)
    assert model.feasible(DEFAULT_PROFILES[AccessPattern.REGULAR])


def test_volta_reaches_full_occupancy():
    occ = _volta_model().occupancy(DEFAULT_PROFILES[AccessPattern.REGULAR])
    assert occ.fraction == pytest.approx(1.0)


# -- tier equivalence and dispatch ------------------------------------------

def test_coarse_model_matches_modelless_spec():
    bare = tesla_c2050()
    import dataclasses
    explicit = dataclasses.replace(bare, model=CoarseDeviceModel())
    for pattern in AccessPattern:
        for flops, nbytes in [(1e9, 4e8), (0.0, 1e6), (1e7, 0.0)]:
            assert explicit.roofline_time(flops, nbytes, pattern) == (
                bare.roofline_time(flops, nbytes, pattern)
            )


def test_coarse_model_equality():
    assert CoarseDeviceModel() == CoarseDeviceModel()
    assert CoarseDeviceModel().knobs() == {}


def test_fidelity_property():
    assert tesla_c2050().fidelity == "coarse"
    assert fermi_c2050("coarse").fidelity == "coarse"
    assert fermi_c2050("detailed").fidelity == "detailed"
    assert xeon_e5520_core().fidelity == "coarse"


def test_detailed_tier_changes_gpu_pricing():
    coarse = fermi_c2050("coarse")
    detailed = fermi_c2050("detailed")
    t_c = coarse.roofline_time(1e9, 4e8, AccessPattern.IRREGULAR)
    t_d = detailed.roofline_time(1e9, 4e8, AccessPattern.IRREGULAR)
    assert t_c != t_d
    # the detailed tier punishes low-occupancy irregular kernels harder
    assert t_d > t_c


def test_detailed_time_positive_and_includes_launch():
    spec = fermi_c2050("detailed")
    assert spec.roofline_time(0.0, 0.0) == pytest.approx(spec.launch_overhead_s)
    assert spec.roofline_time(1e6, 1e6) > spec.launch_overhead_s


def test_with_hit_rates_copy():
    model = _fermi_model()
    hot = model.with_hit_rates(l1_hit_rate=0.9)
    assert hot.memory.l1_hit_rate == pytest.approx(0.9)
    assert hot.memory.l2_hit_rate == model.memory.l2_hit_rate
    assert hot.sm == model.sm
    assert hot != model


def test_describe_carries_fidelity_and_knobs():
    desc = _fermi_model().describe()
    assert desc["fidelity"] == "detailed"
    assert desc["sm"]["n_sms"] == 14
    assert "l1_hit_rate" in desc["memory"]
    assert "ldst_global" in desc["latency"]


def test_kernel_profile_hashable():
    a = KernelProfile()
    b = KernelProfile()
    assert hash(a) == hash(b)
    assert a == b
