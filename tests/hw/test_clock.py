"""Virtual clock semantics."""

import pytest

from repro.hw.clock import VirtualClock


def test_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_custom_start():
    assert VirtualClock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == 2.0


def test_advance_returns_new_time():
    assert VirtualClock().advance(3.0) == 3.0


def test_advance_negative_rejected():
    with pytest.raises(ValueError):
        VirtualClock().advance(-0.1)


def test_advance_zero_is_noop():
    clock = VirtualClock(1.0)
    clock.advance(0.0)
    assert clock.now == 1.0


def test_advance_to_moves_forward():
    clock = VirtualClock()
    clock.advance_to(4.0)
    assert clock.now == 4.0


def test_advance_to_never_goes_backwards():
    clock = VirtualClock(10.0)
    clock.advance_to(3.0)
    assert clock.now == 10.0


def test_reset():
    clock = VirtualClock(7.0)
    clock.reset()
    assert clock.now == 0.0


def test_reset_negative_rejected():
    with pytest.raises(ValueError):
        VirtualClock().reset(-2.0)
