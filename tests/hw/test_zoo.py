"""Device zoo and the blessed `machine()` preset registry."""

import pytest

from repro.hw.presets import PRESETS, machine
from repro.hw.zoo import ZOO_DEVICES, ZOO_PRESETS


def test_zoo_spans_four_generations():
    assert sorted(ZOO_PRESETS) == ["fermi", "kepler", "pascal", "volta"]
    assert sorted(ZOO_DEVICES) == sorted(ZOO_PRESETS)


@pytest.mark.parametrize("name", sorted(ZOO_PRESETS))
def test_zoo_presets_exist_at_both_tiers(name):
    coarse = machine(name)
    detailed = machine(name, fidelity="detailed")
    assert coarse.fidelity == "coarse"
    assert detailed.fidelity == "detailed"
    # same platform shape, only the GPU's model differs
    assert len(coarse.units) == len(detailed.units)
    (gpu_c,) = coarse.gpu_units
    (gpu_d,) = detailed.gpu_units
    assert gpu_c.device.name == gpu_d.device.name
    assert gpu_c.device.model is None
    assert gpu_d.device.model is not None
    assert gpu_d.device.model.fidelity == "detailed"


@pytest.mark.parametrize("name", sorted(ZOO_DEVICES))
def test_zoo_detailed_peaks_match_headlines(name):
    spec = ZOO_DEVICES[name]("detailed")
    sm = spec.model.sm
    assert sm.n_sms * sm.cores_per_sm * 2 * sm.clock_ghz == pytest.approx(
        spec.peak_gflops, rel=0.02
    )
    assert spec.model.memory.dram_bandwidth_gbs == pytest.approx(
        spec.mem_bandwidth_gbs
    )


def test_generations_are_ordered_by_throughput():
    peaks = [ZOO_DEVICES[g]().peak_gflops for g in ("fermi", "kepler", "pascal", "volta")]
    assert peaks == sorted(peaks)


def test_machine_registry_covers_paper_platforms():
    m = machine("c2050")
    assert m.name == "xeon-e5520+c2050"
    assert m.fidelity == "coarse"


def test_machine_registry_forwards_kwargs():
    m = machine("volta", n_cpu_cores=8)
    assert len(m.cpu_units) == 7  # one core drives the GPU


def test_machine_unknown_name():
    with pytest.raises(KeyError, match="unknown platform preset"):
        machine("turing")


def test_machine_unknown_fidelity():
    with pytest.raises(ValueError, match="fidelity"):
        machine("volta", fidelity="exact")


def test_paper_platforms_are_coarse_only():
    for name in PRESETS:
        with pytest.raises(ValueError, match="coarse tier"):
            machine(name, fidelity="detailed")


def test_zoo_links_match_generation():
    assert machine("fermi").links[1].bandwidth_gbs == pytest.approx(5.5)
    assert machine("volta").links[1].bandwidth_gbs == pytest.approx(12.0)


def test_describe_includes_model_knobs():
    desc = machine("pascal", fidelity="detailed").describe()
    gpu = [u for u in desc["units"] if u["device"]["kind"] == "gpu"][0]
    assert gpu["device"]["fidelity"] == "detailed"
    assert gpu["device"]["model"]["sm"]["n_sms"] == 56
    coarse_gpu = [
        u for u in machine("pascal").describe()["units"]
        if u["device"]["kind"] == "gpu"
    ][0]
    assert "model" not in coarse_gpu["device"]
