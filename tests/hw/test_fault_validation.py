"""FaultModel attach-time validation against machine and clock."""

import pytest

from repro.hw.faults import FaultModel
from repro.hw.presets import cpu_only, platform_c2050
from repro.runtime import Runtime


def _unknown_unit(machine):
    return max(u.unit_id for u in machine.units) + 7


def test_validate_for_accepts_known_units_and_future_times():
    machine = platform_c2050()
    unit = machine.units[0].unit_id
    FaultModel(device_loss_at={unit: 1.0}).validate_for(machine, now=0.0)


def test_validate_for_rejects_unknown_unit():
    machine = platform_c2050()
    bad = _unknown_unit(machine)
    with pytest.raises(ValueError, match=f"unit {bad}"):
        FaultModel(device_loss_at={bad: 1.0}).validate_for(machine)


def test_validate_for_rejects_loss_time_in_the_past():
    machine = platform_c2050()
    unit = machine.units[0].unit_id
    with pytest.raises(ValueError, match="past"):
        FaultModel(device_loss_at={unit: 1.0}).validate_for(machine, now=2.0)
    # exactly "now" is still schedulable
    FaultModel(device_loss_at={unit: 2.0}).validate_for(machine, now=2.0)


def test_runtime_rejects_fault_model_naming_unknown_unit():
    machine = cpu_only(2)
    bad = _unknown_unit(machine)
    with pytest.raises(ValueError, match="only has units"):
        Runtime(machine, faults=FaultModel(device_loss_at={bad: 0.5}))


def test_runtime_accepts_valid_fault_model():
    machine = platform_c2050()
    unit = machine.gpu_units[0].unit_id
    rt = Runtime(machine, faults=FaultModel(device_loss_at={unit: 10.0}))
    rt.shutdown()
