"""PCIe link model."""

import pytest

from repro.hw.interconnect import LinkSpec, pcie2_x16


def test_transfer_time_is_latency_plus_bandwidth_term():
    link = LinkSpec(bandwidth_gbs=1.0, latency_s=1e-3)
    assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-3)


def test_zero_bytes_costs_nothing():
    assert pcie2_x16().transfer_time(0) == 0.0


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        pcie2_x16().transfer_time(-1)


def test_monotone_in_size():
    link = pcie2_x16()
    assert link.transfer_time(2_000_000) > link.transfer_time(1_000_000)


def test_validation():
    with pytest.raises(ValueError):
        LinkSpec(bandwidth_gbs=0.0)
    with pytest.raises(ValueError):
        LinkSpec(latency_s=-1e-9)


def test_pcie2_defaults():
    link = pcie2_x16()
    assert link.bandwidth_gbs == pytest.approx(5.5)
    assert not link.duplex
    assert pcie2_x16(duplex=True).duplex
