"""Device model validation and roofline arithmetic."""

import pytest

from repro.hw.devices import (
    AccessPattern,
    DeviceKind,
    DeviceSpec,
    tesla_c1060,
    tesla_c2050,
    xeon_e5520_core,
)


def _spec(**overrides) -> DeviceSpec:
    base = dict(
        name="test",
        kind=DeviceKind.CPU,
        peak_gflops=10.0,
        mem_bandwidth_gbs=5.0,
        launch_overhead_s=1e-6,
    )
    base.update(overrides)
    return DeviceSpec(**base)


def test_rates_must_be_positive():
    with pytest.raises(ValueError):
        _spec(peak_gflops=0.0)
    with pytest.raises(ValueError):
        _spec(mem_bandwidth_gbs=-1.0)


def test_negative_launch_overhead_rejected():
    with pytest.raises(ValueError):
        _spec(launch_overhead_s=-1e-9)


@pytest.mark.parametrize("field", ["regular_efficiency", "irregular_efficiency", "branchy_efficiency"])
@pytest.mark.parametrize("bad", [0.0, 1.5, -0.2])
def test_efficiency_bounds(field, bad):
    with pytest.raises(ValueError):
        _spec(**{field: bad})


def test_efficiency_lookup_matches_pattern():
    spec = _spec(
        regular_efficiency=0.9, irregular_efficiency=0.3, branchy_efficiency=0.5
    )
    assert spec.efficiency(AccessPattern.REGULAR) == 0.9
    assert spec.efficiency(AccessPattern.IRREGULAR) == 0.3
    assert spec.efficiency(AccessPattern.BRANCHY) == 0.5


def test_effective_rates_scale_peak():
    spec = _spec(regular_efficiency=0.5)
    assert spec.effective_gflops(AccessPattern.REGULAR) == pytest.approx(5.0)
    assert spec.effective_bandwidth_gbs(AccessPattern.REGULAR) == pytest.approx(2.5)


def test_roofline_compute_bound():
    spec = _spec(regular_efficiency=1.0)
    # 1e10 flops at 10 GF/s = 1 s; memory side is negligible
    t = spec.roofline_time(1e10, 8)
    assert t == pytest.approx(1.0 + spec.launch_overhead_s, rel=1e-6)


def test_roofline_memory_bound():
    spec = _spec(regular_efficiency=1.0)
    # 5e9 bytes at 5 GB/s = 1 s; compute side negligible
    t = spec.roofline_time(8, 5e9)
    assert t == pytest.approx(1.0 + spec.launch_overhead_s, rel=1e-6)


def test_roofline_takes_max_of_both():
    spec = _spec(regular_efficiency=1.0)
    t_both = spec.roofline_time(1e10, 5e9)
    assert t_both == pytest.approx(1.0 + spec.launch_overhead_s, rel=1e-6)


def test_roofline_rejects_negative():
    with pytest.raises(ValueError):
        _spec().roofline_time(-1, 0)
    with pytest.raises(ValueError):
        _spec().roofline_time(0, -1)


def test_roofline_zero_work_is_just_overhead():
    spec = _spec()
    assert spec.roofline_time(0, 0) == spec.launch_overhead_s


# -- the paper's device catalogue ------------------------------------------

def test_c2050_beats_c1060():
    """The C2050 is the higher-end GPU on every axis the paper leans on."""
    c2050, c1060 = tesla_c2050(), tesla_c1060()
    assert c2050.peak_gflops > c1060.peak_gflops
    assert c2050.mem_bandwidth_gbs > c1060.mem_bandwidth_gbs
    assert c2050.has_cache and not c1060.has_cache
    # caches make irregular access far less catastrophic
    assert c2050.irregular_efficiency > 2 * c1060.irregular_efficiency


def test_gpu_beats_cpu_on_regular_throughput():
    cpu, gpu = xeon_e5520_core(), tesla_c2050()
    assert gpu.effective_gflops(AccessPattern.REGULAR) > 20 * cpu.effective_gflops(
        AccessPattern.REGULAR
    )


def test_cpu_launch_overhead_below_gpu():
    assert xeon_e5520_core().launch_overhead_s < tesla_c2050().launch_overhead_s


def test_kinds():
    assert xeon_e5520_core().kind is DeviceKind.CPU
    assert tesla_c2050().kind is DeviceKind.GPU
