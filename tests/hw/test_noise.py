"""Timing-noise model."""

import numpy as np
import pytest

from repro.hw.noise import NoiseModel, NullNoise


def test_deterministic_per_seed():
    a = NoiseModel(seed=7)
    b = NoiseModel(seed=7)
    assert [a.perturb(1.0) for _ in range(5)] == [b.perturb(1.0) for _ in range(5)]


def test_different_seeds_differ():
    assert NoiseModel(seed=1).perturb(1.0) != NoiseModel(seed=2).perturb(1.0)


def test_unbiased_mean():
    noise = NoiseModel(sigma=0.05, seed=0)
    samples = [noise.perturb(1.0) for _ in range(20_000)]
    assert np.mean(samples) == pytest.approx(1.0, rel=0.01)


def test_spread_scales_with_sigma():
    tight = np.std([NoiseModel(sigma=0.01, seed=0).perturb(1.0) for _ in range(1)])
    loose_model = NoiseModel(sigma=0.2, seed=0)
    loose = np.std([loose_model.perturb(1.0) for _ in range(2000)])
    tight_model = NoiseModel(sigma=0.01, seed=0)
    tight = np.std([tight_model.perturb(1.0) for _ in range(2000)])
    assert loose > 5 * tight


def test_zero_duration_unperturbed():
    assert NoiseModel(seed=0).perturb(0.0) == 0.0


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        NoiseModel(seed=0).perturb(-1.0)
    with pytest.raises(ValueError):
        NullNoise().perturb(-1.0)


def test_negative_sigma_rejected():
    with pytest.raises(ValueError):
        NoiseModel(sigma=-0.1)


def test_null_noise_is_identity():
    null = NullNoise()
    assert null.perturb(3.25) == 3.25


def test_null_noise_is_sigma_zero_alias():
    """NullNoise shares NoiseModel's perturb (single validation path)."""
    assert NullNoise().sigma == 0.0
    assert isinstance(NullNoise(), NoiseModel)
    assert "perturb" not in vars(NullNoise)  # no duplicated override
    assert NullNoise().perturb(1.5) == NoiseModel(sigma=0.0).perturb(1.5)


def test_sigma_zero_consumes_no_randomness():
    model = NoiseModel(sigma=0.0, seed=9)
    state_before = model._rng.bit_generator.state
    model.perturb(2.0)
    assert model._rng.bit_generator.state == state_before


def test_perturbed_stays_positive():
    noise = NoiseModel(sigma=0.3, seed=3)
    assert all(noise.perturb(1e-6) > 0 for _ in range(1000))
