"""Matrix and Scalar containers."""

import numpy as np
import pytest

from repro.containers import Matrix, Scalar
from repro.errors import ContainerError
from repro.runtime import Arch, Codelet, ImplVariant


def _gpu_codelet(fn):
    return Codelet("k", [ImplVariant("k", Arch.CUDA, fn, lambda c, d: 1e-4)])


# -- Matrix ------------------------------------------------------------------

def test_matrix_needs_2d():
    with pytest.raises(ContainerError):
        Matrix(np.zeros(4))


def test_matrix_shape_accessors():
    m = Matrix.zeros(3, 5)
    assert (m.rows, m.cols) == (3, 5)


def test_matrix_identity():
    m = Matrix.identity(3)
    assert m[0, 0] == 1.0 and m[0, 1] == 0.0


def test_matrix_element_roundtrip():
    m = Matrix.zeros(2, 2)
    m[1, 0] = 4.5
    assert m[1, 0] == 4.5


def test_matrix_row_read_detached(runtime):
    m = Matrix.zeros(4, 4, runtime=runtime)
    row = m[1]
    row[0] = 9.0
    assert m[1, 0] == 0.0


def test_matrix_gpu_write_then_host_read(runtime):
    def fill(ctx, arr):
        arr[:, :] = 2.0

    m = Matrix.zeros(8, 8, runtime=runtime)
    runtime.submit(_gpu_codelet(fill), [(m.handle, "w")])
    assert m[7, 7] == 2.0
    assert runtime.trace.n_d2h == 1


def test_matrix_fill_write_only(runtime):
    def fill(ctx, arr):
        arr[:, :] = 2.0

    m = Matrix.zeros(8, 8, runtime=runtime)
    runtime.submit(_gpu_codelet(fill), [(m.handle, "w")])
    m.fill(0.0)
    assert runtime.trace.n_d2h == 0


def test_matrix_partition_rows(runtime):
    m = Matrix.zeros(8, 4, runtime=runtime)
    children = m.partition_rows(2)
    assert [c.array.shape for c in children] == [(4, 4), (4, 4)]
    m.unpartition()


def test_matrix_at_proxy():
    m = Matrix.zeros(2, 2)
    p = m.at(0, 1)
    p.set(3.0)
    assert m[0, 1] == 3.0


# -- Scalar ------------------------------------------------------------------

def test_scalar_local_value():
    s = Scalar(2.5)
    assert float(s) == 2.5
    s.value = 4.0
    assert s == 4.0


def test_scalar_int_bool():
    assert int(Scalar(3)) == 3
    assert bool(Scalar(1.0)) and not bool(Scalar(0.0))


def test_scalar_gpu_reduction(runtime):
    def reduce_sum(ctx, out, data):
        out[0] = data.sum()

    cl = Codelet("sum", [ImplVariant("s", Arch.CUDA, reduce_sum, lambda c, d: 1e-4)])
    from repro.containers import Vector

    data = Vector(np.ones(100, dtype=np.float32), runtime=runtime)
    result = Scalar(0.0, runtime=runtime, dtype=np.float32)
    runtime.submit(cl, [(result.handle, "w"), (data.handle, "r")])
    assert float(result) == 100.0  # lazy read-back of the reduction


def test_scalar_equality_with_scalar():
    assert Scalar(2.0) == Scalar(2.0)
    assert Scalar(2.0) != Scalar(3.0)
