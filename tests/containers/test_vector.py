"""Vector container semantics and coherence actions."""

import numpy as np
import pytest

from repro.containers import Vector
from repro.errors import ContainerError
from repro.runtime import Arch, Codelet, ImplVariant


def _gpu_fill(value):
    def fn(ctx, arr):
        arr[:] = value

    return Codelet(f"fill{value}", [ImplVariant(f"f{value}", Arch.CUDA, fn, lambda c, d: 1e-4)])


def test_needs_1d():
    with pytest.raises(ContainerError):
        Vector(np.zeros((2, 2)))


def test_constructor_copies_input():
    src = np.array([1.0, 2.0], dtype=np.float32)
    v = Vector(src)
    src[0] = 99.0
    assert v[0] == 1.0


def test_from_iterable():
    v = Vector.from_iterable(range(4), dtype=np.int64)
    assert list(v) == [0, 1, 2, 3]


def test_element_read_triggers_download(runtime):
    v = Vector.zeros(100, runtime=runtime)
    runtime.submit(_gpu_fill(7), [(v.handle, "w")])
    assert v[3] == 7.0
    assert runtime.trace.n_d2h == 1


def test_slice_read_returns_detached_copy(runtime):
    v = Vector.zeros(10, runtime=runtime)
    s = v[2:5]
    s[0] = 42.0
    assert v[2] == 0.0


def test_element_write_invalidates_device(runtime):
    v = Vector.zeros(100, runtime=runtime)
    runtime.submit(_gpu_fill(7), [(v.handle, "w")])
    v[0] = 1.0  # host RW: d2h then invalidate
    runtime.submit(_gpu_fill(8), [(v.handle, "r")])  # needs fresh upload
    runtime.wait_for_all()
    assert runtime.trace.n_h2d == 1


def test_fill_is_write_only_no_download(runtime):
    v = Vector.zeros(100, runtime=runtime)
    runtime.submit(_gpu_fill(7), [(v.handle, "w")])
    v.fill(0.0)  # write-only host access: no d2h needed
    assert runtime.trace.n_d2h == 0
    assert v[0] == 0.0


def test_iteration_is_coherent(runtime):
    v = Vector.zeros(5, runtime=runtime)
    runtime.submit(_gpu_fill(3), [(v.handle, "w")])
    assert [float(x) for x in v] == [3.0] * 5


def test_partition_and_unpartition(runtime):
    v = Vector.zeros(100, runtime=runtime)
    children = v.partition(4)
    assert len(children) == 4
    for child in children:
        runtime.submit(_gpu_fill(5), [(child, "w")])
    v.unpartition()
    assert v[99] == 5.0


def test_unpartition_requires_runtime():
    v = Vector.zeros(10)
    with pytest.raises(ContainerError):
        v.unpartition()


def test_at_proxy_defers_access(runtime):
    v = Vector.zeros(10, runtime=runtime)
    ref = v.at(2)
    runtime.submit(_gpu_fill(4), [(v.handle, "w")])
    assert float(ref) == 4.0  # read resolved at use time, post-write
