"""Smart-container core behaviour."""

import numpy as np
import pytest

from repro.containers import Vector
from repro.errors import ContainerError
from repro.runtime import Arch, Codelet, ImplVariant


def test_local_mode_needs_no_runtime():
    v = Vector([1.0, 2.0, 3.0])
    assert not v.managed
    assert v[1] == 2.0
    v[1] = 9.0
    assert v[1] == 9.0


def test_local_mode_handle_access_rejected():
    with pytest.raises(ContainerError):
        Vector([1.0]).handle


def test_managed_mode_registers(runtime):
    v = Vector.zeros(10, runtime=runtime)
    assert v.managed
    assert v.handle.nbytes == 40


def test_read_view_is_readonly(runtime):
    v = Vector.zeros(10, runtime=runtime)
    view = v.read()
    with pytest.raises(ValueError):
        view[0] = 1.0


def test_write_view_is_writable(runtime):
    v = Vector.zeros(10, runtime=runtime)
    v.write()[0] = 5.0
    assert v[0] == 5.0


def test_to_numpy_detaches(runtime):
    v = Vector.zeros(4, runtime=runtime)
    copy = v.to_numpy()
    copy[0] = 99.0
    assert v[0] == 0.0


def test_array_protocol_reads_coherently(runtime):
    def fill(ctx, arr):
        arr[:] = 3.0

    cl = Codelet("f", [ImplVariant("f", Arch.CUDA, fill, lambda c, d: 1e-4)])
    v = Vector.zeros(8, runtime=runtime)
    runtime.submit(cl, [(v.handle, "w")])
    assert np.asarray(v).sum() == 24.0  # implicit d2h before conversion


def test_free_flushes_and_detaches(runtime):
    def fill(ctx, arr):
        arr[:] = 2.0

    cl = Codelet("f", [ImplVariant("f", Arch.CUDA, fill, lambda c, d: 1e-4)])
    v = Vector.zeros(8, runtime=runtime)
    runtime.submit(cl, [(v.handle, "w")])
    v.free()
    assert not v.managed
    assert v[0] == 2.0  # flushed home, still usable locally


def test_free_idempotent(runtime):
    v = Vector.zeros(4, runtime=runtime)
    v.free()
    v.free()


def test_shape_dtype_size_nbytes(runtime):
    v = Vector.zeros(6, runtime=runtime, dtype=np.float64)
    assert v.shape == (6,) and v.size == 6
    assert v.dtype == np.float64 and v.nbytes == 48


def test_len():
    assert len(Vector.zeros(5)) == 5
