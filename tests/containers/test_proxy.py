"""Element proxies: deferred read/write access detection."""

import pytest

from repro.containers import Vector
from repro.containers.proxy import ElementProxy


@pytest.fixture
def vec():
    return Vector([1.0, 2.0, 3.0])


def test_value_reads_current_element(vec):
    p = vec.at(1)
    assert p.value == 2.0
    vec[1] = 9.0
    assert p.value == 9.0  # proxies reference locations, not snapshots


def test_conversions(vec):
    p = vec.at(2)
    assert float(p) == 3.0 and int(p) == 3 and bool(p)


def test_comparisons(vec):
    p = vec.at(0)
    assert p == 1.0 and p != 2.0
    assert p < 2.0 and p <= 1.0 and p > 0.0 and p >= 1.0
    assert vec.at(0) == vec.at(0)


def test_arithmetic(vec):
    p = vec.at(1)
    assert p + 1 == 3.0 and 1 + p == 3.0
    assert p - 1 == 1.0 and 5 - p == 3.0
    assert p * 2 == 4.0 and 2 * p == 4.0
    assert p / 2 == 1.0 and 4 / p == 2.0


def test_set_writes(vec):
    vec.at(0).set(7.5)
    assert vec[0] == 7.5


def test_inplace_ops(vec):
    p = vec.at(0)
    p += 2.0
    assert vec[0] == 3.0
    p -= 1.0
    assert vec[0] == 2.0
    p *= 3.0
    assert vec[0] == 6.0


def test_proxy_repr(vec):
    assert "vector" in repr(vec.at(1))


def test_proxy_coherence_actions_counted(runtime):
    """Reading via a proxy is an R access; writing is RW (paper fn. 3)."""
    import numpy as np

    from repro.runtime import Arch, Codelet, ImplVariant

    def fill(ctx, arr):
        arr[:] = 5.0

    cl = Codelet("f", [ImplVariant("f", Arch.CUDA, fill, lambda c, d: 1e-4)])
    v = Vector.zeros(50, runtime=runtime)
    runtime.submit(cl, [(v.handle, "w")])
    p = v.at(0)
    _ = float(p)  # read: one download
    assert runtime.trace.n_d2h == 1
    p.set(1.0)  # write: invalidates the device copy, no new transfer
    assert runtime.trace.n_transfers == 1
