"""The PEPPHER support library (glue) behind generated stubs."""

import numpy as np
import pytest

from repro.apps import spmv
from repro.components import InterfaceDescriptor, ParamDecl
from repro.composer.glue import (
    RuntimeHolder,
    as_operand,
    invoke_entry,
    lower_component,
    make_backend_adapter,
)
from repro.containers import Vector
from repro.errors import CompositionError, RuntimeSystemError
from repro.runtime import Runtime
from repro.runtime.access import AccessMode
from repro.hw.presets import platform_c2050


def test_runtime_holder_lifecycle():
    holder = RuntimeHolder()
    with pytest.raises(RuntimeSystemError):
        holder.get()
    rt = Runtime(platform_c2050(), scheduler="eager")
    holder.set(rt)
    assert holder.get() is rt
    with pytest.raises(RuntimeSystemError):
        holder.set(rt)  # double initialize
    assert holder.clear() is rt
    assert holder.clear() is None
    rt.shutdown()


def test_backend_adapter_reorders_mixed_signature():
    """The adapter maps (ctx, buffers..., scalars...) to the C order."""
    iface = InterfaceDescriptor(
        "f",
        params=(
            ParamDecl("n", "int"),  # scalar first in C order
            ParamDecl("data", "float*", AccessMode.RW),
            ParamDecl("scale", "float"),
            ParamDecl("out", "float*", AccessMode.W),
        ),
    )
    seen = {}

    def kernel(n, data, scale, out):
        seen.update(n=n, data=data, scale=scale, out=out)

    adapter = make_backend_adapter(iface, kernel)
    data, out = np.zeros(3), np.zeros(3)
    adapter({}, data, out, 7, 2.5)  # runtime order: buffers then scalars
    assert seen["n"] == 7 and seen["scale"] == 2.5
    assert seen["data"] is data and seen["out"] is out


def test_backend_adapter_scalar_count_checked():
    iface = InterfaceDescriptor(
        "f", params=(ParamDecl("x", "float*"), ParamDecl("n", "int"))
    )
    adapter = make_backend_adapter(iface, lambda x, n: None)
    with pytest.raises(RuntimeSystemError):
        adapter({}, np.zeros(1))  # missing scalar


def test_lower_component_builds_all_variants():
    cl = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS)
    assert {v.name for v in cl.variants} == {
        "spmv_cpu",
        "spmv_openmp",
        "spmv_cuda_cusp",
    }


def test_lower_component_requires_refs():
    from repro.components import ImplementationDescriptor

    bad = ImplementationDescriptor(
        name="x", provides="spmv", platform="cuda"
    )
    with pytest.raises(CompositionError):
        lower_component(spmv.INTERFACE, [bad])


def test_lower_component_with_backend_fns():
    called = []

    def custom(ctx, *args):
        called.append(args)

    cl = lower_component(
        spmv.INTERFACE,
        spmv.IMPLEMENTATIONS[:1],
        backend_fns={"spmv_cpu": custom},
    )
    assert cl.variants[0].fn is custom
    with pytest.raises(CompositionError):
        lower_component(
            spmv.INTERFACE, spmv.IMPLEMENTATIONS[:1], backend_fns={}
        )


def test_as_operand_container_passthrough(runtime):
    v = Vector.zeros(4, runtime=runtime)
    handle, temp = as_operand(runtime, v, "v")
    assert handle is v.handle and not temp


def test_as_operand_raw_array_is_temporary(runtime):
    handle, temp = as_operand(runtime, np.zeros(4, dtype=np.float32), "a")
    assert temp


def test_as_operand_rejects_other_types(runtime):
    with pytest.raises(CompositionError):
        as_operand(runtime, [1, 2, 3], "bad")


def test_invoke_entry_packs_call(runtime):
    cl = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS)
    from repro.workloads.sparse import random_csr

    mat = random_csr(64, 64, 4, seed=1)
    x = Vector(np.ones(64, dtype=np.float32), runtime=runtime)
    y = Vector.zeros(64, runtime=runtime)
    values = Vector(mat.values, runtime=runtime)
    colidxs = Vector(mat.colidxs, runtime=runtime)
    rowptr = Vector(mat.rowptr, runtime=runtime)
    task = invoke_entry(
        runtime,
        cl,
        spmv.INTERFACE,
        (values, mat.nnz, 64, 64, 0, colidxs, rowptr, x, y),
        sync=False,
    )
    assert task.ctx["nnz"] == mat.nnz
    runtime.wait_for_all()
    ref = spmv.reference(mat.values, mat.colidxs, mat.rowptr, np.ones(64, dtype=np.float32), 64)
    assert np.allclose(y.to_numpy(), ref, rtol=1e-4)


def test_invoke_entry_wrong_arity(runtime):
    cl = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS)
    with pytest.raises(CompositionError):
        invoke_entry(runtime, cl, spmv.INTERFACE, (1, 2, 3), sync=False)


def test_invoke_entry_raw_arrays_force_sync_and_flush(runtime):
    """Raw ndarray parameters: synchronous execution + copy-back (IV-D)."""
    cl = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS).restricted(
        ["spmv_cuda_cusp"]
    )
    from repro.workloads.sparse import random_csr

    mat = random_csr(64, 64, 4, seed=1)
    x = np.ones(64, dtype=np.float32)
    y = np.zeros(64, dtype=np.float32)
    task = invoke_entry(
        runtime,
        cl,
        spmv.INTERFACE,
        (mat.values, mat.nnz, 64, 64, 0, mat.colidxs, mat.rowptr, x, y),
        sync=False,  # wrapper must force sync anyway
    )
    # control only returns after completion and the result is in y
    assert runtime.now >= task.end_time
    ref = spmv.reference(mat.values, mat.colidxs, mat.rowptr, x, 64)
    assert np.allclose(y, ref, rtol=1e-4)
