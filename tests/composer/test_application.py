"""ComposedApplication behaviour and error paths."""

import pytest

from repro.apps import spmv
from repro.components import MainDescriptor, Repository
from repro.composer import ComposedApplication, Composer, Recipe
from repro.errors import CompositionError


@pytest.fixture
def app(tmp_path):
    repo = Repository()
    spmv.register(repo)
    main = MainDescriptor(name="spmv_app", components=("spmv",))
    repo.add_main(main)
    return Composer(repo, Recipe()).compose(main, tmp_path)


def test_artefact_listing(app):
    files = app.artefact_files()
    assert "peppher.py" in files and "Makefile" in files


def test_import_is_idempotent(app):
    assert app.import_generated() is app.import_generated()


def test_entry_lookup(app):
    assert callable(app.entry("spmv"))
    with pytest.raises(CompositionError):
        app.entry("not_a_component")


def test_missing_package_rejected(app, tmp_path):
    ghost = ComposedApplication(app.tree, tmp_path / "nowhere")
    with pytest.raises(CompositionError):
        ghost.import_generated()


def test_recompose_evicts_stale_modules(tmp_path, app):
    """Composing the same app into a new directory must load the fresh
    artefacts, not the cached modules of the first compose."""
    repo = Repository()
    spmv.register(repo)
    main = MainDescriptor(name="spmv_app", components=("spmv",))
    repo.add_main(main)
    app.import_generated()
    second_dir = tmp_path / "second"
    app2 = Composer(repo, Recipe(disable_impls=("spmv_cpu",))).compose(
        main, second_dir
    )
    pkg = app2.import_generated()
    import importlib

    registry = importlib.import_module(f"{app2.package_name}._registry")
    names = {v.name for v in registry.CODELETS["spmv"].variants}
    assert "spmv_cpu" not in names  # the fresh, narrowed artefacts loaded


def test_initialize_shutdown_roundtrip(app):
    rt = app.initialize(seed=5)
    assert rt.machine.name == "xeon-e5520+c2050"
    assert app.shutdown() >= 0.0
    # shutdown clears the holder: a fresh initialize works
    rt2 = app.initialize()
    app.shutdown()
