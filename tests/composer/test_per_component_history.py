"""Per-component useHistoryModels flag (paper section IV-G)."""

from dataclasses import replace

import numpy as np

from repro.apps import sgemm
from repro.components import descriptor_to_string, parse_descriptor_string
from repro.composer.glue import lower_component
from repro.hw.presets import platform_c2050
from repro.runtime import Runtime


def test_flag_roundtrips_through_xml():
    off = replace(sgemm.INTERFACE, use_history_models=False)
    back = parse_descriptor_string(descriptor_to_string(off))
    assert back.use_history_models is False
    assert 'useHistoryModels="false"' in descriptor_to_string(off)
    # default stays implicit (and true)
    assert "useHistoryModels" not in descriptor_to_string(sgemm.INTERFACE)
    assert parse_descriptor_string(
        descriptor_to_string(sgemm.INTERFACE)
    ).use_history_models


def test_flag_lowers_onto_codelet():
    on = lower_component(sgemm.INTERFACE, sgemm.IMPLEMENTATIONS)
    off = lower_component(
        replace(sgemm.INTERFACE, use_history_models=False), sgemm.IMPLEMENTATIONS
    )
    assert on.performance_aware and not off.performance_aware
    assert not off.restricted(["sgemm_cublas"]).performance_aware
    assert not off.without(["sgemm_cpu"]).performance_aware


def _run(codelet, n_tasks=12, size=512):
    rt = Runtime(platform_c2050(), scheduler="dmda", seed=0, run_kernels=False)
    a = rt.register(np.zeros((size, size), dtype=np.float32), "A")
    b = rt.register(np.zeros((size, size), dtype=np.float32), "B")
    c = rt.register(np.zeros((size, size), dtype=np.float32), "C")
    for _ in range(n_tasks):
        rt.submit(
            codelet,
            [(a, "r"), (b, "r"), (c, "rw")],
            ctx={"m": size, "n": size, "k": size},
            scalar_args=(size, size, size, 1.0, 0.0),
        )
    rt.wait_for_all()
    variants = [rec.variant for rec in rt.trace.tasks]
    rt.shutdown()
    return variants


def test_history_disabled_component_is_placed_greedily():
    """With the flag off, dmda never converges onto the learned winner —
    tasks chain on the same data, so greedy earliest-start keeps reusing
    whatever worker frees first instead of consulting the model."""
    aware = _run(lower_component(sgemm.INTERFACE, sgemm.IMPLEMENTATIONS))
    oblivious = _run(
        lower_component(
            replace(sgemm.INTERFACE, use_history_models=False),
            sgemm.IMPLEMENTATIONS,
        )
    )
    # performance-aware: converges to CUBLAS after calibration
    assert all(v == "sgemm_cublas" for v in aware[-6:])
    # oblivious: placement ignores the model; for an RW-chained workload
    # greedy keeps the data wherever it starts (no informed migration)
    assert oblivious != aware
