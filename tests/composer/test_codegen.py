"""Code generation: stub text, header/registry, Makefile, manifest."""

import json

import pytest

from repro.apps import spmv
from repro.components import MainDescriptor, Repository
from repro.composer.builder import Composer
from repro.composer.codegen.header import (
    generate_peppher_module,
    generate_registry_module,
)
from repro.composer.codegen.makefile import generate_build_manifest, generate_makefile
from repro.composer.codegen.stubs import generate_stub_module, stub_module_name
from repro.composer.explorer import build_ir
from repro.composer.recipe import Recipe
from repro.errors import CodegenError


@pytest.fixture
def spmv_tree():
    repo = Repository()
    spmv.register(repo)
    main = MainDescriptor(name="spmv_app", components=("spmv",))
    return build_ir(repo, main, Recipe()), repo


def test_stub_module_name():
    assert stub_module_name("spmv") == "spmv_stub"


def test_stub_text_is_valid_python(spmv_tree):
    tree, _ = spmv_tree
    node = tree.node("spmv")
    text = generate_stub_module(node.interface, node.implementations)
    compile(text, "spmv_stub.py", "exec")  # must parse


def test_stub_contains_entry_and_backends(spmv_tree):
    tree, _ = spmv_tree
    node = tree.node("spmv")
    text = generate_stub_module(node.interface, node.implementations)
    # one entry-wrapper with the full C parameter list
    assert "def spmv(values, nnz, nrows, ncols, first, colidxs, rowPtr, x, y," in text
    # one backend-wrapper per implementation, task-function signature
    for impl in ("spmv_cpu", "spmv_openmp", "spmv_cuda_cusp"):
        assert f"def {impl}_backend(buffers, arg):" in text
    assert "BACKENDS = {" in text
    # packing: buffers unpack to operands, arg to scalars
    assert "(values, colidxs, rowPtr, x, y, ) = buffers" in text
    assert "(nnz, nrows, ncols, first, ) = arg" in text


def test_stub_rejects_generic_interface():
    from repro.components import InterfaceDescriptor, ParamDecl

    generic = InterfaceDescriptor(
        "sort", params=(ParamDecl("d", "T*"),), type_params=("T",)
    )
    with pytest.raises(CodegenError):
        generate_stub_module(generic, [])


def test_stub_rejects_missing_kernel_ref(spmv_tree):
    from dataclasses import replace

    tree, _ = spmv_tree
    node = tree.node("spmv")
    broken = [replace(node.implementations[0], kernel_ref="")]
    with pytest.raises(CodegenError):
        generate_stub_module(node.interface, broken)


def test_registry_text_mentions_components():
    text = generate_registry_module("app", ["spmv"], {"spmv": ["spmv_cuda_cusp"]})
    compile(text, "_registry.py", "exec")
    assert "STATIC_NARROWING = {'spmv': ['spmv_cuda_cusp']}" in text


def test_peppher_module_exports(spmv_tree):
    tree, _ = spmv_tree
    text = generate_peppher_module(tree.main, ["spmv"])
    compile(text, "peppher.py", "exec")
    assert "PEPPHER_INITIALIZE" in text and "PEPPHER_SHUTDOWN" in text
    assert "from .spmv_stub import spmv" in text
    assert 'TARGET_PLATFORM = \'c2050\'' in text


def test_makefile_structure(spmv_tree):
    tree, repo = spmv_tree
    text = generate_makefile(tree, repo.platforms)
    assert "all: $(APP)" in text
    assert "spmv_cpu.cpp" in text
    assert "nvcc -O3 -arch=sm_20" in text  # impl-specific compile command
    assert "g++ -fopenmp" in text  # platform default command
    assert ".PHONY: all clean" in text


def test_build_manifest_records_deployment(spmv_tree):
    tree, repo = spmv_tree
    manifest = json.loads(generate_build_manifest(tree, repo.platforms))
    assert manifest["application"] == "spmv_app"
    comp = manifest["components"][0]
    assert comp["interface"] == "spmv"
    archs = {i["arch"] for i in comp["implementations"]}
    assert archs == {"cpu", "openmp", "cuda"}


def test_generated_package_layout(tmp_path, spmv_tree):
    tree, repo = spmv_tree
    app = Composer(repo, Recipe()).generate(tree, tmp_path)
    files = app.artefact_files()
    for expected in (
        "Makefile",
        "__init__.py",
        "_registry.py",
        "build_manifest.json",
        "peppher.py",
        "spmv_stub.py",
        "descriptors/spmv/interface.xml",
        "descriptors/spmv/cuda/spmv_cuda_cusp.xml",
    ):
        assert expected in files, expected
