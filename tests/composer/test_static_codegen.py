"""Fully static composition: the dispatch function generated as code."""

import numpy as np
import pytest

from repro.apps import sgemm
from repro.components import MainDescriptor, Repository
from repro.composer import Composer, Recipe
from repro.containers import Matrix
from repro.workloads.dense import gemm_inputs


@pytest.fixture
def static_app(tmp_path):
    repo = Repository()
    sgemm.register(repo)
    main = MainDescriptor(name="sgemm_app", components=("sgemm",))
    repo.add_main(main)
    recipe = Recipe(
        static_dispatch=True,
        static_dispatch_codegen=True,
        training_points_per_param=3,
    )
    return Composer(repo, recipe).compose(main, tmp_path)


def test_stub_embeds_generated_dispatch_function(static_app):
    text = (static_app.out_dir / "sgemm_stub.py").read_text()
    assert "def _dispatch(ctx):" in text
    assert "Off-line constructed dispatch" in text
    assert "dispatch=_dispatch," in text
    # the dispatch body is plain comparisons over context properties
    assert "if ctx[" in text and "return 'sgemm_" in text


def test_static_dispatch_binds_each_call(static_app):
    pep = static_app.peppher
    rt = pep.PEPPHER_INITIALIZE(seed=0, scheduler="eager")

    def call(size):
        a_np, b_np, c_np = gemm_inputs(size, size, size, seed=1)
        A = Matrix(a_np, runtime=rt)
        B = Matrix(b_np, runtime=rt)
        C = Matrix(c_np, runtime=rt)
        task = pep.sgemm(size, size, size, 1.0, A, B, 0.0, C, sync=True)
        result = C.to_numpy()
        expected = sgemm.reference(size, size, size, 1.0, a_np, b_np, 0.0, c_np)
        assert np.allclose(result, expected, rtol=1e-3)
        return task.chosen_variant.name

    # small call: the off-line table says CPU-side; big call: CUBLAS
    small_variant = call(16)
    big_variant = call(512)
    pep.PEPPHER_SHUTDOWN()
    assert big_variant == "sgemm_cublas"
    assert small_variant != "sgemm_cublas"


def test_dispatch_function_matches_offline_table(static_app):
    """The generated code is exactly the compacted table."""
    import importlib

    static_app.import_generated()
    stub = importlib.import_module(f"{static_app.package_name}.sgemm_stub")
    table = static_app.tree.node("sgemm").static_choice
    for entry in table.entries:
        assert stub._dispatch(entry.scenario.as_dict()) == entry.variant


def test_without_codegen_flag_no_dispatch_in_stub(tmp_path):
    repo = Repository()
    sgemm.register(repo)
    main = MainDescriptor(name="sgemm_app", components=("sgemm",))
    repo.add_main(main)
    app = Composer(repo, Recipe(static_dispatch=True)).compose(main, tmp_path)
    text = (app.out_dir / "sgemm_stub.py").read_text()
    assert "def _dispatch" not in text
    assert "dispatch=None," in text


def test_cli_flag_implies_static_dispatch(tmp_path, capsys):
    from repro.composer.cli import main as cli_main

    repo = Repository()
    sgemm.register(repo)
    repo.add_main(MainDescriptor(name="sgemm_app", components=("sgemm",)))
    repo.save_to(tmp_path / "repo")
    rc = cli_main(
        [
            str(tmp_path / "repo" / "sgemm_app.xml"),
            "--repo",
            str(tmp_path / "repo"),
            "--out",
            str(tmp_path / "composed"),
            "--static-dispatch-codegen",
        ]
    )
    assert rc == 0
    text = (tmp_path / "composed" / "sgemm_stub.py").read_text()
    assert "def _dispatch(ctx):" in text
