"""Stub generation edge cases: components without scalars or operands."""

import numpy as np
import pytest

from repro.components import (
    ImplementationDescriptor,
    InterfaceDescriptor,
    MainDescriptor,
    ParamDecl,
    Repository,
)
from repro.composer import Composer, Recipe
from repro.composer.codegen.stubs import generate_stub_module
from repro.containers import Vector
from repro.runtime.access import AccessMode


# kernels for the edge-case components, referenced by descriptor
def normalize_kernel(data):
    """All-operand component: no scalar parameters at all."""
    s = data.sum()
    if s != 0:
        data /= s


def normalize_cost(ctx, device):
    return 1e-5


def test_stub_without_scalars_compiles_and_runs(tmp_path):
    iface = InterfaceDescriptor(
        "normalize", params=(ParamDecl("data", "float*", AccessMode.RW),)
    )
    impl = ImplementationDescriptor(
        name="normalize_cpu",
        provides="normalize",
        platform="cpu_serial",
        kernel_ref="tests.composer.test_stub_edge_cases:normalize_kernel",
        cost_ref="tests.composer.test_stub_edge_cases:normalize_cost",
    )
    text = generate_stub_module(iface, [impl])
    assert "del arg  # no scalar parameters" in text
    compile(text, "stub.py", "exec")

    repo = Repository()
    repo.add_interface(iface)
    repo.add_implementation(impl)
    main = MainDescriptor(name="norm_app", components=("normalize",))
    repo.add_main(main)
    app = Composer(repo, Recipe()).compose(main, tmp_path)
    pep = app.peppher
    rt = pep.PEPPHER_INITIALIZE(seed=0)
    v = Vector(np.array([1.0, 3.0], dtype=np.float32), runtime=rt)
    pep.normalize(v, sync=True)
    assert np.allclose(v.to_numpy(), [0.25, 0.75])
    pep.PEPPHER_SHUTDOWN()


def test_stub_without_operands_generates():
    iface = InterfaceDescriptor("barrierish", params=(ParamDecl("n", "int"),))
    impl = ImplementationDescriptor(
        name="b_cpu",
        provides="barrierish",
        platform="cpu_serial",
        kernel_ref="m:k",
        cost_ref="m:c",
    )
    text = generate_stub_module(iface, [impl])
    assert "del buffers  # no operand parameters" in text
    compile(text, "stub.py", "exec")
