"""Training executions (empirical static composition)."""

import pytest

from repro.apps import sgemm, spmv
from repro.components.context import ContextInstance
from repro.composer.static_comp import build_dispatch_table
from repro.composer.ir import ComponentNode
from repro.composer.training import train_dispatch_table
from repro.errors import CompositionError
from repro.hw.presets import cpu_only, platform_c2050


def test_training_builds_entry_per_scenario():
    report = train_dispatch_table(
        sgemm.INTERFACE,
        sgemm.IMPLEMENTATIONS,
        platform_c2050,
        sgemm.training_operands,
        points_per_param=2,
        repetitions=2,
    )
    assert report.table is not None
    assert len(report.table.entries) == 8  # 2^3 scenarios
    # every scenario measured all three variants
    for entry in report.table.entries:
        assert len(entry.all_predictions) == 3


def test_training_agrees_with_predictions_on_extremes():
    """Measured training runs and prediction functions must crown the
    same winners at the extreme scenarios (the models they sample are
    the same ground truth)."""
    trained = train_dispatch_table(
        sgemm.INTERFACE,
        sgemm.IMPLEMENTATIONS,
        platform_c2050,
        sgemm.training_operands,
        points_per_param=3,
        repetitions=2,
    ).table
    predicted = build_dispatch_table(
        ComponentNode(
            interface=sgemm.INTERFACE, implementations=list(sgemm.IMPLEMENTATIONS)
        ),
        platform_c2050(),
        points_per_param=3,
    )
    t_big = trained.lookup({"m": 4096, "n": 4096, "k": 4096})
    p_big = predicted.lookup({"m": 4096, "n": 4096, "k": 4096})
    assert t_big == p_big == "sgemm_cublas"


def test_training_measures_transfers_that_predictions_ignore():
    """Trained times for GPU variants include the PCIe transfers a cold
    invocation pays; prediction functions only model the kernel.  The
    measured GPU time must therefore exceed the predicted one."""
    scenario = ContextInstance({"m": 1024, "n": 1024, "k": 1024})
    report = train_dispatch_table(
        sgemm.INTERFACE,
        sgemm.IMPLEMENTATIONS,
        platform_c2050,
        sgemm.training_operands,
        scenarios=[scenario],
        repetitions=2,
    )
    measured = report.measurements[(scenario, "sgemm_cublas")]
    from repro.hw.devices import tesla_c2050

    predicted = sgemm.cost_cublas(scenario.as_dict(), tesla_c2050())
    assert measured > predicted  # transfers + submit overhead included


def test_training_skips_infeasible_variants():
    report = train_dispatch_table(
        spmv.INTERFACE,
        spmv.IMPLEMENTATIONS,
        lambda: cpu_only(4),
        spmv.training_operands,
        points_per_param=2,
        repetitions=1,
    )
    skipped_variants = {name for _, name, reason in report.skipped}
    assert "spmv_cuda_cusp" in skipped_variants  # no GPU on the machine
    assert report.table is not None and report.table.entries


def test_training_validates_repetitions():
    with pytest.raises(CompositionError):
        train_dispatch_table(
            sgemm.INTERFACE,
            sgemm.IMPLEMENTATIONS,
            platform_c2050,
            sgemm.training_operands,
            repetitions=0,
        )


def test_training_report_describe():
    report = train_dispatch_table(
        sgemm.INTERFACE,
        sgemm.IMPLEMENTATIONS,
        platform_c2050,
        sgemm.training_operands,
        scenarios=[ContextInstance({"m": 64, "n": 64, "k": 64})],
        repetitions=1,
    )
    text = report.describe()
    assert "sgemm" in text and "ms" in text
