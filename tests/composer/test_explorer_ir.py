"""Repository exploration, bottom-up ordering and the IR."""

import pytest

from repro.components import (
    ImplementationDescriptor,
    InterfaceDescriptor,
    MainDescriptor,
    ParamDecl,
    Repository,
)
from repro.composer.explorer import bottom_up_order, build_ir, reachable_interfaces
from repro.composer.ir import ComponentNode
from repro.composer.recipe import Recipe
from repro.errors import CompositionError


def _repo_with_chain():
    """main -> top -> {mid1, mid2}; mid2 -> leaf."""
    repo = Repository()
    for name, requires in (
        ("leaf", ()),
        ("mid1", ()),
        ("mid2", ("leaf",)),
        ("top", ("mid1", "mid2")),
        ("island", ()),  # not reachable from main
    ):
        repo.add_interface(
            InterfaceDescriptor(name, params=(ParamDecl("n", "int"),))
        )
        repo.add_implementation(
            ImplementationDescriptor(
                name=f"{name}_cpu", provides=name, platform="cpu_serial",
                requires=requires, kernel_ref="m:k", cost_ref="m:c",
            )
        )
    return repo


def test_reachability_is_transitive():
    repo = _repo_with_chain()
    graph = reachable_interfaces(repo, ("top",))
    assert set(graph) == {"top", "mid1", "mid2", "leaf"}
    assert "island" not in graph


def test_unknown_root_rejected():
    with pytest.raises(CompositionError):
        reachable_interfaces(_repo_with_chain(), ("phantom",))


def test_bottom_up_order_requirements_first():
    graph = reachable_interfaces(_repo_with_chain(), ("top",))
    order = bottom_up_order(graph)
    assert order.index("leaf") < order.index("mid2")
    assert order.index("mid1") < order.index("top")
    assert order.index("mid2") < order.index("top")


def test_cycle_detection():
    with pytest.raises(CompositionError, match="cyclic"):
        bottom_up_order({"a": {"b"}, "b": {"a"}})


def test_build_ir_shape():
    repo = _repo_with_chain()
    main = MainDescriptor(name="app", components=("top",))
    tree = build_ir(repo, main, Recipe())
    assert tree.interface_names()[-1] == "top"
    assert tree.node("mid2").requires == ("leaf",)
    tree.check()  # bottom-up invariant holds


def test_ir_check_rejects_bad_order():
    repo = _repo_with_chain()
    main = MainDescriptor(name="app", components=("top",))
    tree = build_ir(repo, main, Recipe())
    tree.nodes.reverse()
    with pytest.raises(CompositionError, match="order"):
        tree.check()


def test_ir_node_lookup():
    repo = _repo_with_chain()
    tree = build_ir(repo, MainDescriptor(name="a", components=("top",)), Recipe())
    assert tree.has_node("leaf")
    assert not tree.has_node("island")
    with pytest.raises(CompositionError):
        tree.node("island")
    with pytest.raises(CompositionError):
        tree.node("top").implementation("nope")


def test_node_without_impls_fails_check():
    node = ComponentNode(
        interface=InterfaceDescriptor("x", params=(ParamDecl("n", "int"),))
    )
    with pytest.raises(CompositionError):
        node.check()


def test_generic_interface_needs_bindings():
    repo = Repository()
    repo.add_interface(
        InterfaceDescriptor(
            "sort", params=(ParamDecl("d", "T*"),), type_params=("T",)
        )
    )
    repo.add_implementation(
        ImplementationDescriptor(
            name="sort_cpu", provides="sort", platform="cpu_serial",
            kernel_ref="m:k", cost_ref="m:c",
        )
    )
    main = MainDescriptor(name="app", components=("sort",))
    with pytest.raises(CompositionError, match="type bindings"):
        build_ir(repo, main, Recipe())
    tree = build_ir(
        repo, main, Recipe().with_bindings("sort", {"T": "float"}, {"T": "int"})
    )
    assert tree.interface_names() == ["sort_float", "sort_int"]


def test_describe_mentions_components():
    repo = _repo_with_chain()
    tree = build_ir(repo, MainDescriptor(name="a", components=("top",)), Recipe())
    text = tree.describe()
    assert "top" in text and "leaf_cpu@cpu_serial" in text
