"""Generic component expansion and user-guided narrowing."""

import pytest

from repro.components import (
    ImplementationDescriptor,
    InterfaceDescriptor,
    MainDescriptor,
    ParamDecl,
    Repository,
)
from repro.composer.expansion import expand_all, expand_component, type_suffix
from repro.composer.explorer import build_ir
from repro.composer.narrowing import apply_narrowing
from repro.composer.recipe import Recipe
from repro.errors import CompositionError, ExpansionError


def _generic():
    iface = InterfaceDescriptor(
        "sort",
        params=(ParamDecl("data", "T*"), ParamDecl("n", "int")),
        type_params=("T",),
    )
    impls = [
        ImplementationDescriptor(
            name="sort_cpu", provides="sort", platform="cpu_serial",
            kernel_ref="m:k", cost_ref="m:c",
        )
    ]
    return iface, impls


def test_expand_component_binds_and_renames():
    iface, impls = _generic()
    exp_iface, exp_impls = expand_component(iface, impls, {"T": "float"})
    assert exp_iface.name == "sort_float"
    assert exp_impls[0].name == "sort_cpu_float"
    assert exp_impls[0].provides == "sort_float"
    # kernel refs stay shared: one source module serves all instantiations
    assert exp_impls[0].kernel_ref == "m:k"


def test_expand_rejects_non_generic():
    iface, impls = _generic()
    concrete = iface.expand({"T": "float"})
    with pytest.raises(ExpansionError):
        expand_component(concrete, impls, {"T": "float"})


def test_expand_rejects_bad_bindings():
    iface, impls = _generic()
    with pytest.raises(ExpansionError):
        expand_component(iface, impls, {})
    with pytest.raises(ExpansionError):
        expand_component(iface, impls, {"T": "float", "U": "int"})
    with pytest.raises(ExpansionError):
        expand_component(iface, impls, {"T": "MyWeirdClass"})


def test_expand_all_deduplicates():
    iface, impls = _generic()
    out = expand_all(iface, impls, [{"T": "float"}, {"T": "float"}, {"T": "int"}])
    assert [i.name for i, _ in out] == ["sort_float", "sort_int"]


def test_expand_all_needs_bindings():
    iface, impls = _generic()
    with pytest.raises(ExpansionError):
        expand_all(iface, impls, [])


def test_type_suffix_mangling():
    assert type_suffix({"T": "float"}, ("T",)) == "float"
    assert type_suffix({"T": "size_t", "U": "float"}, ("T", "U")) == "size_t_float"


# -- narrowing -----------------------------------------------------------------

def _tree(disable=(), enable_only=(), main_disable=()):
    repo = Repository()
    repo.add_interface(InterfaceDescriptor("f", params=(ParamDecl("n", "int"),)))
    for platform in ("cpu_serial", "openmp", "cuda"):
        repo.add_implementation(
            ImplementationDescriptor(
                name=f"f_{platform}", provides="f", platform=platform,
                kernel_ref="m:k", cost_ref="m:c",
            )
        )
    main = MainDescriptor(
        name="app", components=("f",), disable_impls=tuple(main_disable)
    )
    recipe = Recipe(disable_impls=tuple(disable), enable_only=tuple(enable_only))
    return build_ir(repo, main, recipe)


def test_disable_impls_removes_variants():
    tree = apply_narrowing(_tree(disable=("f_cpu_serial",)))
    names = [i.name for i in tree.node("f").implementations]
    assert names == ["f_openmp", "f_cuda"]


def test_main_descriptor_disables_combine_with_recipe():
    tree = apply_narrowing(
        _tree(disable=("f_cpu_serial",), main_disable=("f_openmp",))
    )
    names = [i.name for i in tree.node("f").implementations]
    assert names == ["f_cuda"]


def test_enable_only_keeps_single_candidate():
    tree = apply_narrowing(_tree(enable_only=("f_cuda",)))
    assert [i.name for i in tree.node("f").implementations] == ["f_cuda"]


def test_narrowing_to_nothing_rejected():
    with pytest.raises(CompositionError):
        apply_narrowing(
            _tree(disable=("f_cpu_serial", "f_openmp", "f_cuda"))
        )


def test_unknown_name_rejected():
    with pytest.raises(CompositionError):
        apply_narrowing(_tree(disable=("no_such_impl",)))
