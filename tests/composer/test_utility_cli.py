"""Utility mode (skeleton generation) and the compose CLI."""

import pytest

from repro.composer.cli import main as cli_main
from repro.composer.utility import generate_component_files
from repro.components import load_descriptor
from repro.errors import CDeclError

HEADER = """\
void spmv(const float* values, int nnz, int nrows, int ncols, int first,
          const size_t* colidxs, const size_t* rowPtr, const float* x,
          float* y);
"""


@pytest.fixture
def header_file(tmp_path):
    path = tmp_path / "spmv.h"
    path.write_text(HEADER)
    return path


def test_generates_figure4_layout(tmp_path, header_file):
    created = generate_component_files(header_file, tmp_path / "out")
    rel = {str(p.relative_to(tmp_path / "out")) for p in created}
    assert "spmv/interface.xml" in rel
    for platform, suffix, ext in (
        ("cpu_serial", "cpu", "py"),
        ("openmp", "openmp", "py"),
        ("cuda", "cuda", "py"),
    ):
        assert f"spmv/{platform}/spmv_{suffix}.xml" in rel
        assert f"spmv/{platform}/spmv_{suffix}.{ext}" in rel
    assert "main.xml" in rel and "main.py" in rel


def test_generated_interface_prefills_access_and_context(tmp_path, header_file):
    generate_component_files(header_file, tmp_path / "out")
    iface = load_descriptor(tmp_path / "out" / "spmv" / "interface.xml")
    assert iface.param("values").access.value == "r"
    assert iface.param("y").access.value == "rw"  # conservative suggestion
    assert {cp.name for cp in iface.context_params} >= {"nnz", "nrows"}


def test_generated_impl_descriptors_reference_sources(tmp_path, header_file):
    generate_component_files(header_file, tmp_path / "out")
    impl = load_descriptor(tmp_path / "out" / "spmv" / "cuda" / "spmv_cuda.xml")
    assert impl.provides == "spmv"
    assert impl.sources == ("spmv_cuda.cu",)
    assert impl.kernel_ref == "spmv_impls:spmv_cuda"


def test_generated_source_skeletons_keep_signature(tmp_path, header_file):
    generate_component_files(header_file, tmp_path / "out")
    text = (tmp_path / "out" / "spmv" / "cuda" / "spmv_cuda.py").read_text()
    assert "def spmv_cuda(values, nnz, nrows, ncols, first, colidxs, rowPtr, x, y):" in text
    assert "def spmv_cuda_cost(ctx, device):" in text


def test_missing_header_rejected(tmp_path):
    with pytest.raises(CDeclError):
        generate_component_files(tmp_path / "ghost.h", tmp_path)


# -- CLI ------------------------------------------------------------------------

def test_cli_generate_comp_files(tmp_path, header_file, capsys):
    rc = cli_main([f"--generateCompFiles={header_file}", "--out", str(tmp_path / "o")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "generated" in out and "interface.xml" in out


def test_cli_describe_machine(capsys):
    assert cli_main(["--describe-machine", "c2050"]) == 0
    assert "Tesla C2050" in capsys.readouterr().out


def test_cli_requires_main_or_utility(capsys):
    with pytest.raises(SystemExit):
        cli_main([])


def test_cli_compose_from_disk(tmp_path, capsys):
    """End-to-end: save an app repository to disk, compose via the CLI."""
    from repro.apps import spmv
    from repro.components import MainDescriptor, Repository

    repo = Repository()
    spmv.register(repo)
    repo.add_main(MainDescriptor(name="spmv_app", components=("spmv",)))
    repo.save_to(tmp_path / "repo")
    rc = cli_main(
        [
            str(tmp_path / "repo" / "spmv_app.xml"),
            "--repo",
            str(tmp_path / "repo"),
            "--out",
            str(tmp_path / "composed"),
            "--verbose",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "composed application 'spmv_app'" in out
    assert (tmp_path / "composed" / "peppher.py").exists()


def test_cli_compose_bad_narrowing_fails_cleanly(tmp_path, capsys):
    from repro.apps import spmv
    from repro.components import MainDescriptor, Repository

    repo = Repository()
    spmv.register(repo)
    repo.add_main(MainDescriptor(name="spmv_app", components=("spmv",)))
    repo.save_to(tmp_path / "repo")
    rc = cli_main(
        [
            str(tmp_path / "repo" / "spmv_app.xml"),
            "--repo",
            str(tmp_path / "repo"),
            "--out",
            str(tmp_path / "composed"),
            "--disableImpls=not_a_variant",
        ]
    )
    assert rc == 1
    assert "error" in capsys.readouterr().err


def test_cli_wrong_descriptor_kind(tmp_path, capsys):
    from repro.components import save_descriptor
    from repro.apps import spmv as spmv_mod

    path = save_descriptor(spmv_mod.INTERFACE, tmp_path / "iface.xml")
    rc = cli_main([str(path), "--repo", str(tmp_path)])
    assert rc == 2


def test_cli_list_repository(tmp_path, capsys):
    from repro.apps import spmv
    from repro.components import MainDescriptor, Repository

    repo = Repository()
    spmv.register(repo)
    repo.add_main(MainDescriptor(name="spmv_app", components=("spmv",)))
    repo.save_to(tmp_path / "repo")
    rc = cli_main(["--list", "--repo", str(tmp_path / "repo")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "spmv" in out
    assert "spmv_cuda_cusp  [cuda]" in out
    assert "main descriptors: spmv_app" in out


def test_cli_list_flags_problems(tmp_path, capsys):
    from repro.components import (
        ImplementationDescriptor,
        InterfaceDescriptor,
        ParamDecl,
        Repository,
    )

    repo = Repository()
    repo.add_interface(InterfaceDescriptor("f", params=(ParamDecl("n", "int"),)))
    repo.add_implementation(
        ImplementationDescriptor(
            name="f_x", provides="f", platform="no_such_platform",
            kernel_ref="m:k", cost_ref="m:c",
        )
    )
    repo.save_to(tmp_path / "repo")
    rc = cli_main(["--list", "--repo", str(tmp_path / "repo")])
    assert rc == 1
    assert "problems:" in capsys.readouterr().out
