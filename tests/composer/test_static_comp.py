"""Static composition: dispatch tables from prediction metadata."""

import pytest

from repro.apps import sgemm, spmv
from repro.components import MainDescriptor, Repository
from repro.composer.explorer import build_ir
from repro.composer.ir import ComponentNode
from repro.composer.recipe import Recipe
from repro.composer.static_comp import (
    DispatchTable,
    apply_static_composition,
    build_dispatch_table,
)
from repro.errors import CompositionError
from repro.hw.presets import cpu_only, platform_c2050


def _node(module=sgemm) -> ComponentNode:
    return ComponentNode(
        interface=module.INTERFACE, implementations=list(module.IMPLEMENTATIONS)
    )


def test_dispatch_table_has_entry_per_scenario():
    table = build_dispatch_table(_node(), platform_c2050(), points_per_param=2)
    assert len(table.entries) == 8  # 2^3 scenarios for m, n, k


def test_large_gemm_scenarios_pick_cublas():
    table = build_dispatch_table(_node(), platform_c2050(), points_per_param=3)
    big = max(table.entries, key=lambda e: e.scenario["m"] * e.scenario["n"])
    assert big.variant == "sgemm_cublas"


def test_small_gemm_scenarios_avoid_gpu():
    table = build_dispatch_table(_node(), platform_c2050(), points_per_param=3)
    small = min(table.entries, key=lambda e: e.scenario["m"] * e.scenario["n"])
    assert small.variant != "sgemm_cublas"


def test_cpu_only_machine_excludes_cuda():
    table = build_dispatch_table(_node(), cpu_only(4), points_per_param=2)
    assert all("cublas" not in e.variant for e in table.entries)


def test_lookup_nearest_scenario():
    table = build_dispatch_table(_node(), platform_c2050(), points_per_param=3)
    assert table.lookup({"m": 4096, "n": 4096, "k": 4096}) == "sgemm_cublas"
    small = table.lookup({"m": 16, "n": 16, "k": 16})
    assert small != "sgemm_cublas"


def test_lookup_empty_table_rejected():
    with pytest.raises(CompositionError):
        DispatchTable("x").lookup({"n": 1})


def test_winners_and_unconditional():
    table = build_dispatch_table(_node(), platform_c2050(), points_per_param=3)
    winners = table.winners()
    assert "sgemm_cublas" in winners and len(winners) >= 2
    assert table.unconditional is None  # no single winner across scenarios


def test_predictions_recorded_per_entry():
    table = build_dispatch_table(_node(), platform_c2050(), points_per_param=2)
    entry = table.entries[0]
    assert len(entry.all_predictions) == 3  # all three variants predicted
    assert entry.predicted_time == min(t for _, t in entry.all_predictions)


def test_apply_static_composition_narrows_ir():
    repo = Repository()
    sgemm.register(repo)
    main = MainDescriptor(name="app", components=("sgemm",))
    tree = build_ir(repo, main, Recipe(static_dispatch=True))
    apply_static_composition(tree, platform_c2050())
    node = tree.node("sgemm")
    assert node.static_choice is not None
    kept = {i.name for i in node.implementations}
    assert kept == node.static_choice.winners()
    assert len(kept) < 3  # at least one variant was never the winner


def test_describe_lists_entries():
    table = build_dispatch_table(_node(), platform_c2050(), points_per_param=2)
    text = table.describe()
    assert "sgemm" in text and "ms" in text


def test_spmv_irregular_prefers_hybrid_pattern():
    """SpMV is transfer/bandwidth-bound: CPU must win small scenarios."""
    table = build_dispatch_table(_node(spmv), platform_c2050(), points_per_param=3)
    small = min(table.entries, key=lambda e: e.scenario["nnz"])
    assert small.variant in ("spmv_cpu", "spmv_openmp")
