"""Dispatch-table compaction into decision trees (paper section III)."""

import pytest

from repro.apps import sgemm, spmv
from repro.components.context import ContextInstance
from repro.composer.compaction import compact_dispatch_table
from repro.composer.ir import ComponentNode
from repro.composer.static_comp import DispatchEntry, DispatchTable, build_dispatch_table
from repro.errors import CompositionError
from repro.hw.presets import platform_c2050


def _table(module=sgemm, points=3) -> DispatchTable:
    node = ComponentNode(
        interface=module.INTERFACE, implementations=list(module.IMPLEMENTATIONS)
    )
    return build_dispatch_table(node, platform_c2050(), points_per_param=points)


def test_tree_reproduces_every_training_scenario():
    table = _table()
    tree = compact_dispatch_table(table)
    for entry in table.entries:
        assert tree.lookup(entry.scenario.as_dict()) == entry.variant


def test_tree_is_smaller_than_the_table():
    table = _table(points=4)  # 64 scenarios
    tree = compact_dispatch_table(table)
    assert tree.n_nodes < len(table.entries)


def test_tree_generalises_between_grid_points():
    """Between two scenarios with the same winner, the tree must keep
    returning that winner (thresholds sit between the regions)."""
    table = _table()
    tree = compact_dispatch_table(table)
    assert tree.lookup({"m": 4000, "n": 4000, "k": 4000}) == "sgemm_cublas"
    small = tree.lookup({"m": 20, "n": 20, "k": 20})
    assert small != "sgemm_cublas"


def test_tree_handles_missing_keys_via_majority():
    table = _table()
    tree = compact_dispatch_table(table)
    # no context at all: fall back through majorities to some variant
    assert tree.lookup({}) in {i.name for i in sgemm.IMPLEMENTATIONS}


def test_single_winner_collapses_to_one_leaf():
    entries = [
        DispatchEntry(
            scenario=ContextInstance({"n": n}), variant="only", predicted_time=1.0
        )
        for n in (10, 100, 1000)
    ]
    table = DispatchTable("x", entries)
    tree = compact_dispatch_table(table)
    assert tree.n_nodes == 1 and tree.depth == 1
    assert tree.lookup({"n": 5}) == "only"


def test_empty_table_rejected():
    with pytest.raises(CompositionError):
        compact_dispatch_table(DispatchTable("x"))


def test_describe_is_readable():
    tree = compact_dispatch_table(_table())
    text = tree.describe()
    assert "if " in text and "-> " in text and "sgemm" in text


def test_depth_limit_degrades_gracefully():
    table = _table(points=4)
    tree = compact_dispatch_table(table, max_depth=1)
    assert tree.depth <= 2  # one split + leaves
    # still a valid dispatch function
    assert tree.lookup({"m": 4096, "n": 4096, "k": 4096}) in {
        i.name for i in sgemm.IMPLEMENTATIONS
    }


def test_spmv_table_compacts_too():
    table = _table(spmv)
    tree = compact_dispatch_table(table)
    for entry in table.entries:
        assert tree.lookup(entry.scenario.as_dict()) == entry.variant
