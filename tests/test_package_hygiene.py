"""Package hygiene: public modules are importable and documented."""

import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} is missing a module docstring"
    )


def test_package_version():
    assert repro.__version__


def test_all_exports_resolve():
    for pkg_name in (
        "repro.hw",
        "repro.runtime",
        "repro.containers",
        "repro.components",
        "repro.composer",
        "repro.workloads",
        "repro.metrics",
        "repro.report",
    ):
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", ()):
            assert getattr(pkg, name, None) is not None, f"{pkg_name}.{name}"


def test_expected_subsystem_count():
    """DESIGN.md's inventory: every subsystem package exists."""
    top = {name.split(".")[1] for name in MODULES if name.count(".") >= 1}
    assert {
        "hw",
        "runtime",
        "containers",
        "components",
        "composer",
        "apps",
        "direct",
        "workloads",
        "experiments",
        "metrics",
        "report",
        "errors",
    } <= top
