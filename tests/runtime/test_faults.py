"""Fault injection and recovery: determinism, fallback, degradation."""

import numpy as np
import pytest

from repro.errors import UnrecoverableTaskError
from repro.hw.devices import tesla_c2050, xeon_e5520_core
from repro.hw.faults import FaultModel
from repro.hw.description import make_machine
from repro.hw.presets import cpu_only, platform_c2050
from repro.runtime import RecoveryPolicy, Runtime

from tests.conftest import make_axpy_codelet


def _run_axpy_batch(
    faults=None, scheduler="dmda", seed=0, n_tasks=12, n=4096,
    recovery=None, archs=("cpu", "openmp", "cuda"), machine=None,
):
    rt = Runtime(
        machine if machine is not None else platform_c2050(),
        scheduler=scheduler,
        seed=seed,
        faults=faults,
        recovery=recovery,
    )
    cl = make_axpy_codelet(archs=archs)
    y = rt.register(np.zeros(n, dtype=np.float32))
    x = rt.register(np.ones(n, dtype=np.float32))
    for _ in range(n_tasks):
        rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": n}, scalar_args=(1.0,))
    rt.wait_for_all()
    rt.acquire(y, "r")
    result = y.array.copy()
    makespan = rt.shutdown()
    return makespan, result, rt.trace


# ---------------------------------------------------------------------------
# FaultModel: validation and determinism
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kw", [
    {"kernel_fault_rate": -0.1},
    {"kernel_fault_rate": 1.5},
    {"transfer_fault_rate": 2.0},
    {"device_loss_rate": -1e-9},
    {"seed": -1},
    {"device_loss_at": {3: -0.5}},
])
def test_fault_model_rejects_bad_arguments(kw):
    with pytest.raises(ValueError):
        FaultModel(**kw)


def test_fault_model_enabled_flag():
    assert not FaultModel().enabled
    assert not FaultModel(seed=99).enabled
    assert FaultModel(kernel_fault_rate=0.1).enabled
    assert FaultModel(transfer_fault_rate=0.1).enabled
    assert FaultModel(device_loss_rate=0.1).enabled
    assert FaultModel(device_loss_at={3: 1.0}).enabled


def test_fault_model_draws_deterministic_under_fixed_seed():
    a = FaultModel(kernel_fault_rate=0.3, transfer_fault_rate=0.3,
                   device_loss_rate=0.3, seed=7)
    b = FaultModel(kernel_fault_rate=0.3, transfer_fault_rate=0.3,
                   device_loss_rate=0.3, seed=7)
    for task_seq in range(50):
        for attempt in range(3):
            assert a.kernel_fault(task_seq, attempt) == b.kernel_fault(
                task_seq, attempt
            )
            assert a.device_loss(1, task_seq, attempt) == b.device_loss(
                1, task_seq, attempt
            )
    for seq in range(100):
        assert a.transfer_fault(seq) == b.transfer_fault(seq)


def test_fault_model_draws_are_order_independent():
    """Draw order never shifts the schedule: each event is keyed, not
    consumed from a shared stream."""
    a = FaultModel(kernel_fault_rate=0.3, seed=11)
    forward = [a.kernel_fault(i, 0) for i in range(20)]
    b = FaultModel(kernel_fault_rate=0.3, seed=11)
    backward = [b.kernel_fault(i, 0) for i in reversed(range(20))]
    assert forward == list(reversed(backward))


def test_fault_model_seed_changes_schedule():
    a = FaultModel(kernel_fault_rate=0.3, seed=0)
    b = FaultModel(kernel_fault_rate=0.3, seed=1)
    draws_a = [a.kernel_fault(i, 0) is not None for i in range(200)]
    draws_b = [b.kernel_fault(i, 0) is not None for i in range(200)]
    assert draws_a != draws_b


def test_fault_model_fault_fraction_in_bounds():
    m = FaultModel(kernel_fault_rate=1.0, seed=5)
    for i in range(100):
        frac = m.kernel_fault(i, 0)
        assert frac is not None and 0.05 <= frac <= 0.95


# ---------------------------------------------------------------------------
# zero overhead when disabled
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", ["eager", "ws", "dmda"])
def test_zero_rate_fault_model_is_bit_identical(scheduler):
    """An all-zero FaultModel must not perturb the timeline at all."""
    t0, r0, tr0 = _run_axpy_batch(faults=None, scheduler=scheduler)
    t1, r1, tr1 = _run_axpy_batch(faults=FaultModel(seed=123),
                                  scheduler=scheduler)
    assert t0 == t1
    assert np.array_equal(r0, r1)
    assert len(tr0.tasks) == len(tr1.tasks)
    for a, b in zip(tr0.tasks, tr1.tasks):
        assert (a.start_time, a.end_time, a.worker_ids, a.variant) == (
            b.start_time, b.end_time, b.worker_ids, b.variant
        )
    assert tr1.n_faults == 0


# ---------------------------------------------------------------------------
# recovery: retry, fallback, blacklisting
# ---------------------------------------------------------------------------

def test_faulty_run_recovers_with_correct_results():
    t0, r0, _ = _run_axpy_batch(faults=None)
    faults = FaultModel(kernel_fault_rate=0.3, seed=3)
    t1, r1, tr = _run_axpy_batch(
        faults=faults, recovery=RecoveryPolicy(max_retries=8)
    )
    assert tr.n_faults > 0
    assert tr.n_task_retries >= tr.n_kernel_faults
    assert tr.n_tasks_recovered > 0 and tr.n_tasks_lost == 0
    assert t1 > t0  # lost attempt time + backoff shows up in the makespan
    assert np.array_equal(r0, r1)  # kernels only ran on winning attempts


def test_faulty_run_is_deterministic():
    kw = dict(faults=FaultModel(kernel_fault_rate=0.3, seed=3),
              recovery=RecoveryPolicy(max_retries=8))
    t1, r1, tr1 = _run_axpy_batch(**kw)
    t2, r2, tr2 = _run_axpy_batch(**kw)
    assert t1 == t2
    assert np.array_equal(r1, r2)
    assert tr1.n_faults == tr2.n_faults
    # task ids come from a process-global counter, so compare the
    # schedule itself: kinds, times and attempt numbers
    assert [(f.kind, f.time, f.attempt) for f in tr1.faults] == [
        (f.kind, f.time, f.attempt) for f in tr2.faults
    ]


def test_variant_fallback_after_kernel_fault():
    """First attempt faults -> retry lands on the other architecture."""
    # probe for a seed whose schedule faults attempt 0 of task 0 but not
    # attempt 1 (deterministic: draws are pure functions of (seed, key))
    seed = next(
        s for s in range(1000)
        if FaultModel(kernel_fault_rate=0.5, seed=s).kernel_fault(0, 0)
        is not None
        and FaultModel(kernel_fault_rate=0.5, seed=s).kernel_fault(0, 1)
        is None
    )
    # 2 cores, 1 GPU -> exactly one CPU worker and one CUDA worker, so
    # avoiding the failed placement forces an architecture switch
    machine = make_machine(
        "tiny", xeon_e5520_core(), 2, gpus=[tesla_c2050()]
    )
    t, r, tr = _run_axpy_batch(
        faults=FaultModel(kernel_fault_rate=0.5, seed=seed),
        scheduler="eager",
        n_tasks=1,
        machine=machine,
        archs=("cpu", "cuda"),
    )
    assert r[0] == 1.0
    assert tr.n_kernel_faults == 1
    assert tr.n_tasks_recovered == 1
    assert tr.n_fallbacks == 1  # recovered on a different architecture
    [rec] = tr.tasks
    [fault] = [f for f in tr.faults if f.kind == "kernel"]
    assert rec.start_time > fault.time  # retried after the fault surfaced


def test_retry_exhaustion_raises_unrecoverable():
    rt = Runtime(
        cpu_only(1),
        scheduler="eager",
        seed=0,
        faults=FaultModel(kernel_fault_rate=1.0, seed=0),
        recovery=RecoveryPolicy(max_retries=2),
    )
    cl = make_axpy_codelet(archs=("cpu",))
    y = rt.register(np.zeros(8, dtype=np.float32))
    x = rt.register(np.ones(8, dtype=np.float32))
    with pytest.raises(UnrecoverableTaskError):
        rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 8}, scalar_args=(1.0,))
    assert rt.trace.n_tasks_lost == 1
    assert y.array[0] == 0.0  # the kernel never ran


def test_repeated_faults_blacklist_worker_but_never_the_last_one():
    rt = Runtime(
        cpu_only(3),
        scheduler="eager",
        seed=0,
        faults=FaultModel(kernel_fault_rate=1.0, seed=0),
        recovery=RecoveryPolicy(max_retries=30, blacklist_after=2),
    )
    cl = make_axpy_codelet(archs=("cpu",))
    y = rt.register(np.zeros(8, dtype=np.float32))
    x = rt.register(np.ones(8, dtype=np.float32))
    with pytest.raises(UnrecoverableTaskError):
        rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 8}, scalar_args=(1.0,))
    # every placement faults, so workers hit the blacklist threshold —
    # but at least one worker must always stay usable
    assert rt.trace.blacklisted_workers
    assert len(rt.trace.blacklisted_workers) < 3


# ---------------------------------------------------------------------------
# transfer faults
# ---------------------------------------------------------------------------

def test_transfer_faults_are_retransmitted_with_correct_data():
    t0, r0, _ = _run_axpy_batch(faults=None, scheduler="eager",
                                archs=("cuda",), n=65536, n_tasks=6)
    faults = FaultModel(transfer_fault_rate=0.5, seed=2)
    t1, r1, tr = _run_axpy_batch(
        faults=faults, scheduler="eager", archs=("cuda",), n=65536, n_tasks=6,
        recovery=RecoveryPolicy(max_retries=8),
    )
    assert tr.n_transfer_faults > 0
    assert np.array_equal(r0, r1)
    assert t1 > t0  # each corrupted attempt still spends wire time


# ---------------------------------------------------------------------------
# device loss and graceful degradation
# ---------------------------------------------------------------------------

def _gpu_unit(machine):
    return machine.gpu_units[0].unit_id


def test_device_loss_mid_run_degrades_to_cpu():
    machine = platform_c2050()
    t0, r0, _ = _run_axpy_batch(faults=None, scheduler="eager")
    faults = FaultModel(device_loss_at={_gpu_unit(machine): t0 * 0.2}, seed=1)
    t1, r1, tr = _run_axpy_batch(faults=faults, scheduler="eager")
    assert np.array_equal(r0, r1)
    assert tr.n_devices_lost == 1
    assert tr.lost_workers == {_gpu_unit(machine)}
    # nothing runs on the dead device after the loss time
    loss_time = t0 * 0.2
    for rec in tr.tasks:
        if _gpu_unit(machine) in rec.worker_ids:
            assert rec.start_time < loss_time or rec.end_time <= loss_time


def test_device_loss_invalidates_replicas_and_resources_from_host():
    """The GPU dies holding the sole modified copy; a later host read
    must recover through the coherence layer, not crash."""
    machine = platform_c2050()
    gpu = _gpu_unit(machine)

    # measure when a single GPU task finishes
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    cl = make_axpy_codelet(archs=("cuda",))
    y = rt.register(np.zeros(1024, dtype=np.float32))
    x = rt.register(np.ones(1024, dtype=np.float32))
    rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 1024}, scalar_args=(1.0,),
              sync=True)
    t_done = rt.now
    rt.shutdown()

    # replay with the GPU dying after that task but before the host read
    rt = Runtime(
        platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0,
        faults=FaultModel(device_loss_at={gpu: t_done * 1.5}, seed=0),
    )
    cl = make_axpy_codelet(archs=("cuda",))
    cl_cpu = make_axpy_codelet(archs=("cpu",))
    y = rt.register(np.zeros(1024, dtype=np.float32))
    x = rt.register(np.ones(1024, dtype=np.float32))
    rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 1024}, scalar_args=(1.0,),
              sync=True)
    # unrelated CPU work advances virtual time past the scripted loss
    w = rt.register(np.zeros(1 << 20, dtype=np.float32))
    v = rt.register(np.ones(1 << 20, dtype=np.float32))
    while rt.now <= t_done * 1.5:
        rt.submit(cl_cpu, [(w, "rw"), (v, "r")], ctx={"n": 1 << 20},
                  scalar_args=(1.0,), sync=True)
    rt.acquire(y, "r")
    assert y.array[0] == 1.0
    rt.shutdown()
    assert rt.trace.n_devices_lost == 1
    assert rt.trace.n_replicas_recovered >= 1
    assert any(f.kind == "replica_lost" for f in rt.trace.faults)


# ---------------------------------------------------------------------------
# acceptance scenario: fig6 workload under faults, all schedulers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("policy", ["eager", "ws", "dmda"])
def test_fig6_sgemm_under_faults_matches_reference(policy):
    from repro.experiments.fig6 import SCENARIOS
    from repro.workloads import gemm_inputs

    scenario = SCENARIOS["sgemm"]
    size = scenario.sizes[0]
    a, b, c = gemm_inputs(size, size, size, seed=0)
    reference = 1.0 * (a.astype(np.float64) @ b.astype(np.float64))

    rt = Runtime(
        platform_c2050(), scheduler=policy, seed=0,
        faults=FaultModel(kernel_fault_rate=0.05, seed=42),
    )
    a2, b2, c2 = gemm_inputs(size, size, size, seed=0)
    ha, hb, hc = (rt.register(m) for m in (a2, b2, c2))
    codelets = scenario.make_codelets()
    rt.submit(
        codelets["sgemm"], [(ha, "r"), (hb, "r"), (hc, "rw")],
        ctx={"m": size, "n": size, "k": size},
        scalar_args=(size, size, size, 1.0, 0.0),
    )
    rt.wait_for_all()
    rt.acquire(hc, "r")
    assert np.allclose(hc.array, reference, rtol=1e-3, atol=1e-4)
    assert rt.shutdown() > 0


# ---------------------------------------------------------------------------
# trace export of fault events
# ---------------------------------------------------------------------------

def test_chrome_trace_contains_fault_and_flow_events():
    import json

    from repro.runtime import to_chrome_trace

    _, _, tr = _run_axpy_batch(
        faults=FaultModel(kernel_fault_rate=0.3, seed=3),
        recovery=RecoveryPolicy(max_retries=8),
    )
    assert tr.n_faults > 0
    obj = to_chrome_trace(tr, platform_c2050())
    json.dumps(obj)  # must serialise cleanly
    instants = [e for e in obj["traceEvents"]
                if e.get("cat") == "fault" and e["ph"] == "i"]
    flows = [e for e in obj["traceEvents"]
             if e.get("cat") == "fault" and e["ph"] in ("s", "t", "f")]
    assert len(instants) == tr.n_faults
    # every opened retry flow is terminated exactly once
    opened = {e["id"] for e in flows if e["ph"] == "s"}
    finished = [e["id"] for e in flows if e["ph"] == "f"]
    assert sorted(finished) == sorted(opened)
    for e in flows:
        assert e["ts"] >= 0
