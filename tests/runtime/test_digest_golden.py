"""Same-seed trace digests are frozen across internal-layout changes.

The slotted/columnar record refactor (and any future storage change)
must keep same-seed traces byte-identical: both the canonical Chrome
trace JSON and the canonicalized lossless trace document are hashed and
compared against digests captured *before* the refactor
(``tests/data/golden_digests.json``).

Regenerate the golden file only when a change legitimately alters trace
*content* (new record fields, different modeled timings) — never for a
pure storage/layout change::

    PYTHONPATH=src:tests/runtime python -c \
        "import test_digest_golden as m; m.write_golden()"
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.hw.faults import FaultModel
from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.trace_export import canonical_chrome_json, trace_to_dict

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_digests.json"


def _codelet() -> Codelet:
    return Codelet(
        "gold",
        [
            ImplVariant(
                "gold_cpu", Arch.CPU, lambda ctx, *a: None, lambda ctx, dev: 1e-6
            ),
            ImplVariant(
                "gold_cuda", Arch.CUDA, lambda ctx, *a: None, lambda ctx, dev: 4e-7
            ),
        ],
    )


def _runtime(scheduler: str, **kw) -> Runtime:
    defaults = dict(
        scheduler=scheduler,
        seed=7,
        noise_sigma=0.0,
        run_kernels=False,
        check=False,
    )
    defaults.update(kw)
    return Runtime(platform_c2050(), **defaults)


def scenario_fanout() -> tuple:
    rt = _runtime("eager")
    codelet = _codelet()
    handles = [
        rt.register(np.zeros(64, dtype=np.float32), f"g{i}") for i in range(6)
    ]
    for i in range(300):
        rt.submit(codelet, [(handles[i % 6], "r")], name=f"fan{i}")
    rt.wait_for_all()
    rt.shutdown()
    return rt.trace, rt.machine


def scenario_chain() -> tuple:
    rt = _runtime("eager")
    codelet = _codelet()
    h = rt.register(np.zeros(64, dtype=np.float32), "chain")
    for i in range(300):
        rt.submit(codelet, [(h, "rw")], name=f"chain{i}")
    rt.wait_for_all()
    rt.shutdown()
    return rt.trace, rt.machine


def scenario_dmda_noise() -> tuple:
    """dmda exploration + noise + mixed transfers + an acquire."""
    rt = _runtime("dmda", noise_sigma=0.03)
    codelet = _codelet()
    handles = [
        rt.register(np.zeros(256, dtype=np.float32), f"d{i}") for i in range(4)
    ]
    for i in range(150):
        mode = "rw" if i % 5 == 0 else "r"
        rt.submit(codelet, [(handles[i % 4], mode)], name=f"mix{i}")
    rt.acquire(handles[0], "r")
    rt.wait_for_all()
    rt.shutdown()
    return rt.trace, rt.machine


def scenario_faults() -> tuple:
    """Transient kernel/transfer faults plus a scripted device loss."""
    rt = _runtime(
        "eager",
        faults=FaultModel(
            kernel_fault_rate=0.08,
            transfer_fault_rate=0.03,
            device_loss_at={3: 2e-4},
            seed=11,
        ),
    )
    codelet = _codelet()
    handles = [
        rt.register(np.zeros(128, dtype=np.float32), f"f{i}") for i in range(3)
    ]
    for i in range(120):
        mode = "rw" if i % 7 == 0 else "r"
        rt.submit(codelet, [(handles[i % 3], mode)], name=f"flt{i}")
    rt.wait_for_all()
    rt.shutdown()
    return rt.trace, rt.machine


def scenario_serve() -> tuple:
    """A small deterministic serve load sweep (closed-loop tenants)."""
    from repro.serve import CompositionServer, TenantSpec

    server = CompositionServer(
        platform_c2050(),
        tenants=[
            TenantSpec(
                "a", workload="sgemm", size=96, rate_hz=2000.0,
                n_requests=20, seed=1,
            ),
            TenantSpec(
                "b", workload="pathfinder", size=64, rate_hz=500.0,
                n_requests=6, seed=2,
            ),
        ],
        scheduler="fair",
    )
    server.run()
    trace, machine = server.trace, server.runtime.machine
    server.shutdown()
    return trace, machine


def _scenario_lookahead(fusion: bool) -> tuple:
    """Window planning: calibration-phase fallback windows, planned
    windows over a mixed DAG, and an ``acquire`` sync point that forces
    an early (partial) window flush."""
    rt = _runtime(
        "lookahead",
        scheduler_options={
            "window_size": 8, "beam_width": 4, "fusion": fusion,
        },
    )
    codelet = _codelet()
    handles = [
        rt.register(np.zeros(256, dtype=np.float32), f"l{i}") for i in range(4)
    ]
    for i in range(60):
        mode = "rw" if i % 3 == 0 else "r"
        rt.submit(codelet, [(handles[i % 4], mode)], name=f"la{i}")
    rt.acquire(handles[1], "r")
    for i in range(30):
        rt.submit(
            codelet,
            [(handles[i % 2], "rw"), (handles[2 + i % 2], "r")],
            name=f"lb{i}",
        )
    rt.wait_for_all()
    rt.shutdown()
    return rt.trace, rt.machine


def scenario_lookahead() -> tuple:
    return _scenario_lookahead(fusion=True)


def scenario_lookahead_nofusion() -> tuple:
    return _scenario_lookahead(fusion=False)


SCENARIOS = {
    "fanout": scenario_fanout,
    "chain": scenario_chain,
    "dmda_noise": scenario_dmda_noise,
    "faults": scenario_faults,
    "serve": scenario_serve,
    "lookahead": scenario_lookahead,
    "lookahead_nofusion": scenario_lookahead_nofusion,
}


def digests_for(trace, machine) -> dict[str, str]:
    chrome = canonical_chrome_json(trace, machine)
    canon_doc = trace_to_dict(trace.canonicalized(), machine)
    canon = json.dumps(canon_doc, sort_keys=True, separators=(",", ":"))
    return {
        "chrome_sha256": hashlib.sha256(chrome.encode()).hexdigest(),
        "canonical_sha256": hashlib.sha256(canon.encode()).hexdigest(),
    }


def compute_all() -> dict[str, dict[str, str]]:
    return {name: digests_for(*fn()) for name, fn in SCENARIOS.items()}


def write_golden() -> None:  # pragma: no cover - maintenance helper
    GOLDEN_PATH.write_text(json.dumps(compute_all(), indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing; regenerate it from a known-good build "
        "(see module docstring)"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_digest_matches_golden(name: str, golden: dict) -> None:
    got = digests_for(*SCENARIOS[name]())
    assert got == golden[name], (
        f"scenario {name!r}: trace digests diverged from the pre-refactor "
        f"golden ({golden[name]} -> {got}); same-seed traces must stay "
        "byte-identical across storage refactors"
    )


def test_canonicalized_is_idempotent() -> None:
    trace, machine = SCENARIOS["dmda_noise"]()
    once = trace.canonicalized()
    twice = once.canonicalized()
    assert canonical_chrome_json(once, machine) == canonical_chrome_json(
        twice, machine
    )
