"""Device-memory capacity and LRU eviction.

The paper (Figure 3 discussion) notes that a device copy "can be
de-allocated by the runtime system if it runs short of memory space on
the device unit — doing so would however require re-allocation of memory
for future usage".  These tests exercise exactly that machinery on a
tiny-memory GPU.
"""

import numpy as np
import pytest

from repro.errors import RuntimeSystemError
from repro.hw.devices import tesla_c2050, xeon_e5520_core
from repro.hw.description import HOST_NODE, make_machine
from repro.runtime import Arch, Codelet, ImplVariant, Runtime

MB = 1024 * 1024


def _small_gpu_machine(memory_mb=10):
    from dataclasses import replace

    gpu = replace(tesla_c2050(), memory_bytes=memory_mb * MB)
    return make_machine(
        "tiny-gpu",
        cpu=xeon_e5520_core(),
        n_cpu_cores=4,
        gpus=[gpu],
    )


def _gpu_codelet(name="k", cost=1e-4):
    return Codelet(
        name, [ImplVariant(name, Arch.CUDA, lambda ctx, *a: None, lambda c, d: cost)]
    )


def _rt(memory_mb=10, **kw):
    kw.setdefault("noise_sigma", 0.0)
    return Runtime(_small_gpu_machine(memory_mb), scheduler="eager", seed=0, **kw)


def _mb_array(mb):
    return np.zeros(mb * MB // 4, dtype=np.float32)


def test_capacity_lookup():
    m = _small_gpu_machine(10)
    assert m.node_capacity(HOST_NODE) is None
    assert m.node_capacity(1) == 10 * MB


def test_fitting_working_set_never_evicts():
    rt = _rt(memory_mb=10)
    cl = _gpu_codelet()
    handles = [rt.register(_mb_array(3), f"h{i}") for i in range(3)]
    for h in handles:
        rt.submit(cl, [(h, "r")])
    rt.wait_for_all()
    assert rt.trace.n_evictions == 0
    rt.shutdown()


def test_oversubscription_evicts_lru():
    rt = _rt(memory_mb=10)
    cl = _gpu_codelet()
    a = rt.register(_mb_array(4), "a")
    b = rt.register(_mb_array(4), "b")
    c = rt.register(_mb_array(4), "c")
    rt.submit(cl, [(a, "r")], sync=True)  # a resident (4 MB)
    rt.submit(cl, [(b, "r")], sync=True)  # b resident (8 MB)
    rt.submit(cl, [(c, "r")], sync=True)  # needs 12 MB: evict LRU = a
    assert rt.trace.n_evictions == 1
    assert rt.trace.evictions[0].handle_name == "a"
    assert not rt.trace.evictions[0].flushed  # a was a clean SHARED copy
    rt.shutdown()


def test_reuse_refreshes_lru_order():
    rt = _rt(memory_mb=10)
    cl = _gpu_codelet()
    a = rt.register(_mb_array(4), "a")
    b = rt.register(_mb_array(4), "b")
    c = rt.register(_mb_array(4), "c")
    rt.submit(cl, [(a, "r")], sync=True)
    rt.submit(cl, [(b, "r")], sync=True)
    rt.submit(cl, [(a, "r")], sync=True)  # a becomes most recently used
    rt.submit(cl, [(c, "r")], sync=True)  # evicts b, not a
    assert [e.handle_name for e in rt.trace.evictions] == ["b"]
    rt.shutdown()


def test_evicting_sole_owner_flushes_home_first():
    rt = _rt(memory_mb=10)
    cl = _gpu_codelet()

    def fill(ctx, arr):
        arr[:] = 9.0

    writer = Codelet("w", [ImplVariant("w", Arch.CUDA, fill, lambda c, d: 1e-4)])
    dirty = rt.register(_mb_array(6), "dirty")
    rt.submit(writer, [(dirty, "w")], sync=True)  # only copy lives on GPU
    big = rt.register(_mb_array(6), "big")
    rt.submit(cl, [(big, "r")], sync=True)  # forces eviction of `dirty`
    ev = rt.trace.evictions[0]
    assert ev.handle_name == "dirty" and ev.flushed
    # the flush is a real d2h transfer and the values survived
    assert rt.trace.n_d2h >= 1
    assert dirty.array[0] == 9.0
    rt.acquire(dirty, "r")  # host copy is valid without further transfers
    rt.shutdown()


def test_evicted_data_retransfers_on_next_use():
    rt = _rt(memory_mb=10)
    cl = _gpu_codelet()
    a = rt.register(_mb_array(6), "a")
    b = rt.register(_mb_array(6), "b")
    rt.submit(cl, [(a, "r")], sync=True)
    rt.submit(cl, [(b, "r")], sync=True)  # evicts a
    rt.submit(cl, [(a, "r")], sync=True)  # re-allocation: fresh upload
    uploads = [t for t in rt.trace.transfers if t.is_h2d and t.handle_name == "a"]
    assert len(uploads) == 2  # the paper's "re-allocation for future usage"
    rt.shutdown()


def test_single_operand_larger_than_memory_rejected():
    rt = _rt(memory_mb=10)
    cl = _gpu_codelet()
    huge = rt.register(_mb_array(11), "huge")
    with pytest.raises(RuntimeSystemError, match="partition"):
        rt.submit(cl, [(huge, "r")])
    rt.shutdown()


def test_pinned_operands_never_evict_each_other():
    """One task whose operands together fill the device: both pinned."""
    rt = _rt(memory_mb=10)

    def two_op(ctx, x, y):
        pass

    cl = Codelet("t", [ImplVariant("t", Arch.CUDA, two_op, lambda c, d: 1e-4)])
    x = rt.register(_mb_array(5), "x")
    y = rt.register(_mb_array(5), "y")
    rt.submit(cl, [(x, "r"), (y, "r")], sync=True)
    assert rt.trace.n_evictions == 0
    rt.shutdown()


def test_all_pinned_and_full_raises():
    rt = _rt(memory_mb=10)

    def three_op(ctx, *arrays):
        pass

    cl = Codelet("t", [ImplVariant("t", Arch.CUDA, three_op, lambda c, d: 1e-4)])
    ops = [(rt.register(_mb_array(4), f"x{i}"), "r") for i in range(3)]
    with pytest.raises(RuntimeSystemError, match="out of memory"):
        rt.submit(cl, ops)
    rt.shutdown()


def test_eviction_costs_show_in_makespan():
    """Thrashing between two working sets costs repeated transfers."""
    def run(memory_mb):
        rt = _rt(memory_mb=memory_mb)
        cl = _gpu_codelet(cost=1e-5)
        a = rt.register(_mb_array(6), "a")
        b = rt.register(_mb_array(6), "b")
        for _ in range(4):
            rt.submit(cl, [(a, "r")], sync=True)
            rt.submit(cl, [(b, "r")], sync=True)
        t = rt.wait_for_all()
        rt.shutdown()
        return t

    assert run(memory_mb=10) > 2 * run(memory_mb=64)  # thrash vs fits
