"""Runtime facade: argument handling and option plumbing."""

import numpy as np
import pytest

from repro.errors import RuntimeSystemError
from repro.hw.presets import cpu_only, platform_c2050
from repro.runtime import AccessMode, Runtime
from repro.runtime.schedulers import DmdaScheduler, reset_instance_warning

from tests.conftest import make_axpy_codelet


def test_scheduler_instance_accepted_with_deprecation():
    sched = DmdaScheduler(calibration_samples=3)
    reset_instance_warning()
    with pytest.warns(DeprecationWarning, match="pass the policy name"):
        rt = Runtime(platform_c2050(), scheduler=sched)
    assert rt.scheduler is sched
    rt.shutdown()


def test_scheduler_options_require_name():
    reset_instance_warning()
    with pytest.warns(DeprecationWarning):
        with pytest.raises(RuntimeSystemError):
            Runtime(
                platform_c2050(),
                scheduler=DmdaScheduler(),
                scheduler_options={"beta": 2.0},
            )


def test_scheduler_options_forwarded_by_name():
    rt = Runtime(
        platform_c2050(), scheduler="dmda", scheduler_options={"beta": 3.0}
    )
    assert rt.scheduler.beta == 3.0
    rt.shutdown()


def test_operand_modes_accept_enum_and_text():
    rt = Runtime(cpu_only(2), scheduler="eager", noise_sigma=0.0)
    cl = make_axpy_codelet(archs=("cpu",))
    y = rt.register(np.zeros(8, dtype=np.float32))
    x = rt.register(np.ones(8, dtype=np.float32))
    rt.submit(cl, [(y, AccessMode.RW), (x, "read")], ctx={"n": 8}, scalar_args=(1.0,))
    rt.wait_for_all()
    assert y.array[0] == 1.0
    rt.shutdown()


def test_acquire_accepts_text_mode():
    rt = Runtime(cpu_only(2), scheduler="eager", noise_sigma=0.0)
    h = rt.register(np.zeros(4, dtype=np.float32))
    rt.acquire(h, "readwrite")
    rt.shutdown()


def test_now_and_trace_properties():
    rt = Runtime(cpu_only(2), scheduler="eager", noise_sigma=0.0)
    assert rt.now == 0.0
    cl = make_axpy_codelet(archs=("cpu",))
    y = rt.register(np.zeros(8, dtype=np.float32))
    x = rt.register(np.ones(8, dtype=np.float32))
    rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 8}, scalar_args=(1.0,), sync=True)
    assert rt.now > 0.0
    assert rt.trace.n_tasks == 1
    assert rt.perfmodel.n_samples is not None
    rt.shutdown()


def test_context_manager_propagates_exceptions():
    with pytest.raises(ValueError):
        with Runtime(cpu_only(2)) as rt:
            raise ValueError("boom")
    # the session was closed on the error path (no half-open state leaks)
    with pytest.raises(RuntimeSystemError):
        rt.register(np.zeros(2, dtype=np.float32))


def test_context_manager_shuts_down_on_error_without_masking():
    """__exit__ runs shutdown after a body exception and the original
    exception — not any secondary shutdown error — reaches the caller."""
    cl = make_axpy_codelet(archs=("cpu",))
    with pytest.raises(ValueError, match="boom"):
        with Runtime(cpu_only(2), scheduler="eager", noise_sigma=0.0) as rt:
            y = rt.register(np.zeros(8, dtype=np.float32))
            x = rt.register(np.ones(8, dtype=np.float32))
            rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 8}, scalar_args=(1.0,))
            raise ValueError("boom")
    assert rt.engine._shutdown


def test_context_manager_shutdown_error_does_not_mask_body_error(monkeypatch):
    rt = Runtime(cpu_only(2))

    def broken_shutdown():
        raise RuntimeSystemError("shutdown exploded")

    monkeypatch.setattr(rt.engine, "shutdown", broken_shutdown)
    with pytest.raises(ValueError, match="boom"):  # not RuntimeSystemError
        with rt:
            raise ValueError("boom")


def test_context_manager_clean_path_raises_shutdown_errors(monkeypatch):
    rt = Runtime(cpu_only(2))

    def broken_shutdown():
        raise RuntimeSystemError("shutdown exploded")

    monkeypatch.setattr(rt.engine, "shutdown", broken_shutdown)
    with pytest.raises(RuntimeSystemError, match="shutdown exploded"):
        with rt:
            pass  # no body error: a shutdown failure must surface


def test_noise_sigma_zero_gives_exact_costs():
    rt = Runtime(cpu_only(1), scheduler="eager", noise_sigma=0.0)
    cl = make_axpy_codelet(archs=("cpu",))
    y = rt.register(np.zeros(1000, dtype=np.float32))
    x = rt.register(np.ones(1000, dtype=np.float32))
    t1 = rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 1000}, scalar_args=(1.0,))
    t2 = rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 1000}, scalar_args=(1.0,))
    rt.wait_for_all()
    # identical modeled durations (up to float representation of the
    # differing absolute start offsets)
    d1 = t1.end_time - t1.start_time
    d2 = t2.end_time - t2.start_time
    assert d1 == pytest.approx(d2, rel=1e-9)
    rt.shutdown()


def test_task_names_and_priority_flow_through():
    rt = Runtime(cpu_only(2), scheduler="eager", noise_sigma=0.0)
    cl = make_axpy_codelet(archs=("cpu",))
    y = rt.register(np.zeros(8, dtype=np.float32))
    x = rt.register(np.ones(8, dtype=np.float32))
    task = rt.submit(
        cl, [(y, "rw"), (x, "r")], ctx={"n": 8}, scalar_args=(1.0,),
        name="my_call", priority=3,
    )
    assert task.name == "my_call" and task.priority == 3
    rt.wait_for_all()
    assert rt.trace.tasks[0].name == "my_call"
    rt.shutdown()
