"""Access-mode semantics and parsing."""

import pytest

from repro.runtime.access import AccessMode


def test_reads_flags():
    assert AccessMode.R.reads and AccessMode.RW.reads
    assert not AccessMode.W.reads


def test_writes_flags():
    assert AccessMode.W.writes and AccessMode.RW.writes
    assert not AccessMode.R.writes


@pytest.mark.parametrize(
    "text,expected",
    [
        ("r", AccessMode.R),
        ("READ", AccessMode.R),
        ("in", AccessMode.R),
        ("w", AccessMode.W),
        ("write", AccessMode.W),
        ("out", AccessMode.W),
        ("rw", AccessMode.RW),
        ("readwrite", AccessMode.RW),
        ("read-write", AccessMode.RW),
        ("inout", AccessMode.RW),
        ("  Rw ", AccessMode.RW),
    ],
)
def test_parse_aliases(text, expected):
    assert AccessMode.parse(text) is expected


def test_parse_unknown():
    with pytest.raises(ValueError):
        AccessMode.parse("readonly-ish")
