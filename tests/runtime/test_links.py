"""PCIe link contention and duplex (dual-DMA) behaviour."""

import numpy as np
import pytest

from repro.hw.presets import platform_c1060, platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _noop_codelet(name="k", arch=Arch.CUDA, cost=1e-6):
    return Codelet(
        name, [ImplVariant(name, arch, lambda ctx, *a: None, lambda c, d: cost)]
    )


NBYTES = 40_000_000  # 40 MB -> ~7.3 ms per PCIe leg


def test_same_direction_transfers_serialise_on_the_dma_engine():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    cl = _noop_codelet()
    h1 = rt.register(np.zeros(NBYTES // 4, dtype=np.float32))
    h2 = rt.register(np.zeros(NBYTES // 4, dtype=np.float32))
    rt.submit(cl, [(h1, "r")])
    rt.submit(cl, [(h2, "r")])
    rt.wait_for_all()
    uploads = sorted(rt.trace.transfers, key=lambda t: t.start_time)
    assert len(uploads) == 2
    # the second upload waits for the first DMA to finish
    assert uploads[1].start_time >= uploads[0].end_time
    rt.shutdown()


def _h2d_d2h_overlap(machine):
    """Upload for one handle while downloading another; do they overlap?"""
    rt = Runtime(machine, scheduler="eager", seed=0, noise_sigma=0.0)
    write_cl = Codelet(
        "w", [ImplVariant("w", Arch.CUDA, lambda ctx, a: None, lambda c, d: 1e-6)]
    )
    read_cl = _noop_codelet("r")
    h_out = rt.register(np.zeros(NBYTES // 4, dtype=np.float32), "out")
    h_in = rt.register(np.zeros(NBYTES // 4, dtype=np.float32), "in")
    rt.submit(write_cl, [(h_out, "w")])  # device-resident result
    # trigger d2h (acquire the result) and h2d (a read task) together
    rt.submit(read_cl, [(h_in, "r")])
    rt.acquire(h_out, "r")
    rt.wait_for_all()
    h2d = next(t for t in rt.trace.transfers if t.is_h2d)
    d2h = next(t for t in rt.trace.transfers if t.is_d2h)
    overlap = (
        h2d.start_time < d2h.end_time and d2h.start_time < h2d.end_time
    )
    rt.shutdown()
    return overlap


def test_fermi_dual_dma_overlaps_directions():
    assert _h2d_d2h_overlap(platform_c2050())  # duplex link


def test_gt200_single_dma_serialises_directions():
    assert not _h2d_d2h_overlap(platform_c1060())  # half-duplex link


def test_transfers_overlap_with_gpu_compute():
    """DMA is a separate resource: a long kernel on one handle must not
    delay an unrelated upload."""
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    slow_cl = _noop_codelet("slow", cost=50e-3)
    h_busy = rt.register(np.zeros(16, dtype=np.float32))
    task = rt.submit(slow_cl, [(h_busy, "rw")])
    h_data = rt.register(np.zeros(NBYTES // 4, dtype=np.float32))
    rt.submit(_noop_codelet("r2"), [(h_data, "r")])
    rt.wait_for_all()
    upload = next(t for t in rt.trace.transfers if t.is_h2d)
    assert upload.end_time < task.end_time  # streamed in during compute
    rt.shutdown()
