"""Performance models: history, regression and persistence."""

import math

import pytest

from repro.errors import RuntimeSystemError
from repro.runtime.perfmodel import (
    HistoryModel,
    PerfModel,
    RegressionModel,
    RunningStats,
)


def test_running_stats_mean_and_variance():
    st = RunningStats()
    for x in (1.0, 2.0, 3.0, 4.0):
        st.add(x)
    assert st.mean == pytest.approx(2.5)
    assert st.variance == pytest.approx(5.0 / 3.0)
    assert st.stddev == pytest.approx(math.sqrt(5.0 / 3.0))


def test_running_stats_rejects_negative():
    with pytest.raises(RuntimeSystemError):
        RunningStats().add(-1.0)


def test_history_predict_requires_min_samples():
    model = HistoryModel(min_samples=3)
    fp = ("c", (10,))
    model.record(fp, "v", 1.0)
    model.record(fp, "v", 1.0)
    assert model.predict(fp, "v") is None
    model.record(fp, "v", 1.0)
    assert model.predict(fp, "v") == pytest.approx(1.0)


def test_history_separates_variants_and_footprints():
    model = HistoryModel()
    model.record(("c", (10,)), "a", 1.0)
    model.record(("c", (20,)), "a", 9.0)
    model.record(("c", (10,)), "b", 5.0)
    assert model.predict(("c", (10,)), "a") == 1.0
    assert model.predict(("c", (20,)), "a") == 9.0
    assert model.predict(("c", (10,)), "b") == 5.0


def test_history_min_samples_validation():
    with pytest.raises(ValueError):
        HistoryModel(min_samples=0)


def test_regression_recovers_power_law():
    model = RegressionModel(min_samples=4)
    for size in (1e3, 1e4, 1e5, 1e6):
        model.record("v", size, 2e-9 * size**1.5)
    predicted = model.predict("v", 1e7)
    assert predicted == pytest.approx(2e-9 * 1e7**1.5, rel=1e-6)


def test_regression_needs_size_spread():
    model = RegressionModel(min_samples=2, min_size_ratio=2.0)
    model.record("v", 1000, 1.0)
    model.record("v", 1100, 1.1)
    assert model.predict("v", 5000) is None  # sizes too close to trust


def test_regression_degenerate_single_size_returns_none():
    # all samples at one footprint size: no slope is anchorable even
    # when min_size_ratio allows a ratio of 1.0.  Before the explicit
    # spread check, float rounding in the log-space mean produced a
    # ~1e-31 sxx and a garbage power-law fit whose extrapolations were
    # absurd (predict(1e9) ~ 1e13 seconds).
    model = RegressionModel(min_samples=4, min_size_ratio=1.0)
    for i in range(5):
        model.record("v", 7.0, 10.0 ** (-4 + 2 * i))
    assert model.predict("v", 7.0) is None
    assert model.predict("v", 1e9) is None
    # a genuine spread at the same ratio threshold still fits
    spread = RegressionModel(min_samples=4, min_size_ratio=1.0)
    for size in (1e3, 1e4, 1e5, 1e6):
        spread.record("v", size, 2e-9 * size)
    assert spread.predict("v", 1e7) == pytest.approx(2e-2, rel=1e-6)


def test_regression_ignores_nonpositive_samples():
    model = RegressionModel(min_samples=1)
    model.record("v", 0.0, 1.0)
    model.record("v", 10.0, 0.0)
    assert model.n_samples("v") == 0


def test_perfmodel_prefers_history_over_regression():
    model = PerfModel(history_min_samples=1)
    fp = ("c", (12,))
    for size in (1e3, 1e4, 1e5, 1e6):
        model.record(("c", (999,)), "v", size, 1e-9 * size)
    model.record(fp, "v", 5e4, 42.0)  # exact-bucket history says 42
    assert model.predict(fp, "v", 5e4) == pytest.approx(42.0)


def test_perfmodel_falls_back_to_regression():
    model = PerfModel()
    for size in (1e3, 1e4, 1e5, 1e6):
        model.record(("c", (int(size),)), "v", size, 1e-9 * size)
    unseen = ("c", (777,))
    est = model.predict(unseen, "v", 1e7)
    assert est == pytest.approx(1e-2, rel=0.05)


def test_perfmodel_unknown_returns_none():
    assert PerfModel().predict(("c", (1,)), "v", 100.0) is None


def test_persistence_roundtrip(tmp_path):
    model = PerfModel()
    fp = ("c", (10, 12))
    model.record(fp, "v", 1e4, 3.0)
    model.record(fp, "v", 1e4, 5.0)
    path = tmp_path / "perf.json"
    model.save(path)
    loaded = PerfModel.load(path)
    assert loaded.predict(fp, "v", 1e4) == pytest.approx(4.0)
    assert loaded.n_samples(fp, "v") == 2


def test_atomic_save_leaves_no_temp_files(tmp_path):
    model = PerfModel()
    model.record(("c", (10,)), "v", 1e4, 3.0)
    path = tmp_path / "perf.json"
    model.save(path)
    model.save(path)  # overwrite an existing file, same guarantees
    assert [p.name for p in tmp_path.iterdir()] == ["perf.json"]


def test_interrupted_save_keeps_old_file(tmp_path, monkeypatch):
    import repro.runtime.perfmodel as pm

    model = PerfModel()
    model.record(("c", (10,)), "v", 1e4, 3.0)
    path = tmp_path / "perf.json"
    model.save(path)
    before = path.read_text()

    def broken_replace(src, dst):
        raise OSError("disk full")

    model.record(("c", (10,)), "v", 1e4, 9.0)
    monkeypatch.setattr(pm.os, "replace", broken_replace)
    with pytest.raises(OSError):
        model.save(path)
    # the old model survives untouched and no temp file is left behind
    assert path.read_text() == before
    assert [p.name for p in tmp_path.iterdir()] == ["perf.json"]


def test_calibrated_by_history_or_regression():
    model = PerfModel()
    fp = ("c", (10,))
    assert not model.calibrated(fp, "v", 1e4)
    model.record(fp, "v", 1e4, 3.0)
    assert model.calibrated(fp, "v", 1e4)  # exact history
    assert not model.calibrated(fp, "v", 1e4, min_history=2)
    # a regression fit covers sizes (and footprints) never observed
    for size in (1e3, 1e4, 1e5, 1e6):
        model.record(("c", (int(size),)), "w", size, 1e-9 * size)
    assert model.calibrated(("c", (777,)), "w", 5e7, min_history=3)


def test_variant_codelet_mapping_from_footprints():
    model = PerfModel()
    model.record(("axpy", (8,)), "axpy_cpu", 1e3, 1.0)
    model.record(((1, 2),), "orphan", 1e3, 1.0)  # footprint names nothing
    assert model.codelet_of("axpy_cpu") == "axpy"
    assert model.codelet_of("orphan") == ""
    assert model.codelets() == {"axpy"}
    assert model.unmapped_variants() == {"orphan"}


def test_from_dict_roundtrips_to_dict():
    model = PerfModel()
    model.record(("c", (10,)), "v", 1e4, 3.0)
    model.record(("c", (10,)), "v", 1e4, 5.0)
    clone = PerfModel.from_dict(model.to_dict())
    assert clone.to_dict() == model.to_dict()
    assert clone.predict(("c", (10,)), "v", 1e4) == pytest.approx(4.0)


def test_merge_from_larger_sample_set_wins():
    a, b = PerfModel(), PerfModel()
    fp = ("c", (10,))
    for t in (1.0, 2.0):
        a.record(fp, "v", 1e4, t)
    for t in (10.0, 20.0, 30.0):  # superset: more samples win
        b.record(fp, "v", 1e4, t)
    b.record(("c", (20,)), "w", 2e4, 7.0)  # only b knows this key
    a.merge_from(b)
    assert a.predict(fp, "v", 1e4) == pytest.approx(20.0)
    assert a.n_samples(fp, "v") == 3
    assert a.predict(("c", (20,)), "w", 2e4) == pytest.approx(7.0)
    # the other direction: a's smaller set does not clobber b's
    b2 = PerfModel.from_dict(b.to_dict())
    small = PerfModel()
    small.record(fp, "v", 1e4, 99.0)
    b2.merge_from(small)
    assert b2.n_samples(fp, "v") == 3


def test_subset_for_codelets_splits_and_keeps_unmapped():
    model = PerfModel()
    model.record(("axpy", (8,)), "axpy_cpu", 1e3, 1.0)
    model.record(("gemm", (8,)), "gemm_cpu", 1e3, 2.0)
    model.record(((1,),), "orphan", 1e3, 3.0)
    only_axpy = model.subset_for_codelets({"axpy"})
    assert only_axpy.codelets() == {"axpy"}
    assert only_axpy.predict(("gemm", (8,)), "gemm_cpu", 1e3) is None
    with_orphans = model.subset_for_codelets({"axpy", ""})
    assert with_orphans.predict(((1,),), "orphan", 1e3) == pytest.approx(3.0)


def test_regression_predict_from_is_out_of_sample():
    model = RegressionModel(min_samples=4)
    samples = [(s, 2e-9 * s**1.5) for s in (1e3, 1e4, 1e5, 1e6)]
    est = model.predict_from(samples, 1e7)
    assert est == pytest.approx(2e-9 * 1e7**1.5, rel=1e-6)
    assert model.predict_from(samples[:3], 1e7) is None  # under min_samples
    assert model.n_samples("v") == 0  # recorded state untouched
