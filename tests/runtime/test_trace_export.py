"""Trace export: Chrome trace-event JSON and text Gantt."""

import json

import numpy as np

from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.trace_export import gantt_text, save_chrome_trace, to_chrome_trace


def _traced_run():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    cpu_cl = Codelet(
        "c", [ImplVariant("work_cpu", Arch.CPU, lambda ctx, *a: None, lambda c, d: 1e-3)]
    )
    gpu_cl = Codelet(
        "g", [ImplVariant("work_cuda", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-3)]
    )
    h1 = rt.register(np.zeros(1000, dtype=np.float32), "h1")
    h2 = rt.register(np.zeros(1000, dtype=np.float32), "h2")
    rt.submit(cpu_cl, [(h1, "rw")])
    rt.submit(gpu_cl, [(h2, "r")])  # forces one h2d transfer
    rt.wait_for_all()
    return rt


def test_chrome_trace_structure():
    rt = _traced_run()
    doc = to_chrome_trace(rt.trace, rt.machine)
    events = doc["traceEvents"]
    names = {e["args"].get("name") for e in events if e["ph"] == "M"}
    assert any("Tesla C2050" in (n or "") for n in names)
    assert any("DMA" in (n or "") for n in names)
    task_events = [e for e in events if e["ph"] == "X" and "task" in e.get("cat", "")]
    assert {e["name"] for e in task_events} == {"work_cpu", "work_cuda"}
    transfer_events = [e for e in events if e.get("cat") == "transfer"]
    assert len(transfer_events) == 1
    assert transfer_events[0]["name"].startswith("h2d:")
    rt.shutdown()


def test_chrome_trace_json_roundtrips(tmp_path):
    rt = _traced_run()
    path = save_chrome_trace(rt.trace, rt.machine, tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"
    assert len(loaded["traceEvents"]) >= 4
    rt.shutdown()


def test_chrome_trace_records_evictions(tmp_path):
    from dataclasses import replace

    from repro.hw.devices import tesla_c2050, xeon_e5520_core
    from repro.hw.machine import make_machine

    gpu = replace(tesla_c2050(), memory_bytes=8 * 1024 * 1024)
    machine = make_machine("tiny", cpu=xeon_e5520_core(), n_cpu_cores=4, gpus=[gpu])
    rt = Runtime(machine, scheduler="eager", seed=0, noise_sigma=0.0)
    cl = Codelet(
        "k", [ImplVariant("k", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-4)]
    )
    a = rt.register(np.zeros(5 * 1024 * 256, dtype=np.float32), "a")  # 5 MB
    b = rt.register(np.zeros(5 * 1024 * 256, dtype=np.float32), "b")
    rt.submit(cl, [(a, "r")], sync=True)
    rt.submit(cl, [(b, "r")], sync=True)
    doc = to_chrome_trace(rt.trace, rt.machine)
    assert any(e.get("cat") == "eviction" for e in doc["traceEvents"])
    rt.shutdown()


def test_gantt_text_shape():
    rt = _traced_run()
    text = gantt_text(rt.trace, rt.machine, width=40)
    lines = text.splitlines()
    # one row per unit plus header, DMA row and legend
    assert len(lines) == 1 + len(rt.machine.units) + 1 + 1
    assert "@" in text  # cuda work visible
    assert "#" in text  # cpu work visible
    assert "^" in text  # the upload visible
    rt.shutdown()


def test_gantt_empty_trace():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0)
    assert gantt_text(rt.trace, rt.machine) == "(empty trace)"
    rt.shutdown()
