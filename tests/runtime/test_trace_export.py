"""Trace export: Chrome trace-event JSON and text Gantt."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.hw.description import HOST_NODE
from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.stats import (
    ExecutionTrace,
    RequestRecord,
    TaskRecord,
    TransferRecord,
)
from repro.runtime.trace_export import (
    _counter_events,
    _request_events,
    _SERVE_PID,
    canonical_chrome_json,
    gantt_text,
    save_chrome_trace,
    to_chrome_trace,
)


def _traced_run():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    cpu_cl = Codelet(
        "c", [ImplVariant("work_cpu", Arch.CPU, lambda ctx, *a: None, lambda c, d: 1e-3)]
    )
    gpu_cl = Codelet(
        "g", [ImplVariant("work_cuda", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-3)]
    )
    h1 = rt.register(np.zeros(1000, dtype=np.float32), "h1")
    h2 = rt.register(np.zeros(1000, dtype=np.float32), "h2")
    rt.submit(cpu_cl, [(h1, "rw")])
    rt.submit(gpu_cl, [(h2, "r")])  # forces one h2d transfer
    rt.wait_for_all()
    return rt


def test_chrome_trace_structure():
    rt = _traced_run()
    doc = to_chrome_trace(rt.trace, rt.machine)
    events = doc["traceEvents"]
    names = {e["args"].get("name") for e in events if e["ph"] == "M"}
    assert any("Tesla C2050" in (n or "") for n in names)
    assert any("DMA" in (n or "") for n in names)
    task_events = [e for e in events if e["ph"] == "X" and "task" in e.get("cat", "")]
    assert {e["name"] for e in task_events} == {"work_cpu", "work_cuda"}
    transfer_events = [e for e in events if e.get("cat") == "transfer"]
    assert len(transfer_events) == 1
    assert transfer_events[0]["name"].startswith("h2d:")
    rt.shutdown()


def test_chrome_trace_json_roundtrips(tmp_path):
    rt = _traced_run()
    path = save_chrome_trace(rt.trace, rt.machine, tmp_path / "trace.json")
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"
    assert len(loaded["traceEvents"]) >= 4
    rt.shutdown()


def test_chrome_trace_records_evictions(tmp_path):
    from dataclasses import replace

    from repro.hw.devices import tesla_c2050, xeon_e5520_core
    from repro.hw.description import make_machine

    gpu = replace(tesla_c2050(), memory_bytes=8 * 1024 * 1024)
    machine = make_machine("tiny", cpu=xeon_e5520_core(), n_cpu_cores=4, gpus=[gpu])
    rt = Runtime(machine, scheduler="eager", seed=0, noise_sigma=0.0)
    cl = Codelet(
        "k", [ImplVariant("k", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-4)]
    )
    a = rt.register(np.zeros(5 * 1024 * 256, dtype=np.float32), "a")  # 5 MB
    b = rt.register(np.zeros(5 * 1024 * 256, dtype=np.float32), "b")
    rt.submit(cl, [(a, "r")], sync=True)
    rt.submit(cl, [(b, "r")], sync=True)
    doc = to_chrome_trace(rt.trace, rt.machine)
    assert any(e.get("cat") == "eviction" for e in doc["traceEvents"])
    rt.shutdown()


def test_gantt_text_shape():
    rt = _traced_run()
    text = gantt_text(rt.trace, rt.machine, width=40)
    lines = text.splitlines()
    # one row per unit plus header, DMA row and legend
    assert len(lines) == 1 + len(rt.machine.units) + 1 + 1
    assert "@" in text  # cuda work visible
    assert "#" in text  # cpu work visible
    assert "^" in text  # the upload visible
    rt.shutdown()


def test_gantt_empty_trace():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0)
    assert gantt_text(rt.trace, rt.machine) == "(empty trace)"
    rt.shutdown()


# -- counter tracks -----------------------------------------------------------


def test_counter_tracks_balance_to_zero():
    rt = _traced_run()
    counters = _counter_events(rt.trace, rt.machine)
    assert counters and all(e["ph"] == "C" for e in counters)
    ts = [e["ts"] for e in counters]
    assert ts == sorted(ts)
    queue = [e for e in counters if e["name"] == "queue depth"]
    busy = [e for e in counters if e["name"] == "workers busy"]
    # the run drained: the last sample of every aggregate track is zero
    assert queue[-1]["args"] == {"pending": 0, "running": 0}
    assert busy[-1]["args"] == {"busy": 0}
    # and while tasks ran, something was pending/busy at some point
    assert max(e["args"]["running"] for e in queue) >= 1
    assert max(e["args"]["busy"] for e in busy) >= 1
    # every sample is a legal occupancy count
    for e in queue:
        assert e["args"]["pending"] >= 0 and e["args"]["running"] >= 0
    rt.shutdown()


def test_counter_per_worker_util_tracks():
    rt = _traced_run()
    counters = _counter_events(rt.trace, rt.machine)
    used = {w for rec in rt.trace.tasks for w in rec.worker_ids}
    util = {}
    for e in counters:
        if e["name"].startswith("util u"):
            util.setdefault(e["tid"], []).append(e["args"]["busy"])
    assert set(util) == used
    for samples in util.values():
        assert set(samples) <= {0, 1}  # one task at a time per worker
        assert samples[-1] == 0  # drained
    rt.shutdown()


def test_counters_ride_along_in_chrome_trace():
    rt = _traced_run()
    doc = to_chrome_trace(rt.trace, rt.machine)
    assert any(e.get("cat") == "counter" for e in doc["traceEvents"])
    rt.shutdown()


# -- serving request rows -----------------------------------------------------


def _serving_trace():
    trace = ExecutionTrace()
    trace.requests.extend(
        [
            RequestRecord.make(
                tenant="alpha", req_id=0, codelet="sgemm", arrival_time=0.0,
                dispatch_time=0.01, start_time=0.02, end_time=0.05,
                batch_size=2, task_id=1,
            ),
            RequestRecord.make(
                tenant="beta", req_id=1, codelet="spmv", arrival_time=0.01,
                shed=True,
            ),
            RequestRecord.make(
                tenant="alpha", req_id=2, codelet="sgemm", arrival_time=0.02,
                failed=True,
            ),
        ]
    )
    return trace


def test_request_events_per_tenant_rows():
    events = _request_events(_serving_trace())
    assert all(e["pid"] == _SERVE_PID for e in events)
    thread_names = {
        e["args"]["name"] for e in events if e["name"] == "thread_name"
    }
    assert thread_names == {"tenant alpha", "tenant beta"}
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 1 and spans[0]["name"] == "sgemm"
    args = spans[0]["args"]
    assert args["batch"] == 2
    assert args["queue_wait_ms"] == pytest.approx(10.0)  # arrival -> dispatch
    assert args["exec_ms"] == pytest.approx(30.0)
    instants = {e["name"] for e in events if e["ph"] == "i"}
    assert instants == {"shed:spmv", "failed:sgemm"}


def test_request_rows_ride_along_in_chrome_trace():
    trace = _serving_trace()
    doc = to_chrome_trace(trace, platform_c2050())
    assert any(e.get("cat") == "request" for e in doc["traceEvents"])


# -- golden file --------------------------------------------------------------

_GOLDEN = Path(__file__).parent.parent / "data" / "golden_gantt.txt"


def _golden_trace():
    """A small hand-built trace: stable across runs by construction."""
    machine = platform_c2050()
    gpu = machine.gpu_units[0]
    trace = ExecutionTrace()
    trace.tasks.append(
        TaskRecord.make(
            task_id=0, name="prep#0", codelet="prep", variant="prep_cpu",
            arch="cpu", worker_ids=(0,), submit_time=0.0, ready_time=0.0,
            start_time=0.0, end_time=0.004, node=HOST_NODE, submit_seq=0,
            seq=0,
        )
    )
    trace.transfers.append(
        TransferRecord.make(
            handle_id=0, handle_name="data0", src_node=HOST_NODE,
            dst_node=gpu.memory_node, nbytes=4096, start_time=0.004,
            end_time=0.006, seq=1,
        )
    )
    trace.tasks.append(
        TaskRecord.make(
            task_id=1, name="kernel#1", codelet="kernel",
            variant="kernel_cuda", arch="cuda", worker_ids=(gpu.unit_id,),
            submit_time=0.0, ready_time=0.004, start_time=0.006,
            end_time=0.010, node=gpu.memory_node, submit_seq=1, seq=2,
            reads=(0,), deps=(0,),
        )
    )
    trace.n_submitted = 2
    trace.next_seq = 3
    return trace, machine


def test_golden_gantt_is_stable():
    trace, machine = _golden_trace()
    assert gantt_text(trace, machine, width=48) == _GOLDEN.read_text()


def test_golden_trace_canonical_json_is_stable():
    # the canonical Chrome JSON of the same trace is byte-stable too
    trace, machine = _golden_trace()
    a = canonical_chrome_json(trace, machine)
    b = canonical_chrome_json(trace, machine)
    assert a == b
    doc = json.loads(a)
    assert {e.get("cat") for e in doc["traceEvents"]} >= {
        "task,cpu", "task,cuda", "transfer",
    }
