"""Multi-GPU execution and persistent calibration files."""

import numpy as np
import pytest

from repro.apps import spmv
from repro.composer.glue import lower_component
from repro.hw.description import HOST_NODE
from repro.hw.presets import platform_dual_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.workloads.sparse import make_matrix


def test_dual_gpu_machine_layout():
    m = platform_dual_c2050()
    assert len(m.gpu_units) == 2
    assert m.n_memory_nodes == 3
    assert len(m.cpu_units) == 4  # 6 cores - 2 driver cores


def test_independent_tasks_use_both_gpus():
    rt = Runtime(platform_dual_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    cl = Codelet(
        "k", [ImplVariant("k", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-2)]
    )
    handles = [rt.register(np.zeros(100, dtype=np.float32)) for _ in range(4)]
    tasks = [rt.submit(cl, [(h, "rw")]) for h in handles]
    rt.wait_for_all()
    gpu_nodes = {t.workers[0].memory_node for t in tasks}
    assert gpu_nodes == {1, 2}  # spread across both devices
    # the two GPUs genuinely overlap
    assert tasks[1].start_time < tasks[0].end_time
    rt.shutdown()


def test_gpu_to_gpu_transfer_stages_through_host():
    rt = Runtime(platform_dual_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)

    def fill(ctx, arr):
        arr[:] = 3.0

    def check(ctx, arr):
        assert (arr == 3.0).all()

    cl_fill = Codelet("f", [ImplVariant("f", Arch.CUDA, fill, lambda c, d: 1e-3)])
    h = rt.register(np.zeros(1000, dtype=np.float32))
    t1 = rt.submit(cl_fill, [(h, "w")])  # lands on one GPU
    # force the second task onto the *other* GPU: occupy the first
    blocker = rt.register(np.zeros(10, dtype=np.float32))
    cl_busy = Codelet(
        "b", [ImplVariant("b", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 5e-2)]
    )
    rt.submit(cl_busy, [(blocker, "rw")])
    cl_check = Codelet("c", [ImplVariant("c", Arch.CUDA, check, lambda c, d: 1e-3)])
    t2 = rt.submit(cl_check, [(h, "r")])
    rt.wait_for_all()
    if t2.workers[0].memory_node != t1.workers[0].memory_node:
        # data moved GPU -> host -> GPU: two transfer legs, one through host
        legs = rt.trace.transfers_for_handle(h.handle_id)
        assert any(x.dst_node == HOST_NODE for x in legs)
        assert any(x.src_node == HOST_NODE for x in legs)
    rt.shutdown()


def test_hybrid_spmv_scales_with_second_gpu():
    """Adding a GPU to the hybrid Figure-5 setup reduces the makespan."""
    from repro.hw.presets import platform_c2050

    mat = make_matrix("Simulation", scale=0.1)

    def run(machine):
        rt = Runtime(machine, scheduler="dmda", seed=0)
        cl = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS).without(
            ["spmv_openmp"]
        )
        hv = rt.register(mat.values)
        hc = rt.register(mat.colidxs)
        hp = rt.register(mat.rowptr)
        hx = rt.register(np.ones(mat.ncols, dtype=np.float32))
        hy = rt.register(np.zeros(mat.nrows, dtype=np.float32))
        spmv.submit_partitioned(rt, cl, hv, hc, hp, hx, hy, mat.rowptr, mat.ncols, 24)
        rt.unpartition(hy)
        return rt.shutdown()

    t_one = run(platform_c2050(n_cpu_cores=5))
    t_two = run(platform_dual_c2050(n_cpu_cores=6))
    assert t_two < t_one


# -- persistent calibration -----------------------------------------------------

def test_perfmodel_persists_across_sessions(tmp_path):
    path = tmp_path / "perf.json"
    cl_spec = lambda: Codelet(
        "axpy",
        [
            ImplVariant("a_cpu", Arch.CPU, lambda ctx, *a: None, lambda c, d: 5e-3),
            ImplVariant("a_cuda", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-3),
        ],
    )

    def session(n_tasks):
        rt = Runtime(
            platform_dual_c2050(), scheduler="dmda", seed=1,
            perfmodel_path=str(path),
        )
        cl = cl_spec()
        h = rt.register(np.zeros(1000, dtype=np.float32))
        for _ in range(n_tasks):
            rt.submit(cl, [(h, "rw")])
        rt.wait_for_all()
        archs = [rec.arch for rec in rt.trace.tasks]
        rt.shutdown()
        return archs

    first = session(10)
    assert "cpu" in first  # cold model: calibration explored the CPU
    assert path.exists()
    second = session(10)
    # warm model loaded from disk: no exploration, straight to the GPU
    assert all(a == "cuda" for a in second)


def test_perfmodel_path_and_object_are_exclusive(tmp_path):
    from repro.errors import RuntimeSystemError
    from repro.runtime.perfmodel import PerfModel

    with pytest.raises(RuntimeSystemError):
        Runtime(
            platform_dual_c2050(),
            perfmodel=PerfModel(),
            perfmodel_path=str(tmp_path / "p.json"),
        )
