"""Unit tests for the lookahead window planner and engine bulk mode.

The integration/property suites prove end-to-end behavior; these pin the
scheduler's contract surface: constructor validation, registry wiring,
window flush triggers (full window, ``wait_for_all``, smart-container
access), calibration fallback, :class:`WindowPlan` introspection, the
plan-vs-greedy guarantee, and fusion accounting.
"""

import numpy as np
import pytest

from repro.composer.lookahead import LookaheadScheduler, WindowPlan
from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.schedulers import make_scheduler, policy_names

N = 4096


def _codelet(name="la", cpu=1e-4, gpu=3e-5):
    return Codelet(
        name,
        [
            ImplVariant(
                f"{name}_cpu", Arch.CPU, lambda ctx, *a: None,
                lambda ctx, dev: cpu,
            ),
            ImplVariant(
                f"{name}_cuda", Arch.CUDA, lambda ctx, *a: None,
                lambda ctx, dev: gpu,
            ),
        ],
    )


def _runtime(**opts):
    return Runtime(
        platform_c2050(),
        scheduler="lookahead",
        scheduler_options=opts,
        seed=0,
        noise_sigma=0.0,
        run_kernels=False,
        check=False,
    )


def _calibrate(rt, codelet, n=6):
    """Warm the performance model: these windows fall back to dmda,
    whose exploration samples every variant until it can be priced."""
    h = rt.register(np.zeros(N, dtype=np.float32), "warm")
    for i in range(n):
        rt.submit(codelet, [(h, "rw")], name=f"warm{i}")
    rt.wait_for_all()


# -- construction and registry ------------------------------------------------


def test_factory_resolves_lookahead():
    sched = make_scheduler("lookahead", window_size=4, beam_width=2)
    assert isinstance(sched, LookaheadScheduler)
    assert sched.is_bulk
    assert sched.window_size == 4
    assert sched.beam_width == 2
    assert "lookahead" in policy_names()


@pytest.mark.parametrize("bad", [0, -1])
def test_rejects_bad_window_size(bad):
    with pytest.raises(ValueError):
        LookaheadScheduler(window_size=bad)


@pytest.mark.parametrize("bad", [0, -3])
def test_rejects_bad_beam_width(bad):
    with pytest.raises(ValueError):
        LookaheadScheduler(beam_width=bad)


def test_beam_width_one_is_legal():
    # degenerates to a greedy pass under the planner's cost model
    rt = _runtime(window_size=4, beam_width=1)
    cl = _codelet()
    _calibrate(rt, cl)
    h = rt.register(np.zeros(N, dtype=np.float32), "h")
    for i in range(4):
        rt.submit(cl, [(h, "rw")], name=f"t{i}")
    rt.wait_for_all()
    sched = rt.scheduler
    assert sched.n_planned_windows >= 1
    rt.shutdown()


# -- flush triggers -----------------------------------------------------------


def test_full_window_flushes_at_submit_time():
    rt = _runtime(window_size=3)
    cl = _codelet()
    h = rt.register(np.zeros(N, dtype=np.float32), "h")
    assert rt.scheduler.n_windows == 0
    rt.submit(cl, [(h, "r")], name="a")
    rt.submit(cl, [(h, "r")], name="b")
    assert rt.scheduler.n_windows == 0  # still buffering
    rt.submit(cl, [(h, "r")], name="c")
    assert rt.scheduler.n_windows == 1  # window full -> planned now
    rt.wait_for_all()
    rt.shutdown()


def test_wait_for_all_flushes_partial_window():
    rt = _runtime(window_size=16)
    cl = _codelet()
    h = rt.register(np.zeros(N, dtype=np.float32), "h")
    for i in range(5):
        rt.submit(cl, [(h, "r")], name=f"t{i}")
    assert rt.scheduler.n_windows == 0
    rt.wait_for_all()
    sched = rt.scheduler
    assert sched.n_windows == 1
    assert sched.plans[0].n_tasks == 5
    rt.shutdown()


def test_container_access_flushes_partial_window():
    # reading a smart container is a sync point: the pending window must
    # commit (and its writes land) before the host sees the data
    rt = _runtime(window_size=16)
    cl = _codelet()
    h = rt.register(np.zeros(N, dtype=np.float32), "h")
    for i in range(3):
        rt.submit(cl, [(h, "rw")], name=f"t{i}")
    assert rt.scheduler.n_windows == 0
    rt.acquire(h, "r")
    assert rt.scheduler.n_windows == 1
    rt.wait_for_all()
    rt.shutdown()


# -- calibration fallback -----------------------------------------------------


def test_uncalibrated_window_falls_back_to_dmda():
    rt = _runtime(window_size=4)
    cl = _codelet()
    h = rt.register(np.zeros(N, dtype=np.float32), "h")
    for i in range(4):
        rt.submit(cl, [(h, "rw")], name=f"t{i}")
    rt.wait_for_all()
    sched = rt.scheduler
    first = sched.plans[0]
    assert first.fallback
    assert first.planned_makespan is None
    assert first.greedy_makespan is None
    assert first.decisions == ()
    assert sched.n_fallback_windows >= 1
    assert sched.n_fallback_tasks >= 4
    rt.shutdown()


def test_history_less_codelet_never_plans():
    # performance_aware=False (the per-component useHistoryModels flag)
    # opts the codelet out of model-based placement: every window falls
    # back, no matter how much history accumulates
    blind = Codelet(
        "blind",
        [
            ImplVariant(
                "blind_cpu", Arch.CPU, lambda ctx, *a: None,
                lambda ctx, dev: 1e-4,
            ),
            ImplVariant(
                "blind_cuda", Arch.CUDA, lambda ctx, *a: None,
                lambda ctx, dev: 3e-5,
            ),
        ],
        performance_aware=False,
    )
    assert not blind.performance_aware
    rt = _runtime(window_size=4)
    h = rt.register(np.zeros(N, dtype=np.float32), "h")
    for i in range(20):
        rt.submit(blind, [(h, "rw")], name=f"t{i}")
    rt.wait_for_all()
    sched = rt.scheduler
    assert sched.n_windows == sched.n_fallback_windows > 0
    assert sched.n_planned_windows == 0
    rt.shutdown()


# -- planned windows ----------------------------------------------------------


def test_window_plan_records_committed_decisions():
    rt = _runtime(window_size=8)
    cl = _codelet()
    _calibrate(rt, cl)
    h = rt.register(np.zeros(N, dtype=np.float32), "h")
    for i in range(5):
        rt.submit(cl, [(h, "rw")], name=f"t{i}")
    rt.wait_for_all()
    sched = rt.scheduler
    plan = sched.plans[-1]
    assert isinstance(plan, WindowPlan)
    assert not plan.fallback
    assert plan.n_tasks == 5
    assert len(plan.decisions) == 5
    assert plan.planned_makespan <= plan.greedy_makespan + 1e-12
    # the committed trace executed exactly the planned placements
    by_name = {rec.name: rec for rec in rt.trace.tasks}
    for name, variant, workers in plan.decisions:
        rec = by_name[name]
        assert rec.variant == variant
        assert rec.worker_ids == workers
    rt.shutdown()


def test_task_counters_are_exhaustive():
    rt = _runtime(window_size=4)
    cl = _codelet()
    _calibrate(rt, cl)
    h = rt.register(np.zeros(N, dtype=np.float32), "h")
    for i in range(10):
        rt.submit(cl, [(h, "rw" if i % 2 else "r")], name=f"t{i}")
    rt.wait_for_all()
    sched = rt.scheduler
    total = sched.n_planned_tasks + sched.n_fallback_tasks
    assert total == rt.trace.n_tasks
    assert sum(p.n_tasks for p in sched.plans) == total
    rt.shutdown()


# -- fusion accounting --------------------------------------------------------


def _chain_run(fusion):
    rt = _runtime(window_size=8, fusion=fusion)
    cl = _codelet(gpu=1e-6, cpu=1e-4)  # device clearly cheapest
    _calibrate(rt, cl)
    h = rt.register(np.zeros(N, dtype=np.float32), "chain")
    for i in range(8):
        rt.submit(cl, [(h, "rw")], name=f"link{i}")
    rt.wait_for_all()
    sched = rt.scheduler
    fused = sched.n_fused_edges
    rt.shutdown()
    return fused


def test_fusion_elides_chain_round_trips():
    assert _chain_run(fusion=True) > 0


def test_fusion_off_never_records_fused_edges():
    assert _chain_run(fusion=False) == 0
