"""Backend-architecture mapping."""

import pytest

from repro.hw.presets import platform_c2050
from repro.runtime.archs import Arch


@pytest.mark.parametrize(
    "text,expected",
    [
        ("cpu", Arch.CPU),
        ("C++", Arch.CPU),
        ("serial", Arch.CPU),
        ("openmp", Arch.OPENMP),
        ("CPU/OpenMP", Arch.OPENMP),
        ("cuda", Arch.CUDA),
        ("gpu", Arch.CUDA),
        ("opencl", Arch.OPENCL),
    ],
)
def test_parse(text, expected):
    assert Arch.parse(text) is expected


def test_parse_unknown():
    with pytest.raises(ValueError):
        Arch.parse("fpga")


def test_runs_on_mapping():
    m = platform_c2050()
    cpu_unit = m.cpu_units[0]
    gpu_unit = m.gpu_units[0]
    assert Arch.CPU.runs_on(cpu_unit) and not Arch.CPU.runs_on(gpu_unit)
    assert Arch.OPENMP.runs_on(cpu_unit) and not Arch.OPENMP.runs_on(gpu_unit)
    assert Arch.CUDA.runs_on(gpu_unit) and not Arch.CUDA.runs_on(cpu_unit)
    assert Arch.OPENCL.runs_on(gpu_unit) and not Arch.OPENCL.runs_on(cpu_unit)


def test_only_openmp_is_gang():
    assert Arch.OPENMP.is_gang
    assert not any(a.is_gang for a in (Arch.CPU, Arch.CUDA, Arch.OPENCL))
