"""Resource requirements gate variant selectability (paper section II)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.apps import sgemm
from repro.components import ImplementationDescriptor, ResourceRequirement
from repro.composer.glue import lower_component
from repro.errors import SchedulingError
from repro.hw.devices import tesla_c2050, xeon_e5520_core
from repro.hw.description import make_machine
from repro.hw.presets import cpu_only
from repro.runtime import Runtime


def _machine_with_gpu_memory(memory_mb):
    gpu = replace(tesla_c2050(), memory_bytes=memory_mb * 1024 * 1024)
    return make_machine("m", cpu=xeon_e5520_core(), n_cpu_cores=4, gpus=[gpu])


def _impls_with_gpu_requirement(min_gpu_mb):
    out = []
    for impl in sgemm.IMPLEMENTATIONS:
        if impl.platform == "cuda":
            impl = replace(
                impl,
                resources=(ResourceRequirement("gpu_memory_mb", min_gpu_mb),),
            )
        out.append(impl)
    return out


def test_gpu_memory_requirement_lowered():
    cl = lower_component(sgemm.INTERFACE, _impls_with_gpu_requirement(512))
    cuda = next(v for v in cl.variants if v.name == "sgemm_cublas")
    assert cuda.min_device_memory_bytes == 512 * 1024 * 1024
    assert cuda.fits_device(tesla_c2050())  # 3 GB >= 512 MB
    small = replace(tesla_c2050(), memory_bytes=256 * 1024 * 1024)
    assert not cuda.fits_device(small)


def test_undersized_gpu_excluded_from_candidates():
    rt = Runtime(
        _machine_with_gpu_memory(256), scheduler="eager", seed=0, noise_sigma=0.0
    )
    cl = lower_component(sgemm.INTERFACE, _impls_with_gpu_requirement(512))
    a = rt.register(np.zeros((32, 32), dtype=np.float32))
    b = rt.register(np.zeros((32, 32), dtype=np.float32))
    c = rt.register(np.zeros((32, 32), dtype=np.float32))
    task = rt.submit(
        cl,
        [(a, "r"), (b, "r"), (c, "rw")],
        ctx={"m": 32, "n": 32, "k": 32},
        scalar_args=(32, 32, 32, 1.0, 0.0),
        sync=True,
    )
    assert task.chosen_variant.arch.value != "cuda"
    rt.shutdown()


def test_big_enough_gpu_still_eligible():
    rt = Runtime(
        _machine_with_gpu_memory(2048), scheduler="eager", seed=0, noise_sigma=0.0
    )
    cl = lower_component(
        sgemm.INTERFACE, _impls_with_gpu_requirement(512)
    ).restricted(["sgemm_cublas"])
    a = rt.register(np.zeros((32, 32), dtype=np.float32))
    b = rt.register(np.zeros((32, 32), dtype=np.float32))
    c = rt.register(np.zeros((32, 32), dtype=np.float32))
    task = rt.submit(
        cl,
        [(a, "r"), (b, "r"), (c, "rw")],
        ctx={"m": 32, "n": 32, "k": 32},
        scalar_args=(32, 32, 32, 1.0, 0.0),
        sync=True,
    )
    assert task.chosen_variant.name == "sgemm_cublas"
    rt.shutdown()


def test_cores_requirement_blocks_small_gangs():
    impls = []
    for impl in sgemm.IMPLEMENTATIONS:
        if impl.platform == "openmp":
            impl = replace(
                impl, resources=(ResourceRequirement("cores", 8),)
            )
        impls.append(impl)
    cl = lower_component(sgemm.INTERFACE, impls).restricted(["sgemm_openmp"])
    rt = Runtime(cpu_only(4), scheduler="eager", seed=0, noise_sigma=0.0)
    a = rt.register(np.zeros((8, 8), dtype=np.float32))
    b = rt.register(np.zeros((8, 8), dtype=np.float32))
    c = rt.register(np.zeros((8, 8), dtype=np.float32))
    with pytest.raises(SchedulingError):
        rt.submit(
            cl,
            [(a, "r"), (b, "r"), (c, "rw")],
            ctx={"m": 8, "n": 8, "k": 8},
            scalar_args=(8, 8, 8, 1.0, 0.0),
        )
    rt.shutdown()


def test_cores_requirement_met_by_large_gang():
    impls = []
    for impl in sgemm.IMPLEMENTATIONS:
        if impl.platform == "openmp":
            impl = replace(impl, resources=(ResourceRequirement("cores", 4),))
        impls.append(impl)
    cl = lower_component(sgemm.INTERFACE, impls).restricted(["sgemm_openmp"])
    rt = Runtime(cpu_only(4), scheduler="eager", seed=0, noise_sigma=0.0)
    a = rt.register(np.zeros((8, 8), dtype=np.float32))
    b = rt.register(np.zeros((8, 8), dtype=np.float32))
    c = rt.register(np.zeros((8, 8), dtype=np.float32))
    task = rt.submit(
        cl,
        [(a, "r"), (b, "r"), (c, "rw")],
        ctx={"m": 8, "n": 8, "k": 8},
        scalar_args=(8, 8, 8, 1.0, 0.0),
        sync=True,
    )
    assert len(task.workers) == 4
    rt.shutdown()
