"""Execution-trace aggregation."""

import pytest

from repro.runtime.stats import ExecutionTrace, TaskRecord, TransferRecord


def _task(tid=0, worker=(0,), start=0.0, end=1.0, arch="cpu", variant="v"):
    return TaskRecord.make(
        task_id=tid, name=f"t{tid}", codelet="c", variant=variant, arch=arch,
        worker_ids=worker, submit_time=0.0, ready_time=0.0,
        start_time=start, end_time=end,
    )


def _transfer(src=0, dst=1, nbytes=100, start=0.0, end=0.5, hid=0):
    return TransferRecord.make(
        handle_id=hid, handle_name=f"h{hid}", src_node=src, dst_node=dst,
        nbytes=nbytes, start_time=start, end_time=end,
    )


def test_empty_trace():
    trace = ExecutionTrace()
    assert trace.makespan == 0.0
    assert trace.n_tasks == 0 and trace.n_transfers == 0
    assert trace.tasks_by_arch() == {}


def test_direction_classification():
    assert _transfer(0, 1).is_h2d and not _transfer(0, 1).is_d2h
    assert _transfer(1, 0).is_d2h and not _transfer(1, 0).is_h2d
    assert not _transfer(1, 2).is_h2d and not _transfer(1, 2).is_d2h


def test_counts_and_bytes():
    trace = ExecutionTrace()
    trace.record_transfer(_transfer(0, 1, 100))
    trace.record_transfer(_transfer(1, 0, 200))
    assert trace.n_h2d == 1 and trace.n_d2h == 1
    assert trace.bytes_transferred == 300


def test_makespan_includes_transfers():
    trace = ExecutionTrace()
    trace.record_task(_task(end=1.0))
    trace.record_transfer(_transfer(end=2.5))
    assert trace.makespan == 2.5


def test_busy_time_and_utilisation():
    trace = ExecutionTrace()
    trace.record_task(_task(0, worker=(0,), start=0.0, end=1.0))
    trace.record_task(_task(1, worker=(0,), start=1.0, end=3.0))
    trace.record_task(_task(2, worker=(1,), start=0.0, end=1.0))
    assert trace.busy_time(0) == pytest.approx(3.0)
    assert trace.utilisation(0) == pytest.approx(1.0)
    assert trace.utilisation(1) == pytest.approx(1.0 / 3.0)


def test_gang_task_counts_for_every_member():
    trace = ExecutionTrace()
    trace.record_task(_task(0, worker=(0, 1, 2), end=2.0))
    assert trace.busy_time(2) == pytest.approx(2.0)


def test_groupings():
    trace = ExecutionTrace()
    trace.record_task(_task(0, arch="cpu", variant="a"))
    trace.record_task(_task(1, arch="cuda", variant="b"))
    trace.record_task(_task(2, arch="cuda", variant="b"))
    assert trace.tasks_by_arch() == {"cpu": 1, "cuda": 2}
    assert trace.tasks_by_variant() == {"a": 1, "b": 2}


def test_transfers_for_handle():
    trace = ExecutionTrace()
    trace.record_transfer(_transfer(hid=1))
    trace.record_transfer(_transfer(hid=2))
    trace.record_transfer(_transfer(hid=1))
    assert len(trace.transfers_for_handle(1)) == 2


def test_summary_mentions_key_numbers():
    trace = ExecutionTrace()
    trace.record_task(_task())
    trace.record_transfer(_transfer())
    text = trace.summary()
    assert "1 tasks" in text and "1 transfers" in text


def test_clear():
    trace = ExecutionTrace()
    trace.record_task(_task())
    trace.clear()
    assert trace.n_tasks == 0


def test_derived_stats_catch_up_after_reads():
    # the incremental cache must fold in records appended *after* a read
    trace = ExecutionTrace()
    trace.record_task(_task(0, end=1.0))
    assert trace.makespan == 1.0  # primes the cache
    trace.record_task(_task(1, worker=(1,), start=1.0, end=4.0, arch="cuda"))
    trace.record_transfer(_transfer(0, 1, 64, end=5.0))
    assert trace.makespan == 5.0
    assert trace.tasks_by_arch() == {"cpu": 1, "cuda": 1}
    assert trace.busy_time(1) == pytest.approx(3.0)
    assert trace.n_h2d == 1 and trace.bytes_transferred == 64


def test_derived_stats_recompute_after_clear():
    trace = ExecutionTrace()
    trace.record_task(_task(0, end=2.0))
    assert trace.makespan == 2.0
    trace.clear()
    assert trace.makespan == 0.0 and trace.tasks_by_arch() == {}
    trace.record_task(_task(1, end=0.5))
    assert trace.makespan == 0.5


def test_direct_list_appends_are_folded_like_record_calls():
    trace = ExecutionTrace()
    assert trace.n_tasks == 0
    trace.tasks.append(_task(0, end=3.0))  # canonicalized()/from_dict path
    assert trace.makespan == 3.0


def test_per_codelet_counters_survive_clear_and_canonicalize():
    trace = ExecutionTrace()
    trace.n_submitted = 2
    trace.submitted_by_codelet["c"] = 2
    trace.decisions_by_codelet["c"] = 2
    trace.retries_by_codelet["c"] = 1
    trace.record_task(_task(0))
    canon = trace.canonicalized()
    assert canon.submitted_by_codelet == {"c": 2}
    assert canon.decisions_by_codelet == {"c": 2}
    assert canon.retries_by_codelet == {"c": 1}
    # and the copy is independent of the original
    trace.submitted_by_codelet["c"] = 5
    assert canon.submitted_by_codelet == {"c": 2}
    trace.clear()
    assert trace.submitted_by_codelet == {}
    assert trace.decisions_by_codelet == {}
    assert trace.retries_by_codelet == {}
