"""Scheduling policies, exercised through the real engine."""

import numpy as np
import pytest

from repro.hw.presets import cpu_only, platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.schedulers import make_scheduler, policy_names

from tests.conftest import make_axpy_codelet


def test_factory_knows_all_policies():
    assert policy_names() == [
        "dm", "dmda", "eager", "fair", "lookahead", "random", "replay", "ws",
    ]
    for name in policy_names():
        assert make_scheduler(name).name == name


def test_factory_unknown_policy_lists_all_registered_names():
    with pytest.raises(KeyError) as excinfo:
        make_scheduler("heft9000")
    message = str(excinfo.value)
    assert "heft9000" in message
    for name in policy_names():
        assert f"'{name}'" in message


def test_fair_delegates_placement_and_validates():
    sched = make_scheduler("fair")
    assert sched.inner.name == "dmda"
    sched = make_scheduler("fair", inner="eager", weights={"a": 2.0})
    assert sched.inner.name == "eager" and sched.weight_of("a") == 2.0
    assert sched.weight_of("unknown-tenant") == 1.0
    with pytest.raises(ValueError):
        make_scheduler("fair", inner="fair")
    with pytest.raises(ValueError):
        make_scheduler("fair", weights={"a": 0.0})


def test_factory_forwards_options():
    sched = make_scheduler("dmda", calibration_samples=5, beta=2.0)
    assert sched.calibration_samples == 5 and sched.beta == 2.0


def test_dmda_validates_calibration_samples():
    with pytest.raises(ValueError):
        make_scheduler("dmda", calibration_samples=0)


def _run_tasks(scheduler, n_tasks=20, n=200_000, seed=0, machine=None):
    rt = Runtime(machine or platform_c2050(), scheduler=scheduler, seed=seed)
    cl = make_axpy_codelet()
    y = np.zeros(n, dtype=np.float32)
    x = np.ones(n, dtype=np.float32)
    handles = [
        (rt.register(y.copy(), f"y{i}"), rt.register(x, f"x{i}"))
        for i in range(4)
    ]
    for i in range(n_tasks):
        hy, hx = handles[i % 4]
        rt.submit(cl, [(hy, "rw"), (hx, "r")], ctx={"n": n}, scalar_args=(1.0,))
    makespan = rt.wait_for_all()
    trace = rt.trace
    rt.shutdown()
    return makespan, trace


@pytest.mark.parametrize("policy", ["eager", "random", "ws", "dm", "dmda"])
def test_every_policy_completes_all_tasks(policy):
    _, trace = _run_tasks(policy)
    assert trace.n_tasks == 20


@pytest.mark.parametrize("policy", ["eager", "ws", "dm", "dmda"])
def test_deterministic_policies_are_reproducible(policy):
    m1, t1 = _run_tasks(policy, seed=3)
    m2, t2 = _run_tasks(policy, seed=3)
    assert m1 == m2
    assert t1.tasks_by_variant() == t2.tasks_by_variant()


def test_random_spreads_by_device_speed():
    _, trace = _run_tasks("random", n_tasks=60)
    by_arch = trace.tasks_by_arch()
    # the GPU is far faster than one core: weighted-random must favour it
    assert by_arch.get("cuda", 0) > 30


def test_dmda_calibrates_then_exploits():
    """After calibration, dmda must send large axpy tasks to the GPU."""
    _, trace = _run_tasks("dmda", n_tasks=30, n=2_000_000)
    variants = [rec.variant for rec in trace.tasks]
    tail = variants[-10:]
    assert all(v == "axpy_cuda" for v in tail), tail


def test_dmda_prefers_cpu_for_tiny_tasks():
    """Launch overhead dominates tiny *host-resident* tasks: CPU wins.

    (When the operand already sits in device memory, keeping tiny tasks
    on the GPU is the data-aware policy working as intended, so each
    task here gets fresh host data.)
    """
    rt = Runtime(platform_c2050(), scheduler="dmda", seed=0)
    cl = make_axpy_codelet()
    n = 64
    records = []
    for i in range(30):
        hy = rt.register(np.zeros(n, dtype=np.float32), f"y{i}")
        hx = rt.register(np.ones(n, dtype=np.float32), f"x{i}")
        rt.submit(cl, [(hy, "rw"), (hx, "r")], ctx={"n": n}, scalar_args=(1.0,))
    rt.wait_for_all()
    tail = [rec.arch for rec in rt.trace.tasks][-10:]
    rt.shutdown()
    assert all(a != "cuda" for a in tail), tail


def test_dmda_data_awareness_prefers_data_locality():
    """With history trained, dmda keeps tasks where their data lives."""
    rt = Runtime(platform_c2050(), scheduler="dmda", seed=0)
    n = 500_000

    def fn(ctx, y):
        y += 1.0

    # CPU and CUDA variants with identical modeled compute cost: only the
    # transfer term differentiates them
    cl = Codelet(
        "same",
        [
            ImplVariant("same_cpu", Arch.CPU, fn, lambda c, d: 1e-3),
            ImplVariant("same_cuda", Arch.CUDA, fn, lambda c, d: 1e-3),
        ],
    )
    h = rt.register(np.zeros(n, dtype=np.float32))
    for _ in range(20):
        rt.submit(cl, [(h, "rw")], ctx={"n": n})
    rt.wait_for_all()
    # data starts on the host; equal compute cost => dmda should never
    # pay the 40 MB PCIe round trip
    archs = {rec.arch for rec in rt.trace.tasks[4:]}  # after calibration
    rt.shutdown()
    assert "cuda" not in archs


def test_ws_balances_assignment_counts():
    _, trace = _run_tasks("ws", n_tasks=40, machine=cpu_only(4))
    counts = {}
    for rec in trace.tasks:
        for w in rec.worker_ids:
            counts[w] = counts.get(w, 0) + 1
    assert max(counts.values()) - min(counts.values()) <= 2


def test_eager_fills_idle_workers():
    """Independent equal tasks on a CPU-only box spread across cores."""
    _, trace = _run_tasks("eager", n_tasks=16, machine=cpu_only(4))
    used_workers = {w for rec in trace.tasks for w in rec.worker_ids}
    assert len(used_workers) == 4
