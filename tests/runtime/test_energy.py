"""Energy accounting and the min_energy optimization goal."""

import numpy as np
import pytest

from repro.hw.devices import DeviceKind, DeviceSpec, tesla_c2050, xeon_e5520_core
from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.schedulers import make_scheduler


def test_device_power_validation():
    with pytest.raises(ValueError):
        DeviceSpec(
            name="x", kind=DeviceKind.CPU, peak_gflops=1, mem_bandwidth_gbs=1,
            launch_overhead_s=0, busy_watts=0.0,
        )


def test_catalogue_power_figures():
    assert tesla_c2050().busy_watts == pytest.approx(238.0)
    assert xeon_e5520_core().busy_watts < tesla_c2050().busy_watts / 5


def test_task_energy_is_duration_times_power():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    cl = Codelet(
        "k", [ImplVariant("k_cuda", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-2)]
    )
    h = rt.register(np.zeros(10, dtype=np.float32))
    rt.submit(cl, [(h, "rw")])
    rt.wait_for_all()
    rec = rt.trace.tasks[0]
    assert rec.energy_j == pytest.approx(rec.duration * 238.0)
    assert rt.trace.total_energy_j == pytest.approx(rec.energy_j)
    rt.shutdown()


def test_gang_energy_sums_member_power():
    from repro.hw.presets import cpu_only

    rt = Runtime(cpu_only(4), scheduler="eager", seed=0, noise_sigma=0.0)
    cl = Codelet(
        "g", [ImplVariant("g_omp", Arch.OPENMP, lambda ctx, *a: None, lambda c, d: 1e-2)]
    )
    h = rt.register(np.zeros(10, dtype=np.float32))
    rt.submit(cl, [(h, "rw")])
    rt.wait_for_all()
    rec = rt.trace.tasks[0]
    assert rec.energy_j == pytest.approx(rec.duration * 4 * 20.0)
    rt.shutdown()


def test_energy_by_arch_grouping():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    cpu_cl = Codelet(
        "c", [ImplVariant("c", Arch.CPU, lambda ctx, *a: None, lambda c, d: 1e-3)]
    )
    gpu_cl = Codelet(
        "g", [ImplVariant("g", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-3)]
    )
    h1 = rt.register(np.zeros(4, dtype=np.float32))
    h2 = rt.register(np.zeros(4, dtype=np.float32))
    rt.submit(cpu_cl, [(h1, "rw")])
    rt.submit(gpu_cl, [(h2, "rw")])
    rt.wait_for_all()
    by_arch = rt.trace.energy_by_arch()
    assert by_arch["cuda"] > by_arch["cpu"]  # same duration, 238 W vs 20 W
    rt.shutdown()


def _two_variant_codelet():
    """GPU is 3x faster but ~12x more power-hungry: energy prefers CPU."""
    return Codelet(
        "trade",
        [
            ImplVariant("t_cpu", Arch.CPU, lambda ctx, *a: None, lambda c, d: 3e-3),
            ImplVariant("t_cuda", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-3),
        ],
    )


def _run_with_objective(objective):
    rt = Runtime(
        platform_c2050(),
        scheduler="dmda",
        seed=0,
        noise_sigma=0.0,
        scheduler_options={"objective": objective},
    )
    cl = _two_variant_codelet()
    h = rt.register(np.zeros(1000, dtype=np.float32))
    for _ in range(20):
        rt.submit(cl, [(h, "rw")])
    rt.wait_for_all()
    tail = [rec.arch for rec in rt.trace.tasks][-10:]
    energy = rt.trace.total_energy_j
    makespan = rt.trace.makespan
    rt.shutdown()
    return tail, energy, makespan


def test_time_objective_picks_the_faster_gpu():
    tail, _, _ = _run_with_objective("min_exec_time")
    assert all(a == "cuda" for a in tail)


def test_energy_objective_picks_the_frugal_cpu():
    tail, _, _ = _run_with_objective("min_energy")
    assert all(a == "cpu" for a in tail)


def test_energy_objective_trades_time_for_joules():
    _, e_time, m_time = _run_with_objective("min_exec_time")
    _, e_energy, m_energy = _run_with_objective("min_energy")
    assert e_energy < e_time  # saves energy...
    assert m_energy > m_time  # ...by running longer


def test_unknown_objective_rejected():
    with pytest.raises(ValueError):
        make_scheduler("dmda", objective="min_carbon")


def test_optimization_goal_flows_through_generated_code(tmp_path):
    """A main descriptor declaring min_energy configures the runtime."""
    from repro.apps import spmv
    from repro.components import MainDescriptor, Repository
    from repro.composer import Composer, Recipe

    repo = Repository()
    spmv.register(repo)
    main = MainDescriptor(
        name="spmv_app", components=("spmv",), optimization_goal="min_energy"
    )
    repo.add_main(main)
    app = Composer(repo, Recipe()).compose(main, tmp_path)
    rt = app.initialize()
    assert rt.scheduler.objective == "min_energy"
    app.shutdown()
