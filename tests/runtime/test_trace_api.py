"""The blessed trace-access API and its deprecation shims.

The million-task refactor made record layout an engine internal:
records live in a columnar store and everything outside the engine
reads them through ``trace.tasks()`` / ``trace.columns(...)`` or forges
them with ``Record.make(...)``.  These tests pin the stable surface —
and that the metrics-off hot path builds no event payloads at all.
"""

from __future__ import annotations

import warnings
from array import array

import numpy as np
import pytest

from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime import events as events_mod
from repro.runtime.stats import (
    ExecutionTrace,
    TaskRecord,
    TransferRecord,
    reset_record_warning,
)


def _run_small(n_tasks: int = 20) -> Runtime:
    rt = Runtime(
        platform_c2050(),
        scheduler="eager",
        seed=7,
        noise_sigma=0.0,
        run_kernels=False,
    )
    codelet = Codelet(
        "api",
        [
            ImplVariant("api_cpu", Arch.CPU, lambda ctx, *a: None, lambda c, d: 1e-6),
            ImplVariant("api_gpu", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-7),
        ],
    )
    h = rt.register(np.zeros(32, dtype=np.float32), "h")
    for i in range(n_tasks):
        rt.submit(codelet, [(h, "rw")], name=f"t{i}")
    rt.wait_for_all()
    return rt


# -- blessed accessors -------------------------------------------------------


def test_tasks_accessor_is_callable_and_sequence():
    rt = _run_small(12)
    trace = rt.engine.trace
    # the blessed iteration spelling: trace.tasks()
    recs = list(trace.tasks())
    assert len(recs) == 12
    assert all(isinstance(r, TaskRecord) for r in recs)
    # the attribute still behaves like the list it used to be
    assert len(trace.tasks) == 12
    assert trace.tasks[0].name == "t0"
    assert trace.tasks[-1].name == "t11"
    assert [r.name for r in trace.tasks[2:4]] == ["t2", "t3"]
    rt.shutdown()


def test_transfers_and_faults_accessors():
    rt = _run_small(8)
    trace = rt.engine.trace
    assert list(trace.faults()) == []
    for rec in trace.transfers():
        assert isinstance(rec, TransferRecord)
    rt.shutdown()


def test_columns_view_matches_records():
    rt = _run_small(10)
    trace = rt.engine.trace
    ends = trace.columns("end_time")
    assert isinstance(ends, array)  # float field -> array('d')
    assert list(ends) == [r.end_time for r in trace.tasks()]
    names = trace.columns("name")
    assert isinstance(names, list)  # object field -> plain list
    assert names[0] == "t0"
    rt.shutdown()


def test_columns_rejects_unknown_field_and_kind():
    trace = ExecutionTrace()
    with pytest.raises(KeyError, match="no field"):
        trace.columns("nope")
    with pytest.raises(KeyError, match="unknown record kind"):
        trace.columns("end_time", kind="nope")


def test_state_dict_round_trips_records():
    rt = _run_small(5)
    doc = rt.engine.trace.state_dict()
    assert len(doc["tasks"]) == 5
    assert doc["tasks"][0]["name"] == "t0"
    rt.shutdown()


# -- deprecation shim --------------------------------------------------------


def test_direct_record_construction_warns_once():
    reset_record_warning()
    try:
        with pytest.warns(DeprecationWarning, match="direct construction of"):
            TaskRecord(1, "t", "c", "v", "cpu", (0,), 0.0, 0.0, 0.0, 1.0)
        # one-shot: the second construction stays silent
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            TaskRecord(2, "t2", "c", "v", "cpu", (0,), 0.0, 0.0, 0.0, 1.0)
    finally:
        reset_record_warning()


def test_make_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        rec = TaskRecord.make(
            1, "t", "c", "v", "cpu", (0,), 0.0, 0.0, 0.0, 1.0
        )
    assert rec.end_time == 1.0
    assert rec.replace(name="u").name == "u"
    assert rec.as_dict()["task_id"] == 1


# -- metrics-off hot path ----------------------------------------------------


def test_metrics_off_run_builds_zero_event_payloads(monkeypatch):
    """With no subscribers, the want-gates must skip payload
    construction entirely: no event object is ever allocated."""
    constructed = []

    def _counting(cls):
        class Counting(cls):
            def __init__(self, *a, **k):
                constructed.append(cls.__name__)
                super().__init__(*a, **k)

        return Counting

    for name in (
        "SubmitEvent",
        "ScheduleEvent",
        "StartEvent",
        "CompleteEvent",
        "TransferEvent",
        "EvictEvent",
        "FaultEvent",
        "FlushEvent",
    ):
        monkeypatch.setattr(
            events_mod, name, _counting(getattr(events_mod, name))
        )

    rt = _run_small(30)
    ev = rt.engine.events
    assert ev.n_subscribers() == 0
    assert constructed == []
    assert ev._ring == []
    rt.shutdown()
    assert constructed == []


def test_subscribed_run_builds_payloads():
    """Control for the zero-payload test: with a subscriber the same
    workload does deliver typed events."""
    rt = _run_small(0)
    seen = []
    rt.engine.events.subscribe("complete", seen.append)
    codelet = Codelet(
        "sub",
        [ImplVariant("sub_cpu", Arch.CPU, lambda ctx, *a: None, lambda c, d: 1e-6)],
    )
    h = rt.register(np.zeros(8, dtype=np.float32), "s")
    rt.submit(codelet, [(h, "rw")], name="s0")
    rt.wait_for_all()
    assert [e.task.name for e in seen] == ["s0"]
    assert isinstance(seen[0].record, TaskRecord)
    rt.shutdown()
