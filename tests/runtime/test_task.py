"""Task lifecycle, dependency counters and footprints."""

import numpy as np
import pytest

from repro.errors import RuntimeSystemError
from repro.runtime.access import AccessMode
from repro.runtime.codelet import Codelet, ImplVariant
from repro.runtime.archs import Arch
from repro.runtime.data import DataHandle
from repro.runtime.task import Operand, Task, TaskState


def _codelet():
    return Codelet(
        "c", [ImplVariant("v", Arch.CPU, lambda ctx, *a: None, lambda ctx, d: 1e-6)]
    )


def _task(n=16, ctx=None):
    h = DataHandle(np.zeros(n, dtype=np.float32), 2)
    return Task(_codelet(), [Operand(h, AccessMode.RW)], ctx=ctx)


def test_codelet_must_have_variants():
    with pytest.raises(RuntimeSystemError):
        Task(Codelet("empty"), [])


def test_initial_state_submitted():
    assert _task().state is TaskState.SUBMITTED


def test_names_are_unique():
    assert _task().name != _task().name


def test_dependency_counting():
    a, b = _task(), _task()
    b.add_dependency(a)
    assert b.n_pending_deps == 1
    assert b in a.dependents
    assert b.dep_satisfied()  # last dep released -> ready


def test_dependency_on_done_task_skipped():
    a, b = _task(), _task()
    a.state = TaskState.DONE
    b.add_dependency(a)
    assert b.n_pending_deps == 0


def test_dep_release_underflow_guard():
    t = _task()
    with pytest.raises(RuntimeSystemError):
        t.dep_satisfied()


def test_footprint_buckets_similar_sizes_together():
    t1 = _task(1000)
    t2 = _task(1001)
    assert t1.footprint() == t2.footprint()


def test_footprint_distinguishes_scales():
    assert _task(100).footprint() != _task(100_000).footprint()


def test_footprint_ctx_override():
    t = _task(ctx={"footprint": "custom"})
    assert t.footprint() == ("c", "custom")


def test_run_kernel_requires_variant():
    with pytest.raises(RuntimeSystemError):
        _task().run_kernel()


def test_run_kernel_passes_arrays_and_scalars():
    seen = {}

    def fn(ctx, arr, scale):
        seen["shape"] = arr.shape
        seen["scale"] = scale

    cl = Codelet("c", [ImplVariant("v", Arch.CPU, fn, lambda ctx, d: 0.0)])
    h = DataHandle(np.zeros(8, dtype=np.float32), 2)
    t = Task(cl, [Operand(h, AccessMode.R)], scalar_args=(2.5,))
    t.chosen_variant = cl.variants[0]
    t.run_kernel()
    assert seen == {"shape": (8,), "scale": 2.5}
