"""Codelets and implementation variants."""

import pytest

from repro.errors import RuntimeSystemError
from repro.hw.devices import tesla_c2050
from repro.runtime.archs import Arch
from repro.runtime.codelet import Codelet, ImplVariant


def _variant(name="v", arch=Arch.CPU, cost=1e-3, guard=None):
    return ImplVariant(
        name=name, arch=arch, fn=lambda ctx, *a: None,
        cost_model=lambda ctx, dev: cost, guard=guard,
    )


def test_duplicate_variants_rejected_at_init():
    with pytest.raises(RuntimeSystemError):
        Codelet("c", [_variant("a"), _variant("a")])


def test_duplicate_variants_rejected_at_add():
    cl = Codelet("c", [_variant("a")])
    with pytest.raises(RuntimeSystemError):
        cl.add_variant(_variant("a"))


def test_variants_for_arch():
    cl = Codelet("c", [_variant("a", Arch.CPU), _variant("b", Arch.CUDA)])
    assert [v.name for v in cl.variants_for_arch(Arch.CUDA)] == ["b"]


def test_archs_set():
    cl = Codelet("c", [_variant("a", Arch.CPU), _variant("b", Arch.CUDA)])
    assert cl.archs() == {Arch.CPU, Arch.CUDA}


def test_guard_filters_candidates():
    guarded = _variant("big_only", guard=lambda ctx: ctx.get("n", 0) >= 100)
    cl = Codelet("c", [_variant("always"), guarded])
    assert [v.name for v in cl.candidates({"n": 10})] == ["always"]
    assert {v.name for v in cl.candidates({"n": 1000})} == {"always", "big_only"}


def test_selectable_default_true():
    assert _variant().selectable({})


def test_predict_rejects_negative_cost():
    bad = ImplVariant(
        "bad", Arch.CPU, lambda ctx, *a: None, cost_model=lambda ctx, dev: -1.0
    )
    with pytest.raises(RuntimeSystemError):
        bad.predict({}, tesla_c2050())


def test_restricted_keeps_named():
    cl = Codelet("c", [_variant("a"), _variant("b"), _variant("c")])
    assert [v.name for v in cl.restricted(["b"]).variants] == ["b"]


def test_restricted_unknown_rejected():
    cl = Codelet("c", [_variant("a")])
    with pytest.raises(RuntimeSystemError):
        cl.restricted(["zz"])


def test_without_drops_named():
    cl = Codelet("c", [_variant("a"), _variant("b")])
    assert [v.name for v in cl.without(["a"]).variants] == ["b"]


def test_without_cannot_empty():
    cl = Codelet("c", [_variant("a")])
    with pytest.raises(RuntimeSystemError):
        cl.without(["a"])


def test_restriction_does_not_mutate_original():
    cl = Codelet("c", [_variant("a"), _variant("b")])
    cl.restricted(["a"])
    cl.without(["b"])
    assert len(cl.variants) == 2
