"""Detailed-tier wiring into scheduling: feasibility and tier-sensitive pricing."""

import numpy as np
import pytest

from repro.apps.costkit import gpu_time
from repro.hw.devices import AccessPattern
from repro.hw.model import KernelProfile
from repro.hw.presets import machine
from repro.runtime import Arch, Codelet, ImplVariant, Runtime

#: a launch shape no Fermi SM can host even one block of (64 KB of
#: registers per block against a 32 KB-register SM)
FAT_PROFILE = KernelProfile(threads_per_block=1024, regs_per_thread=64)


def _codelet(profile):
    def fn(ctx, y):
        y += 1.0

    return Codelet(
        "wiring",
        [
            ImplVariant("wiring_cpu", Arch.CPU, fn, lambda c, d: 1e-4),
            ImplVariant(
                "wiring_cuda",
                Arch.CUDA,
                fn,
                lambda c, d: gpu_time(d, 1e8, 1e6, profile=profile),
                kernel_profile=profile,
            ),
        ],
    )


def _run(mach, codelet, n_tasks=6):
    rt = Runtime(mach, scheduler="dmda", seed=0, noise_sigma=0.0)
    for i in range(n_tasks):
        h = rt.register(np.zeros(64, dtype=np.float32), f"h{i}")
        rt.submit(codelet, [(h, "rw")], ctx={"n": 64})
    rt.wait_for_all()
    by_variant = rt.trace.tasks_by_variant()
    rt.shutdown()
    return by_variant


def test_infeasible_launch_shape_excluded_on_detailed_tier():
    by_variant = _run(machine("fermi", fidelity="detailed"), _codelet(FAT_PROFILE))
    assert "wiring_cuda" not in by_variant
    assert by_variant["wiring_cpu"] == 6


def test_same_shape_allowed_on_coarse_tier():
    """The coarse tier has no occupancy notion: the variant stays a
    candidate and dmda's exploration visits it."""
    by_variant = _run(machine("fermi"), _codelet(FAT_PROFILE))
    assert "wiring_cuda" in by_variant


def test_same_shape_allowed_on_roomier_generation():
    """Volta's 64 K registers host the fat block; the variant runs."""
    by_variant = _run(machine("volta", fidelity="detailed"), _codelet(FAT_PROFILE))
    assert "wiring_cuda" in by_variant


def test_ground_truth_prices_through_the_tier():
    """The engine's ground truth (variant.predict on the GPU spec) must
    dispatch through the attached model: same codelet, different tier,
    different modeled duration."""
    codelet = _codelet(KernelProfile())
    variant = codelet.variants[1]
    coarse_gpu = machine("fermi").gpu_units[0].device
    detailed_gpu = machine("fermi", fidelity="detailed").gpu_units[0].device
    t_coarse = variant.predict({"n": 64}, coarse_gpu)
    t_detailed = variant.predict({"n": 64}, detailed_gpu)
    assert t_coarse != t_detailed
    assert t_coarse > 0 and t_detailed > 0


def test_default_profile_used_when_variant_declares_none():
    detailed_gpu = machine("fermi", fidelity="detailed").gpu_units[0].device
    t = gpu_time(detailed_gpu, 1e8, 1e6, AccessPattern.REGULAR)
    assert t == pytest.approx(
        gpu_time(detailed_gpu, 1e8, 1e6, AccessPattern.REGULAR, profile=None)
    )
    assert t > 0
