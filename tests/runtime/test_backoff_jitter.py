"""Retry backoff jitter: bounds, cap ordering, determinism."""

import numpy as np
import pytest

from repro.hw.faults import FaultModel
from repro.hw.presets import platform_c2050
from repro.runtime import RecoveryPolicy, Runtime

from tests.conftest import make_axpy_codelet


def _run(faults=None, recovery=None, seed=0, n_tasks=12):
    rt = Runtime(platform_c2050(), scheduler="dmda", seed=seed,
                 faults=faults, recovery=recovery)
    cl = make_axpy_codelet(archs=("cpu", "openmp", "cuda"))
    y = rt.register(np.zeros(4096, dtype=np.float32))
    x = rt.register(np.ones(4096, dtype=np.float32))
    for _ in range(n_tasks):
        rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 4096},
                  scalar_args=(1.0,))
    rt.wait_for_all()
    makespan = rt.shutdown()
    return makespan, rt.trace


# ---------------------------------------------------------------------------
# the policy itself
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("jitter", [-0.1, 1.01, 2.0])
def test_policy_rejects_out_of_range_jitter(jitter):
    with pytest.raises(ValueError):
        RecoveryPolicy(backoff_jitter=jitter)


def test_backoff_without_jitter_is_pure_exponential():
    p = RecoveryPolicy(backoff_base_s=1e-4, backoff_factor=2.0,
                       backoff_cap_s=1.0)
    assert p.backoff(1) == pytest.approx(1e-4)
    assert p.backoff(2) == pytest.approx(2e-4)
    assert p.backoff(5) == pytest.approx(16e-4)


def test_backoff_jitter_spreads_symmetrically_within_bounds():
    p = RecoveryPolicy(backoff_base_s=1e-4, backoff_factor=2.0,
                       backoff_cap_s=1.0, backoff_jitter=0.5)
    base = 1e-4
    assert p.backoff(1, u=0.0) == pytest.approx(base * 0.5)   # fully early
    assert p.backoff(1, u=0.5) == pytest.approx(base)         # centered
    assert p.backoff(1, u=1.0) == pytest.approx(base * 1.5)   # fully late
    for u in np.linspace(0.0, 1.0, 17):
        d = p.backoff(3, u=float(u))
        assert base * 4 * 0.5 <= d <= base * 4 * 1.5


def test_backoff_cap_applies_after_jitter():
    """The cap is a hard max-delay bound: jitter can never push a retry
    past it."""
    p = RecoveryPolicy(backoff_base_s=9e-3, backoff_factor=2.0,
                       backoff_cap_s=1e-2, backoff_jitter=1.0)
    assert p.backoff(1, u=1.0) == pytest.approx(1e-2)  # 18ms jittered -> cap
    assert p.backoff(4, u=0.0) <= 1e-2
    # a jittered-down delay below the cap passes through unclamped
    assert p.backoff(1, u=0.0) == pytest.approx(0.0, abs=1e-12)


def test_backoff_ignores_u_when_jitter_disabled():
    p = RecoveryPolicy(backoff_base_s=1e-4, backoff_cap_s=1.0)
    assert p.backoff(2, u=0.0) == p.backoff(2, u=1.0) == p.backoff(2)


# ---------------------------------------------------------------------------
# engine integration: deterministic, replay-stable
# ---------------------------------------------------------------------------

def test_jittered_recovery_is_deterministic():
    kw = dict(
        faults=FaultModel(kernel_fault_rate=0.3, seed=3),
        recovery=RecoveryPolicy(max_retries=8, backoff_jitter=0.5),
    )
    t1, tr1 = _run(**kw)
    t2, tr2 = _run(**kw)
    assert t1 == t2
    assert [(f.kind, f.time, f.attempt) for f in tr1.faults] == [
        (f.kind, f.time, f.attempt) for f in tr2.faults
    ]
    assert [(r.start_time, r.end_time) for r in tr1.tasks] == [
        (r.start_time, r.end_time) for r in tr2.tasks
    ]


def test_jitter_changes_retry_timings_but_not_results():
    faults = FaultModel(kernel_fault_rate=0.4, seed=5)
    t0, tr0 = _run(faults=faults,
                   recovery=RecoveryPolicy(max_retries=8))
    t1, tr1 = _run(faults=faults,
                   recovery=RecoveryPolicy(max_retries=8,
                                           backoff_jitter=0.9))
    assert tr0.n_faults > 0
    # same fault schedule (draws are keyed, not stream-consumed) ...
    assert [(f.kind, f.attempt) for f in tr0.faults] == [
        (f.kind, f.attempt) for f in tr1.faults
    ]
    # ... but the jitter moved the retry instants
    assert t0 != t1


def test_zero_jitter_is_bit_identical_to_pre_jitter_behavior():
    """jitter=0 must not consume randomness or perturb any timing."""
    faults = FaultModel(kernel_fault_rate=0.3, seed=3)
    t0, tr0 = _run(faults=faults, recovery=RecoveryPolicy(max_retries=8))
    t1, tr1 = _run(faults=faults,
                   recovery=RecoveryPolicy(max_retries=8, backoff_jitter=0.0))
    assert t0 == t1
    assert [(r.start_time, r.end_time) for r in tr0.tasks] == [
        (r.start_time, r.end_time) for r in tr1.tasks
    ]


def test_engine_jitter_draws_are_keyed_per_task_and_attempt():
    rt = Runtime(platform_c2050(), seed=9,
                 recovery=RecoveryPolicy(backoff_jitter=0.5))
    eng = rt.engine
    # order-independent: the same (task_seq, attempt) key always yields
    # the same u, and distinct keys decorrelate
    a = eng._backoff_jitter_u(3, 1)
    b = eng._backoff_jitter_u(4, 1)
    c = eng._backoff_jitter_u(3, 2)
    assert a == eng._backoff_jitter_u(3, 1)
    assert len({a, b, c}) == 3
    assert all(0.0 <= u < 1.0 for u in (a, b, c))
    rt.shutdown()


def test_engine_jitter_u_is_none_when_disabled():
    rt = Runtime(platform_c2050(), seed=9)
    assert rt.engine._backoff_jitter_u(0, 1) is None
    rt.shutdown()
