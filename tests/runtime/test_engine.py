"""Discrete-event engine: dependencies, coherence actions, timelines."""

import numpy as np
import pytest

from repro.errors import DataConsistencyError, RuntimeSystemError, SchedulingError
from repro.hw.description import HOST_NODE
from repro.hw.presets import cpu_only, platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime

from tests.conftest import make_axpy_codelet


def _rt(machine=None, scheduler="eager", **kw):
    kw.setdefault("noise_sigma", 0.0)
    return Runtime(machine or platform_c2050(), scheduler=scheduler, seed=0, **kw)


def _const_codelet(name="k", cost=1e-3, archs=(Arch.CPU,), fn=None):
    fn = fn or (lambda ctx, *a: None)
    return Codelet(
        name,
        [
            ImplVariant(f"{name}_{a.value}", a, fn, lambda ctx, dev, c=cost: c)
            for a in archs
        ],
    )


# ---------------------------------------------------------------------------
# dependency inference (sequential data consistency)
# ---------------------------------------------------------------------------

def test_raw_dependency_serialises():
    rt = _rt(cpu_only(4))
    cl = _const_codelet(cost=1e-3)
    h = rt.register(np.zeros(10, dtype=np.float32))
    t1 = rt.submit(cl, [(h, "w")])
    t2 = rt.submit(cl, [(h, "r")])
    rt.wait_for_all()
    assert t2.start_time >= t1.end_time


def test_war_dependency_serialises():
    rt = _rt(cpu_only(4))
    cl = _const_codelet(cost=1e-3)
    h = rt.register(np.zeros(10, dtype=np.float32))
    reader = rt.submit(cl, [(h, "r")])
    writer = rt.submit(cl, [(h, "rw")])
    rt.wait_for_all()
    assert writer.start_time >= reader.end_time


def test_waw_dependency_serialises():
    rt = _rt(cpu_only(4))
    cl = _const_codelet(cost=1e-3)
    h = rt.register(np.zeros(10, dtype=np.float32))
    w1 = rt.submit(cl, [(h, "w")])
    w2 = rt.submit(cl, [(h, "w")])
    rt.wait_for_all()
    assert w2.start_time >= w1.end_time


def test_concurrent_readers_overlap():
    rt = _rt(cpu_only(4))
    cl = _const_codelet(cost=1e-2)
    h = rt.register(np.zeros(10, dtype=np.float32))
    readers = [rt.submit(cl, [(h, "r")]) for _ in range(3)]
    rt.wait_for_all()
    starts = sorted(t.start_time for t in readers)
    ends = sorted(t.end_time for t in readers)
    assert starts[-1] < ends[0]  # all three run concurrently


def test_independent_handles_run_in_parallel():
    rt = _rt(cpu_only(4))
    cl = _const_codelet(cost=1e-2)
    h1 = rt.register(np.zeros(10, dtype=np.float32))
    h2 = rt.register(np.zeros(10, dtype=np.float32))
    t1 = rt.submit(cl, [(h1, "rw")])
    t2 = rt.submit(cl, [(h2, "rw")])
    rt.wait_for_all()
    assert t2.start_time < t1.end_time


def test_diamond_dependency_chain():
    """w -> (r1 || r2) -> w2: the final writer waits for both readers."""
    rt = _rt(cpu_only(4))
    cl = _const_codelet(cost=1e-3)
    h = rt.register(np.zeros(10, dtype=np.float32))
    w = rt.submit(cl, [(h, "w")])
    r1 = rt.submit(cl, [(h, "r")])
    r2 = rt.submit(cl, [(h, "r")])
    w2 = rt.submit(cl, [(h, "rw")])
    rt.wait_for_all()
    assert r1.start_time >= w.end_time and r2.start_time >= w.end_time
    assert w2.start_time >= max(r1.end_time, r2.end_time)


def test_values_follow_dependency_order():
    rt = _rt(cpu_only(2))

    def add_one(ctx, arr):
        arr += 1.0

    def double(ctx, arr):
        arr *= 2.0

    cl_add = Codelet("add", [ImplVariant("add", Arch.CPU, add_one, lambda c, d: 1e-4)])
    cl_dbl = Codelet("dbl", [ImplVariant("dbl", Arch.CPU, double, lambda c, d: 1e-4)])
    data = np.zeros(4, dtype=np.float32)
    h = rt.register(data)
    rt.submit(cl_add, [(h, "rw")])
    rt.submit(cl_dbl, [(h, "rw")])
    rt.submit(cl_add, [(h, "rw")])
    rt.wait_for_all()
    rt.acquire(h, "r")
    assert np.all(data == 3.0)  # ((0+1)*2)+1


# ---------------------------------------------------------------------------
# coherence and transfers
# ---------------------------------------------------------------------------

def test_cpu_only_tasks_never_transfer():
    rt = _rt(cpu_only(4))
    cl = _const_codelet()
    h = rt.register(np.zeros(1000, dtype=np.float32))
    for _ in range(5):
        rt.submit(cl, [(h, "rw")])
    rt.wait_for_all()
    assert rt.trace.n_transfers == 0


def test_gpu_read_triggers_single_upload():
    rt = _rt()
    cl = _const_codelet(archs=(Arch.CUDA,))
    h = rt.register(np.zeros(1000, dtype=np.float32))
    for _ in range(4):
        rt.submit(cl, [(h, "r")])
    rt.wait_for_all()
    assert rt.trace.n_h2d == 1  # lazy: one upload serves all reads
    assert rt.trace.n_d2h == 0


def test_write_only_gpu_task_skips_upload():
    rt = _rt()
    cl = _const_codelet(archs=(Arch.CUDA,))
    h = rt.register(np.zeros(1000, dtype=np.float32))
    rt.submit(cl, [(h, "w")])
    rt.wait_for_all()
    assert rt.trace.n_transfers == 0  # allocation only, per Figure 3


def test_host_read_after_gpu_write_downloads_once():
    rt = _rt()
    cl = _const_codelet(archs=(Arch.CUDA,))
    h = rt.register(np.zeros(1000, dtype=np.float32))
    rt.submit(cl, [(h, "w")])
    rt.acquire(h, "r")
    rt.acquire(h, "r")  # second host read: copy already valid
    assert rt.trace.n_d2h == 1


def test_host_write_invalidates_device_copy():
    rt = _rt()
    cl = _const_codelet(archs=(Arch.CUDA,))
    h = rt.register(np.zeros(1000, dtype=np.float32))
    rt.submit(cl, [(h, "w")])
    rt.acquire(h, "rw")  # host write: download + invalidate device
    rt.submit(cl, [(h, "r")])  # needs a fresh upload
    rt.wait_for_all()
    assert rt.trace.n_d2h == 1 and rt.trace.n_h2d == 1


def test_transfer_time_appears_in_makespan():
    rt = _rt()
    cl = _const_codelet(archs=(Arch.CUDA,), cost=1e-6)
    big = rt.register(np.zeros(10_000_000, dtype=np.float32))  # 40 MB
    task = rt.submit(cl, [(big, "r")])
    rt.wait_for_all()
    expected_transfer = rt.machine.transfer_time(HOST_NODE, 1, 40_000_000)
    assert task.start_time >= expected_transfer


def test_acquire_blocks_until_writer_finishes():
    rt = _rt()
    cl = _const_codelet(archs=(Arch.CUDA,), cost=5e-3)
    h = rt.register(np.zeros(100, dtype=np.float32))
    task = rt.submit(cl, [(h, "w")])
    before = rt.now
    rt.acquire(h, "r")
    assert before < task.end_time <= rt.now


def test_host_overlaps_with_async_tasks():
    rt = _rt()
    cl = _const_codelet(archs=(Arch.CUDA,), cost=1e-2)
    h = rt.register(np.zeros(100, dtype=np.float32))
    rt.submit(cl, [(h, "w")])
    # submission returns immediately: host time is far below task time
    assert rt.now < 1e-3


def test_unregister_flushes_home():
    rt = _rt()
    cl = _const_codelet(archs=(Arch.CUDA,))

    def fill(ctx, arr):
        arr[:] = 7.0

    cl = Codelet("fill", [ImplVariant("f", Arch.CUDA, fill, lambda c, d: 1e-4)])
    data = np.zeros(100, dtype=np.float32)
    h = rt.register(data)
    rt.submit(cl, [(h, "w")])
    rt.unregister(h)
    assert np.all(data == 7.0)
    assert rt.trace.n_d2h == 1


def test_unregistered_handle_rejected():
    rt = _rt()
    cl = _const_codelet()
    h = rt.register(np.zeros(10, dtype=np.float32))
    rt.unregister(h)
    with pytest.raises(RuntimeSystemError):
        rt.submit(cl, [(h, "r")])


# ---------------------------------------------------------------------------
# scheduling mechanics
# ---------------------------------------------------------------------------

def test_no_feasible_variant_raises():
    rt = _rt(cpu_only(2))
    cuda_only = _const_codelet(archs=(Arch.CUDA,))
    h = rt.register(np.zeros(10, dtype=np.float32))
    with pytest.raises(SchedulingError):
        rt.submit(cuda_only, [(h, "r")])


def test_guard_rejecting_all_variants_raises():
    guarded = Codelet(
        "g",
        [
            ImplVariant(
                "g_cpu",
                Arch.CPU,
                lambda ctx, *a: None,
                lambda ctx, dev: 1e-6,
                guard=lambda ctx: False,
            )
        ],
    )
    rt = _rt(cpu_only(2))
    h = rt.register(np.zeros(10, dtype=np.float32))
    with pytest.raises(SchedulingError):
        rt.submit(guarded, [(h, "r")])


def test_gang_task_occupies_all_cpu_workers():
    rt = _rt(cpu_only(4))
    gang = _const_codelet(archs=(Arch.OPENMP,), cost=1e-2)
    solo = _const_codelet(name="s", archs=(Arch.CPU,), cost=1e-2)
    h1 = rt.register(np.zeros(10, dtype=np.float32))
    h2 = rt.register(np.zeros(10, dtype=np.float32))
    g = rt.submit(gang, [(h1, "rw")])
    s = rt.submit(solo, [(h2, "rw")])
    rt.wait_for_all()
    assert len(g.workers) == 4
    assert s.start_time >= g.end_time  # no core left while the gang runs


def test_gang_ctx_receives_ncores():
    rt = _rt(cpu_only(4))
    gang = _const_codelet(archs=(Arch.OPENMP,))
    h = rt.register(np.zeros(10, dtype=np.float32))
    task = rt.submit(gang, [(h, "rw")])
    rt.wait_for_all()
    assert task.ctx["ncores"] == 4


def test_sync_submit_blocks_host():
    rt = _rt()
    cl = _const_codelet(cost=2e-3)
    h = rt.register(np.zeros(10, dtype=np.float32))
    task = rt.submit(cl, [(h, "rw")], sync=True)
    assert rt.now >= task.end_time


def test_submit_overhead_charged_to_host():
    rt = Runtime(
        cpu_only(2), scheduler="eager", seed=0, noise_sigma=0.0,
        submit_overhead_s=1e-5,
    )
    cl = _const_codelet()
    h = rt.register(np.zeros(10, dtype=np.float32))
    for _ in range(10):
        rt.submit(cl, [(h, "r")])
    assert rt.now == pytest.approx(1e-4)


def test_same_seed_same_schedule():
    def run():
        rt = Runtime(platform_c2050(), scheduler="dmda", seed=42)
        cl = make_axpy_codelet()
        y = np.zeros(100_000, dtype=np.float32)
        x = np.ones(100_000, dtype=np.float32)
        hy, hx = rt.register(y), rt.register(x)
        for _ in range(12):
            rt.submit(cl, [(hy, "rw"), (hx, "r")], ctx={"n": 100_000},
                      scalar_args=(1.0,))
        makespan = rt.wait_for_all()
        variants = rt.trace.tasks_by_variant()
        rt.shutdown()
        return makespan, variants

    assert run() == run()


def test_run_kernels_false_skips_computation():
    rt = _rt(run_kernels=False)

    def boom(ctx, *a):
        raise AssertionError("kernel must not run")

    cl = Codelet("b", [ImplVariant("b", Arch.CPU, boom, lambda c, d: 1e-6)])
    h = rt.register(np.zeros(10, dtype=np.float32))
    rt.submit(cl, [(h, "rw")])
    rt.wait_for_all()


# ---------------------------------------------------------------------------
# partitioning through the engine
# ---------------------------------------------------------------------------

def test_partitioned_parent_rejected_as_operand():
    rt = _rt()
    cl = _const_codelet()
    h = rt.register(np.zeros(100, dtype=np.float32))
    rt.partition_equal(h, 4)
    with pytest.raises(RuntimeSystemError):
        rt.submit(cl, [(h, "r")])


def test_partitioned_parent_host_access_rejected():
    rt = _rt()
    h = rt.register(np.zeros(100, dtype=np.float32))
    rt.partition_equal(h, 4)
    with pytest.raises(DataConsistencyError):
        rt.acquire(h, "r")


def test_unpartition_gathers_children():
    rt = _rt()

    def fill(ctx, arr):
        arr[:] = 5.0

    cl = Codelet("fill", [ImplVariant("f", Arch.CUDA, fill, lambda c, d: 1e-4)])
    data = np.zeros(100, dtype=np.float32)
    h = rt.register(data)
    children = rt.partition_equal(h, 4)
    for child in children:
        rt.submit(cl, [(child, "w")])
    rt.unpartition(h)
    assert np.all(data == 5.0)
    assert not h.partitioned
    # gathered home: parent usable again
    cl2 = _const_codelet()
    rt.submit(cl2, [(h, "r")])
    rt.wait_for_all()


def test_unpartition_without_partition_is_noop():
    rt = _rt()
    h = rt.register(np.zeros(10, dtype=np.float32))
    t = rt.now
    assert rt.unpartition(h) == t


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------

def test_shutdown_drains_and_blocks_further_use():
    rt = _rt()
    cl = _const_codelet()
    h = rt.register(np.zeros(10, dtype=np.float32))
    rt.submit(cl, [(h, "rw")])
    rt.shutdown()
    with pytest.raises(RuntimeSystemError):
        rt.submit(cl, [(h, "rw")])
    with pytest.raises(RuntimeSystemError):
        rt.register(np.zeros(4))


def test_shutdown_idempotent():
    rt = _rt()
    assert rt.shutdown() == rt.shutdown()


def test_context_manager_shuts_down():
    with _rt() as rt:
        cl = _const_codelet()
        h = rt.register(np.zeros(10, dtype=np.float32))
        rt.submit(cl, [(h, "rw")])
    with pytest.raises(RuntimeSystemError):
        rt.register(np.zeros(4))


def test_wait_for_all_returns_makespan():
    rt = _rt(cpu_only(1))
    cl = _const_codelet(cost=1e-3)
    h = rt.register(np.zeros(10, dtype=np.float32))
    for _ in range(3):
        rt.submit(cl, [(h, "rw")])
    makespan = rt.wait_for_all()
    assert makespan == pytest.approx(3e-3, rel=0.05)


def test_host_write_only_access_skips_download():
    """acquire(W): the old contents are irrelevant, so an outdated host
    copy is NOT refreshed before the host overwrites it."""
    rt = _rt()
    cl = _const_codelet(archs=(Arch.CUDA,))
    h = rt.register(np.zeros(1000, dtype=np.float32))
    rt.submit(cl, [(h, "w")])  # device now owns the data
    rt.acquire(h, "w")  # host will overwrite: no transfer needed
    assert rt.trace.n_transfers == 0
    h.array[:] = 1.0
    # device copy was invalidated: the next device read re-uploads
    rt.submit(cl, [(h, "r")])
    rt.wait_for_all()
    assert rt.trace.n_h2d == 1
    rt.shutdown()


def test_unregister_twice_rejected():
    rt = _rt()
    h = rt.register(np.zeros(8, dtype=np.float32))
    rt.unregister(h)
    with pytest.raises(RuntimeSystemError):
        rt.unregister(h)


def test_zero_length_operands_supported():
    rt = _rt()
    cl = _const_codelet(archs=(Arch.CUDA,))
    h = rt.register(np.zeros(0, dtype=np.float32))
    rt.submit(cl, [(h, "r")], sync=True)
    rt.acquire(h, "r")
    rt.shutdown()


def test_submission_continues_after_barrier():
    rt = _rt(cpu_only(2))
    cl = _const_codelet(cost=1e-3)
    h = rt.register(np.zeros(8, dtype=np.float32))
    rt.submit(cl, [(h, "rw")])
    t_barrier = rt.wait_for_all()
    task = rt.submit(cl, [(h, "rw")], sync=True)
    assert task.start_time >= t_barrier
    rt.shutdown()


def test_acquire_on_unregistered_handle_rejected():
    rt = _rt()
    h = rt.register(np.zeros(8, dtype=np.float32))
    rt.unregister(h)
    # unregister flushed home: local data stays usable, but runtime
    # accesses are gone
    with pytest.raises(RuntimeSystemError):
        rt.submit(_const_codelet(), [(h, "r")])
