"""Data handles: MSI coherence, ordering bookkeeping, partitioning."""

import numpy as np
import pytest

from repro.errors import DataConsistencyError
from repro.hw.description import HOST_NODE
from repro.runtime.data import CopyState, DataHandle


def _handle(n=64, nodes=2, name="h"):
    return DataHandle(np.zeros(n, dtype=np.float32), nodes, name=name)


def test_initial_state_host_owns():
    h = _handle()
    assert h.state(HOST_NODE) is CopyState.MODIFIED
    assert h.state(1) is CopyState.INVALID
    assert h.valid_nodes() == [HOST_NODE]


def test_needs_host_node():
    with pytest.raises(DataConsistencyError):
        DataHandle(np.zeros(4), 0)


def test_mark_shared_degrades_modified():
    h = _handle()
    h.mark_shared(1, ready_at=2.0)
    assert h.state(HOST_NODE) is CopyState.SHARED
    assert h.state(1) is CopyState.SHARED
    assert h.ready_at(1) == 2.0


def test_mark_modified_invalidates_everyone_else():
    h = _handle()
    h.mark_shared(1, 1.0)
    h.mark_modified(1, 5.0)
    assert h.state(1) is CopyState.MODIFIED
    assert h.state(HOST_NODE) is CopyState.INVALID
    assert h.valid_nodes() == [1]


def test_pick_source_prefers_earliest_then_host():
    h = _handle(nodes=3)
    h.mark_shared(1, 4.0)
    h.mark_shared(2, 1.0)
    assert h.pick_source() == HOST_NODE  # host ready at 0
    h.mark_modified(2, 1.0)
    assert h.pick_source() == 2


def test_ready_at_never_regresses_on_shared():
    h = _handle()
    h.mark_shared(1, 5.0)
    h.mark_shared(1, 2.0)  # a later no-op transfer cannot rewind readiness
    assert h.ready_at(1) == 5.0


def test_dependencies_reader_waits_for_writer():
    h = _handle()

    class T:  # minimal task stand-in
        def __init__(self):
            from repro.runtime.task import TaskState

            self.state = TaskState.SUBMITTED
            self.task_id = id(self)

    w = T()
    h.record_access(w, writes=True)
    assert h.dependencies_for(writes=False) == [w]


def test_dependencies_writer_waits_for_readers_too():
    h = _handle()

    class T:
        def __init__(self):
            from repro.runtime.task import TaskState

            self.state = TaskState.SUBMITTED
            self.task_id = id(self)

    w, r1, r2 = T(), T(), T()
    h.record_access(w, writes=True)
    h.record_access(r1, writes=False)
    h.record_access(r2, writes=False)
    assert h.dependencies_for(writes=True) == [w, r1, r2]


def test_new_writer_clears_reader_list():
    h = _handle()

    class T:
        def __init__(self):
            from repro.runtime.task import TaskState

            self.state = TaskState.SUBMITTED
            self.task_id = id(self)

    r, w = T(), T()
    h.record_access(r, writes=False)
    h.record_access(w, writes=True)
    assert h.dependencies_for(writes=False) == [w]


def test_reset_host_access_clears_ordering():
    h = _handle()

    class T:
        def __init__(self):
            from repro.runtime.task import TaskState

            self.state = TaskState.SUBMITTED
            self.task_id = id(self)

    h.record_access(T(), writes=True)
    h.reset_host_access()
    assert h.dependencies_for(writes=True) == []


# -- partitioning ---------------------------------------------------------

def test_partition_equal_covers_payload():
    h = _handle(100)
    children = h.partition_equal(3)
    assert sum(len(c.array) for c in children) == 100
    assert h.partitioned


def test_partition_children_are_views():
    h = _handle(10)
    children = h.partition_equal(2)
    children[0].array[0] = 42.0
    assert h.array[0] == 42.0


def test_partition_children_inherit_state():
    h = _handle(10, nodes=2)
    h.mark_shared(1, 3.0)
    children = h.partition_equal(2)
    assert children[0].state(1) is CopyState.SHARED
    assert children[0].ready_at(1) == 3.0


def test_partition_children_inherit_ordering():
    h = _handle(10)

    class T:
        def __init__(self):
            from repro.runtime.task import TaskState

            self.state = TaskState.SUBMITTED
            self.task_id = id(self)

    w = T()
    h.record_access(w, writes=True)
    children = h.partition_equal(2)
    assert children[0].last_writer is w


def test_double_partition_rejected():
    h = _handle(10)
    h.partition_equal(2)
    with pytest.raises(DataConsistencyError):
        h.partition_equal(2)


def test_partition_needs_slices():
    h = _handle(10)
    with pytest.raises(DataConsistencyError):
        h.partition_by_slices([])


def test_partition_bad_chunk_count():
    with pytest.raises(DataConsistencyError):
        _handle(10).partition_equal(0)


def test_drop_partition_unregisters_children():
    h = _handle(10)
    children = h.partition_equal(2)
    h.drop_partition()
    assert not h.partitioned
    assert all(c.unregistered for c in children)


def test_partition_matrix_rows():
    h = DataHandle(np.zeros((8, 4), dtype=np.float32), 2)
    children = h.partition_equal(2, axis=0)
    assert children[0].array.shape == (4, 4)


def test_invariant_no_two_modified():
    h = _handle()
    h._states[1] = CopyState.MODIFIED  # corrupt deliberately
    with pytest.raises(DataConsistencyError):
        h._check_invariants()


def test_invariant_modified_excludes_shared():
    h = _handle(nodes=3)
    h._states[1] = CopyState.SHARED  # corrupt: MODIFIED@host + SHARED@1
    with pytest.raises(DataConsistencyError):
        h._check_invariants()


def test_invariant_requires_some_valid_copy():
    h = _handle()
    h._states[HOST_NODE] = CopyState.INVALID
    with pytest.raises(DataConsistencyError):
        h._check_invariants()
