"""Failure injection: the engine stays consistent when things go wrong."""

import numpy as np
import pytest

from repro.errors import KernelExecutionError, SchedulingError
from repro.hw.presets import cpu_only, platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _good_codelet():
    return Codelet(
        "good",
        [ImplVariant("good", Arch.CPU, lambda ctx, *a: None, lambda c, d: 1e-5)],
    )


def _bomb_codelet(exc=ValueError("kernel bug")):
    def bomb(ctx, *a):
        raise exc

    return Codelet("bomb", [ImplVariant("bomb", Arch.CPU, bomb, lambda c, d: 1e-5)])


def test_kernel_exception_is_wrapped_and_chained():
    rt = Runtime(cpu_only(2), scheduler="eager", seed=0, noise_sigma=0.0)
    h = rt.register(np.zeros(4, dtype=np.float32))
    with pytest.raises(KernelExecutionError, match="kernel bug") as info:
        rt.submit(_bomb_codelet(), [(h, "rw")])
    assert isinstance(info.value.__cause__, ValueError)
    rt.shutdown()


def test_engine_usable_after_kernel_failure():
    rt = Runtime(cpu_only(2), scheduler="eager", seed=0, noise_sigma=0.0)
    h = rt.register(np.zeros(4, dtype=np.float32))
    with pytest.raises(KernelExecutionError):
        rt.submit(_bomb_codelet(), [(h, "rw")])
    # the session keeps working: counters are consistent, new tasks run
    task = rt.submit(_good_codelet(), [(h, "rw")], sync=True)
    assert task.end_time > 0
    rt.wait_for_all()
    rt.shutdown()


def test_scheduling_failure_keeps_dependents_released():
    rt = Runtime(cpu_only(2), scheduler="eager", seed=0, noise_sigma=0.0)
    cuda_only = Codelet(
        "gpuonly",
        [ImplVariant("g", Arch.CUDA, lambda ctx, *a: None, lambda c, d: 1e-5)],
    )
    h = rt.register(np.zeros(4, dtype=np.float32))
    with pytest.raises(SchedulingError):
        rt.submit(cuda_only, [(h, "w")])
    # a dependent on the aborted writer still completes
    rt.submit(_good_codelet(), [(h, "r")], sync=True)
    rt.wait_for_all()
    rt.shutdown()


def test_failed_task_not_recorded_in_trace_or_perfmodel():
    rt = Runtime(cpu_only(2), scheduler="eager", seed=0, noise_sigma=0.0)
    h = rt.register(np.zeros(4, dtype=np.float32))
    with pytest.raises(KernelExecutionError):
        rt.submit(_bomb_codelet(), [(h, "rw")])
    assert rt.trace.n_tasks == 0
    rt.shutdown()


def test_peppher_error_from_kernel_not_double_wrapped():
    from repro.errors import ContainerError

    def bomb(ctx, *a):
        raise ContainerError("inner")

    cl = Codelet("b", [ImplVariant("b", Arch.CPU, bomb, lambda c, d: 1e-5)])
    rt = Runtime(cpu_only(2), scheduler="eager", seed=0, noise_sigma=0.0)
    h = rt.register(np.zeros(4, dtype=np.float32))
    with pytest.raises(ContainerError, match="inner"):
        rt.submit(cl, [(h, "rw")])
    rt.shutdown()


def test_gpu_failure_leaves_coherence_valid():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)

    def bomb(ctx, *a):
        raise RuntimeError("gpu kernel fault")

    cl = Codelet("b", [ImplVariant("b", Arch.CUDA, bomb, lambda c, d: 1e-5)])
    data = np.arange(8, dtype=np.float32)
    h = rt.register(data)
    with pytest.raises(KernelExecutionError):
        rt.submit(cl, [(h, "r")])
    # the handle still has a valid copy somewhere and is host-readable
    assert h.valid_nodes()
    rt.acquire(h, "r")
    assert (data == np.arange(8)).all()
    rt.shutdown()
