"""Property-based tests for the detailed device-model tier.

Three families of invariants, over randomly drawn knobs and launch
shapes:

- occupancy never exceeds any hardware limit of the SM;
- predicted kernel time is monotonically non-increasing in the L1/L2
  hit rates and in every level's bandwidth (faster memory never makes a
  kernel slower);
- a spec with an explicit :class:`CoarseDeviceModel` prices every
  kernel exactly like the model-less legacy spelling (the equivalence
  behind the golden-digest byte-identity guarantee).
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.hw.devices import AccessPattern, tesla_c1060, tesla_c2050
from repro.hw.model import (
    CoarseDeviceModel,
    DetailedDeviceModel,
    KernelProfile,
    LatencyTable,
    MemoryHierarchy,
    SMConfig,
)
from repro.hw.zoo import fermi_c2050, kepler_k40, pascal_p100, volta_v100

_DETAILED_SPECS = {
    "fermi": fermi_c2050("detailed"),
    "kepler": kepler_k40("detailed"),
    "pascal": pascal_p100("detailed"),
    "volta": volta_v100("detailed"),
}

_profiles = st.builds(
    KernelProfile,
    threads_per_block=st.sampled_from([32, 64, 128, 256, 512, 1024]),
    regs_per_thread=st.integers(min_value=8, max_value=64),
    shared_mem_per_block=st.sampled_from([0, 1024, 4096, 16384]),
)

_patterns = st.sampled_from(list(AccessPattern))


@given(
    gen=st.sampled_from(sorted(_DETAILED_SPECS)),
    profile=_profiles,
)
@settings(max_examples=120, deadline=None)
def test_occupancy_never_exceeds_hardware_limits(gen, profile):
    model = _DETAILED_SPECS[gen].model
    if not model.feasible(profile):
        return  # infeasible launch shapes are rejected, not clamped
    occ = model.occupancy(profile)
    sm = model.sm
    assert 1 <= occ.active_blocks <= sm.max_blocks_per_sm
    assert occ.active_warps <= sm.max_warps_per_sm
    assert occ.active_blocks * profile.threads_per_block <= sm.max_threads_per_sm
    assert (
        occ.active_blocks * profile.threads_per_block * profile.regs_per_thread
        <= sm.registers_per_sm
    )
    if profile.shared_mem_per_block:
        assert (
            occ.active_blocks * profile.shared_mem_per_block
            <= sm.shared_mem_per_sm
        )
    assert 0.0 < occ.fraction <= 1.0


@given(
    gen=st.sampled_from(sorted(_DETAILED_SPECS)),
    h1_lo=st.floats(min_value=0.0, max_value=1.0),
    h1_hi=st.floats(min_value=0.0, max_value=1.0),
    h2=st.floats(min_value=0.0, max_value=1.0),
    pattern=_patterns,
    nbytes=st.floats(min_value=1e3, max_value=1e9),
)
@settings(max_examples=120, deadline=None)
def test_kernel_time_monotone_in_l1_hit_rate(gen, h1_lo, h1_hi, h2, pattern, nbytes):
    if h1_lo > h1_hi:
        h1_lo, h1_hi = h1_hi, h1_lo
    spec = _DETAILED_SPECS[gen]
    base = spec.model
    slow = dataclasses.replace(
        spec, model=base.with_hit_rates(l1_hit_rate=h1_lo, l2_hit_rate=h2)
    )
    fast = dataclasses.replace(
        spec, model=base.with_hit_rates(l1_hit_rate=h1_hi, l2_hit_rate=h2)
    )
    assert fast.roofline_time(0.0, nbytes, pattern) <= (
        slow.roofline_time(0.0, nbytes, pattern) + 1e-15
    )


@given(
    gen=st.sampled_from(sorted(_DETAILED_SPECS)),
    h1=st.floats(min_value=0.0, max_value=1.0),
    h2_lo=st.floats(min_value=0.0, max_value=1.0),
    h2_hi=st.floats(min_value=0.0, max_value=1.0),
    pattern=_patterns,
    nbytes=st.floats(min_value=1e3, max_value=1e9),
)
@settings(max_examples=120, deadline=None)
def test_kernel_time_monotone_in_l2_hit_rate(gen, h1, h2_lo, h2_hi, pattern, nbytes):
    if h2_lo > h2_hi:
        h2_lo, h2_hi = h2_hi, h2_lo
    spec = _DETAILED_SPECS[gen]
    base = spec.model
    slow = dataclasses.replace(
        spec, model=base.with_hit_rates(l1_hit_rate=h1, l2_hit_rate=h2_lo)
    )
    fast = dataclasses.replace(
        spec, model=base.with_hit_rates(l1_hit_rate=h1, l2_hit_rate=h2_hi)
    )
    assert fast.roofline_time(0.0, nbytes, pattern) <= (
        slow.roofline_time(0.0, nbytes, pattern) + 1e-15
    )


@given(
    h1=st.floats(min_value=0.0, max_value=1.0),
    h2=st.floats(min_value=0.0, max_value=1.0),
    scale=st.floats(min_value=1.0, max_value=4.0),
    pattern=_patterns,
    nbytes=st.floats(min_value=1e3, max_value=1e9),
)
@settings(max_examples=120, deadline=None)
def test_kernel_time_monotone_in_bandwidth(h1, h2, scale, pattern, nbytes):
    spec = _DETAILED_SPECS["fermi"]
    mem = spec.model.memory

    def with_mem(factor):
        return dataclasses.replace(
            spec,
            model=DetailedDeviceModel(
                sm=spec.model.sm,
                memory=MemoryHierarchy(
                    l1_hit_rate=h1,
                    l2_hit_rate=h2,
                    l1_bandwidth_gbs=mem.l1_bandwidth_gbs * factor,
                    l2_bandwidth_gbs=mem.l2_bandwidth_gbs * factor,
                    dram_bandwidth_gbs=mem.dram_bandwidth_gbs * factor,
                ),
                latency=spec.model.latency,
            ),
        )

    assert with_mem(scale).roofline_time(0.0, nbytes, pattern) <= (
        with_mem(1.0).roofline_time(0.0, nbytes, pattern) + 1e-15
    )


@given(
    flops=st.floats(min_value=0.0, max_value=1e12),
    nbytes=st.floats(min_value=0.0, max_value=1e10),
    pattern=_patterns,
    which=st.sampled_from(["c2050", "c1060"]),
)
@settings(max_examples=200, deadline=None)
def test_explicit_coarse_model_is_byte_identical(flops, nbytes, pattern, which):
    bare = tesla_c2050() if which == "c2050" else tesla_c1060()
    explicit = dataclasses.replace(bare, model=CoarseDeviceModel())
    assert explicit.roofline_time(flops, nbytes, pattern) == (
        bare.roofline_time(flops, nbytes, pattern)
    )


@given(
    n_sms=st.integers(min_value=1, max_value=128),
    cores=st.sampled_from([32, 64, 128, 192]),
    profile=_profiles,
)
@settings(max_examples=80, deadline=None)
def test_random_sm_configs_keep_occupancy_legal(n_sms, cores, profile):
    model = DetailedDeviceModel(
        sm=SMConfig(
            n_sms=n_sms,
            cores_per_sm=cores,
            clock_ghz=1.0,
            max_threads_per_sm=2048,
            max_blocks_per_sm=16,
            registers_per_sm=64 * 1024,
            shared_mem_per_sm=48 * 1024,
        ),
        memory=MemoryHierarchy(0.3, 0.5, 2000.0, 500.0, 200.0),
        latency=LatencyTable(),
    )
    if not model.feasible(profile):
        return
    occ = model.occupancy(profile)
    assert occ.active_warps <= model.sm.max_warps_per_sm
    assert occ.active_blocks <= model.sm.max_blocks_per_sm
