"""Property-based invariants of the engine and coherence protocol."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.data import CopyState

# one operation = (kind, value) where kind selects host/CPU/GPU access
_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["gpu_w", "gpu_rw", "gpu_r", "cpu_rw", "host_read", "host_write"]
        ),
        st.floats(min_value=-4.0, max_value=4.0, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=24,
)


def _codelets():
    def set_fn(ctx, arr, v):
        arr[:] = v

    def add_fn(ctx, arr, v):
        arr += v

    def read_fn(ctx, arr, v):
        float(arr.sum())

    cost = lambda ctx, dev: 1e-5
    return {
        "gpu_w": Codelet("gw", [ImplVariant("gw", Arch.CUDA, set_fn, cost)]),
        "gpu_rw": Codelet("ga", [ImplVariant("ga", Arch.CUDA, add_fn, cost)]),
        "gpu_r": Codelet("gr", [ImplVariant("gr", Arch.CUDA, read_fn, cost)]),
        "cpu_rw": Codelet("ca", [ImplVariant("ca", Arch.CPU, add_fn, cost)]),
    }


_MODES = {"gpu_w": "w", "gpu_rw": "rw", "gpu_r": "r", "cpu_rw": "rw"}


@given(ops=_OPS)
@settings(max_examples=60, deadline=None)
def test_any_access_sequence_matches_numpy_semantics(ops):
    """Whatever interleaving of device tasks and host accesses happens,
    the observable values equal a plain sequential NumPy execution, and
    the coherence state stays legal throughout."""
    rt = Runtime(platform_c2050(), scheduler="eager", seed=1, noise_sigma=0.0)
    codelets = _codelets()
    n = 32
    data = np.zeros(n, dtype=np.float32)
    model = np.zeros(n, dtype=np.float32)  # the oracle
    h = rt.register(data)
    for kind, value in ops:
        if kind == "host_read":
            rt.acquire(h, "r")
            assert np.array_equal(data, model)
        elif kind == "host_write":
            rt.acquire(h, "rw")
            data[:] = value
            model[:] = value
        else:
            rt.submit(
                codelets[kind], [(h, _MODES[kind])], scalar_args=(value,)
            )
            if kind == "gpu_w":
                model[:] = value
            elif kind in ("gpu_rw", "cpu_rw"):
                model += value
        # protocol invariants hold after every step
        assert h.valid_nodes(), "some copy must stay valid"
        modified = [s for s in h._states if s is CopyState.MODIFIED]
        assert len(modified) <= 1
    rt.acquire(h, "r")
    assert np.array_equal(data, model)
    rt.shutdown()


@given(ops=_OPS)
@settings(max_examples=40, deadline=None)
def test_writer_intervals_are_exclusive(ops):
    """Sequential consistency: a writing task's [start, end) never
    overlaps any other task's interval on the same handle."""
    rt = Runtime(platform_c2050(), scheduler="eager", seed=2, noise_sigma=0.0)
    codelets = _codelets()
    h = rt.register(np.zeros(16, dtype=np.float32))
    intervals = []  # (start, end, writes)
    for kind, value in ops:
        if kind.startswith("host"):
            continue
        task = rt.submit(codelets[kind], [(h, _MODES[kind])], scalar_args=(value,))
        intervals.append(task)
    rt.wait_for_all()
    spans = [
        (t.start_time, t.end_time, _MODES_WRITES[_MODES_OF[t.codelet.name]])
        for t in intervals
    ]
    for i, (s1, e1, w1) in enumerate(spans):
        for s2, e2, w2 in spans[i + 1:]:
            if w1 or w2:
                assert e1 <= s2 or e2 <= s1, "writer overlapped another task"
    rt.shutdown()


_MODES_OF = {"gw": "gpu_w", "ga": "gpu_rw", "gr": "gpu_r", "ca": "cpu_rw"}
_MODES_WRITES = {
    "gpu_w": True,
    "gpu_rw": True,
    "gpu_r": False,
    "cpu_rw": True,
}


@given(
    n_tasks=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
    policy=st.sampled_from(["eager", "random", "ws", "dmda"]),
)
@settings(max_examples=40, deadline=None)
def test_every_task_runs_exactly_once(n_tasks, seed, policy):
    rt = Runtime(platform_c2050(), scheduler=policy, seed=seed)
    cl = _codelets()["cpu_rw"]
    handles = [rt.register(np.zeros(8, dtype=np.float32)) for _ in range(3)]
    for i in range(n_tasks):
        rt.submit(cl, [(handles[i % 3], "rw")], scalar_args=(1.0,))
    rt.wait_for_all()
    assert rt.trace.n_tasks == n_tasks
    # values: each handle accumulated its share of +1 increments
    for j, h in enumerate(handles):
        expected = len([i for i in range(n_tasks) if i % 3 == j])
        rt.acquire(h, "r")
        assert h.array[0] == expected
    rt.shutdown()


@given(
    n_chunks=st.integers(min_value=1, max_value=16),
    n=st.integers(min_value=16, max_value=512),
)
@settings(max_examples=30, deadline=None)
def test_partition_roundtrip_preserves_values(n_chunks, n):
    rt = Runtime(platform_c2050(), scheduler="eager", seed=3, noise_sigma=0.0)

    def bump(ctx, arr):
        arr += 1.0

    cl = Codelet("b", [ImplVariant("b", Arch.CUDA, bump, lambda c, d: 1e-5)])
    data = np.arange(n, dtype=np.float32)
    h = rt.register(data)
    children = rt.partition_equal(h, n_chunks)
    for child in children:
        rt.submit(cl, [(child, "rw")])
    rt.unpartition(h)
    rt.acquire(h, "r")
    assert np.array_equal(data, np.arange(n, dtype=np.float32) + 1.0)
    rt.shutdown()


@given(
    n_tasks=st.integers(min_value=2, max_value=25),
    seed=st.integers(min_value=0, max_value=5000),
    policy=st.sampled_from(["eager", "random", "ws", "dmda"]),
)
@settings(max_examples=40, deadline=None)
def test_worker_intervals_never_overlap(n_tasks, seed, policy):
    """A worker executes at most one task at a time, under any policy."""
    rt = Runtime(platform_c2050(), scheduler=policy, seed=seed)
    codelets = _codelets()
    handles = [rt.register(np.zeros(64, dtype=np.float32)) for _ in range(4)]
    kinds = ["gpu_rw", "cpu_rw", "gpu_r"]
    for i in range(n_tasks):
        kind = kinds[(i * 7 + seed) % 3]
        rt.submit(codelets[kind], [(handles[i % 4], _MODES[kind])], scalar_args=(1.0,))
    rt.wait_for_all()
    per_worker: dict[int, list[tuple[float, float]]] = {}
    for rec in rt.trace.tasks:
        for w in rec.worker_ids:
            per_worker.setdefault(w, []).append((rec.start_time, rec.end_time))
    for spans in per_worker.values():
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2 + 1e-12, "worker double-booked"
    rt.shutdown()


@given(
    n_tasks=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=5000),
)
@settings(max_examples=30, deadline=None)
def test_timeline_causality(n_tasks, seed):
    """Submit <= ready <= start <= end for every task; transfers finish
    before the task that needed them starts."""
    rt = Runtime(platform_c2050(), scheduler="dmda", seed=seed)
    codelets = _codelets()
    h = rt.register(np.zeros(256, dtype=np.float32))
    for i in range(n_tasks):
        kind = ["gpu_rw", "cpu_rw"][i % 2]
        rt.submit(codelets[kind], [(h, "rw")], scalar_args=(1.0,))
    rt.wait_for_all()
    for rec in rt.trace.tasks:
        assert rec.submit_time <= rec.ready_time + 1e-12
        assert rec.ready_time <= rec.start_time + 1e-12
        assert rec.start_time <= rec.end_time
    rt.shutdown()
