"""Property: fault schedules never corrupt results, only timelines.

Whatever faults strike — transient kernel failures, transfer corruption,
a dying GPU — a run that completes must produce bit-identical kernel
results to the fault-free run, because kernels execute exactly once, on
the attempt that finally succeeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnrecoverableTaskError
from repro.hw.faults import FaultModel
from repro.hw.presets import platform_c2050
from repro.runtime import RecoveryPolicy, Runtime

from tests.conftest import make_axpy_codelet

_N = 512
_N_TASKS = 6


def _run(faults, scheduler, seed):
    rt = Runtime(
        platform_c2050(),
        scheduler=scheduler,
        seed=seed,
        faults=faults,
        recovery=RecoveryPolicy(max_retries=10),
    )
    cl = make_axpy_codelet()
    y = rt.register(np.zeros(_N, dtype=np.float32))
    x = rt.register(np.ones(_N, dtype=np.float32))
    for i in range(_N_TASKS):
        rt.submit(
            cl, [(y, "rw"), (x, "r")], ctx={"n": _N},
            scalar_args=(float(i + 1),),
        )
    rt.wait_for_all()
    rt.acquire(y, "r")
    result = y.array.copy()
    makespan = rt.shutdown()
    return makespan, result


@given(
    kernel_rate=st.floats(min_value=0.0, max_value=0.6),
    transfer_rate=st.floats(min_value=0.0, max_value=0.4),
    fault_seed=st.integers(min_value=0, max_value=2**31 - 1),
    scheduler=st.sampled_from(["eager", "ws", "dmda"]),
)
@settings(max_examples=40, deadline=None)
def test_any_fault_schedule_preserves_results(
    kernel_rate, transfer_rate, fault_seed, scheduler
):
    _, expected = _run(None, scheduler, seed=1)
    faults = FaultModel(
        kernel_fault_rate=kernel_rate,
        transfer_fault_rate=transfer_rate,
        seed=fault_seed,
    )
    try:
        makespan, result = _run(faults, scheduler, seed=1)
    except UnrecoverableTaskError:
        # a hot-enough schedule may legitimately exhaust the retry
        # budget; the property only constrains runs that complete
        return
    assert np.array_equal(result, expected)
    assert makespan > 0


@given(
    loss_fraction=st.floats(min_value=0.01, max_value=1.5),
    scheduler=st.sampled_from(["eager", "ws", "dmda"]),
)
@settings(max_examples=20, deadline=None)
def test_gpu_loss_at_any_time_preserves_results(loss_fraction, scheduler):
    baseline_makespan, expected = _run(None, scheduler, seed=1)
    machine = platform_c2050()
    gpu = machine.gpu_units[0].unit_id
    faults = FaultModel(
        device_loss_at={gpu: baseline_makespan * loss_fraction}, seed=0
    )
    makespan, result = _run(faults, scheduler, seed=1)
    assert np.array_equal(result, expected)
