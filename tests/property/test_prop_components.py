"""Property-based tests for the component-model layer."""

import keyword

from hypothesis import given, settings, strategies as st

from repro.components.cdecl import parse_declaration
from repro.components.constraints import ExpressionConstraint, RangeConstraint
from repro.components.context import ContextParamDecl
from repro.components.interface import InterfaceDescriptor, ParamDecl
from repro.components.xml_io import descriptor_to_string, parse_descriptor_string
from repro.runtime.access import AccessMode

_ident = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: not keyword.iskeyword(s)
)
_ctype = st.sampled_from(
    ["int", "float", "double", "size_t", "float*", "const float*",
     "int*", "const size_t*", "unsigned"]
)


@st.composite
def _params(draw):
    names = draw(
        st.lists(_ident, min_size=1, max_size=6, unique=True)
    )
    return tuple(
        ParamDecl(
            name=name,
            ctype=draw(_ctype),
            access=draw(st.sampled_from(list(AccessMode))),
        )
        for name in names
    )


@given(name=_ident, params=_params())
@settings(max_examples=80, deadline=None)
def test_interface_xml_roundtrip(name, params):
    iface = InterfaceDescriptor(name=name, params=params)
    assert parse_descriptor_string(descriptor_to_string(iface)) == iface


@given(
    name=_ident,
    params=st.lists(
        st.tuples(_ident, st.sampled_from(["int", "float", "const float*", "float*"])),
        min_size=0,
        max_size=6,
        unique_by=lambda t: t[0],
    ),
)
@settings(max_examples=80, deadline=None)
def test_cdecl_roundtrip_through_signature(name, params):
    """Rendering a declaration and re-parsing it is the identity."""
    args = ", ".join(f"{ctype} {pname}" for pname, ctype in params) or "void"
    decl_text = f"void {name}({args});"
    decl = parse_declaration(decl_text)
    assert decl.name == name
    assert [p.name for p in decl.params] == [p for p, _ in params]
    # const pointers read, mutable pointers read-write, scalars read
    for parsed, (_, ctype) in zip(decl.params, params):
        if "*" in ctype and "const" not in ctype:
            assert parsed.access is AccessMode.RW
        else:
            assert parsed.access is AccessMode.R


@given(
    minimum=st.integers(min_value=0, max_value=1000),
    width=st.integers(min_value=0, max_value=1000),
    value=st.integers(min_value=-100, max_value=2100),
)
def test_range_constraint_is_interval_membership(minimum, width, value):
    c = RangeConstraint("n", minimum=minimum, maximum=minimum + width)
    assert c.evaluate({"n": value}) == (minimum <= value <= minimum + width)


@given(
    a=st.integers(min_value=1, max_value=1000),
    b=st.integers(min_value=1, max_value=1000),
    limit=st.integers(min_value=1, max_value=100),
)
def test_expression_constraint_matches_python_eval(a, b, limit):
    c = ExpressionConstraint("x / y <= limit")
    ctx = {"x": a, "y": b, "limit": limit}
    assert c.evaluate(ctx) == (a / b <= limit)


@given(
    lo=st.integers(min_value=1, max_value=100),
    span=st.integers(min_value=0, max_value=20),
    n=st.integers(min_value=1, max_value=6),
)
def test_sample_points_stay_in_declared_range(lo, span, n):
    decl = ContextParamDecl("n", minimum=lo, maximum=lo * (1 + span))
    pts = decl.sample_points(n)
    assert all(lo <= p <= lo * (1 + span) for p in pts)
    assert pts == sorted(pts)
