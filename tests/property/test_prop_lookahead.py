"""Property-based invariants of the lookahead window planner.

Random DAG windows — chain, fanout and diamond segments over a shared
handle pool, with randomized device residency and window sizes — must
always yield runs where:

- every task starts only after all of its dependencies finished (the
  plan respects the DAG, whatever joint placement the DP picked);
- a variant whose selectability guard rejects the call context never
  executes (the planner only ever picks from the candidate set);
- every *planned* window's modeled makespan is at most its greedy
  baseline's (the min(DP, greedy) construction, observed end to end);
- the full trace passes the invariant checker at shutdown
  (``check=True``), coherence invariants included.

The runtime self-calibrates: the warmup phase runs under lookahead too,
whose uncalibrated windows fall back to the inner dmda — exploration and
model-building are dmda's job, planning only starts once the model can
price every candidate.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime

N = 64
N_HANDLES = 6

_SEGMENTS = st.lists(
    st.tuples(
        st.sampled_from(["chain", "fanout", "diamond"]),
        st.integers(min_value=0, max_value=N_HANDLES - 1),  # base handle
        st.integers(min_value=2, max_value=4),  # segment width/length
    ),
    min_size=1,
    max_size=4,
)
_PRIMES = st.lists(st.booleans(), min_size=N_HANDLES, max_size=N_HANDLES)
_WINDOW = st.integers(min_value=3, max_value=10)


def _codelets():
    """Two dual-variant codelets, a GPU-only primer, and one codelet
    carrying a guard-dead variant that must never run."""

    def bump(ctx, *arrays):
        first = arrays[0]
        first += 1.0

    cheap_cpu = lambda ctx, dev: 1e-4
    cheap_gpu = lambda ctx, dev: 3e-5
    alpha = Codelet(
        "prop_alpha",
        [
            ImplVariant("alpha_cpu", Arch.CPU, bump, cheap_cpu),
            ImplVariant("alpha_cuda", Arch.CUDA, bump, cheap_gpu),
        ],
    )
    beta = Codelet(
        "prop_beta",
        [
            ImplVariant("beta_cpu", Arch.CPU, bump, lambda ctx, dev: 5e-5),
            ImplVariant("beta_cuda", Arch.CUDA, bump, lambda ctx, dev: 8e-5),
        ],
    )
    guarded = Codelet(
        "prop_guarded",
        [
            ImplVariant("guarded_cpu", Arch.CPU, bump, cheap_cpu),
            ImplVariant(
                "dead_cuda",
                Arch.CUDA,
                bump,
                cheap_gpu,
                guard=lambda ctx: False,  # never selectable
            ),
        ],
    )
    primer = Codelet(
        "prop_primer",
        [ImplVariant("primer_cuda", Arch.CUDA, bump, cheap_gpu)],
    )
    return alpha, beta, guarded, primer


def _submit(rt, codelet, operands):
    return rt.submit(codelet, operands, ctx={"n": N})


def _build_segment(rt, codelets, kind, base, width, handles, tasks):
    """One DAG segment; dependencies arise from sequential consistency."""
    alpha, beta, guarded, _ = codelets
    pick = (alpha, beta, guarded)
    if kind == "chain":
        for i in range(width):
            tasks.append(
                _submit(rt, pick[i % 3], [(handles[base], "rw")])
            )
    elif kind == "fanout":
        for i in range(width):
            out = handles[(base + 1 + i) % N_HANDLES]
            ops = [(handles[base], "r")]
            if out is not handles[base]:
                ops.append((out, "w"))
            tasks.append(_submit(rt, pick[i % 3], ops))
    else:  # diamond
        left = handles[(base + 1) % N_HANDLES]
        right = handles[(base + 2) % N_HANDLES]
        tasks.append(_submit(rt, alpha, [(handles[base], "rw")]))
        tasks.append(
            _submit(rt, beta, [(handles[base], "r"), (left, "w")])
        )
        tasks.append(
            _submit(rt, guarded, [(handles[base], "r"), (right, "w")])
        )
        tasks.append(
            _submit(
                rt,
                alpha,
                [(left, "r"), (right, "r"), (handles[base], "rw")],
            )
        )


@given(segments=_SEGMENTS, primes=_PRIMES, window=_WINDOW)
@settings(max_examples=25, deadline=None)
def test_random_dag_windows_plan_legally(segments, primes, window):
    rt = Runtime(
        platform_c2050(),
        scheduler="lookahead",
        scheduler_options={"window_size": window, "beam_width": 4},
        seed=3,
        noise_sigma=0.0,
        check=True,
    )
    codelets = _codelets()
    alpha, beta, guarded, primer = codelets
    handles = [
        rt.register(np.zeros(N, dtype=np.float32), f"h{i}")
        for i in range(N_HANDLES)
    ]
    warm = [
        rt.register(np.zeros(N, dtype=np.float32), f"w{i}") for i in range(5)
    ]

    # self-calibration: these windows fall back to dmda, which explores
    # every candidate variant until the model can price it.  Sync after
    # each submission so every observation lands before the next choose
    # — batched independent tasks would let exploration's least-sampled
    # tie-break repeat a variant and leave another under-sampled.
    for cl in (alpha, beta, guarded, primer):
        for h in warm:
            _submit(rt, cl, [(h, "rw")])
            rt.wait_for_all()

    # randomized residency: prime some handles into device memory
    for h, prime in zip(handles, primes):
        if prime:
            _submit(rt, primer, [(h, "rw")])
    rt.wait_for_all()

    tasks: list = []
    for kind, base, width in segments:
        _build_segment(rt, codelets, kind, base, width, handles, tasks)
    rt.wait_for_all()
    sched = rt.scheduler

    # the calibrated DAG phase must actually have produced planned
    # windows, and each one's modeled cost never exceeds its greedy
    # baseline's (the min(DP, greedy) construction)
    planned = [p for p in sched.plans if not p.fallback]
    assert planned, "no window was planned after calibration"
    for plan in planned:
        assert plan.planned_makespan <= plan.greedy_makespan + 1e-9

    # the committed schedule respects every DAG edge
    by_id = {t.task_id: t for t in tasks}
    for t in tasks:
        assert t.end_time >= t.start_time
        for dep_id in t.dep_ids:
            dep = by_id.get(dep_id)
            if dep is not None:
                assert t.start_time >= dep.end_time - 1e-12, (
                    f"task {t.name} started before its dependency "
                    f"{dep.name} finished"
                )

    # a guard-dead variant must never execute, planned or fallback
    assert all(rec.variant != "dead_cuda" for rec in rt.trace.tasks)

    # shutdown runs the full TraceChecker (check=True)
    rt.shutdown()
