"""Property-based tests: smart containers vs a plain NumPy oracle.

Random interleavings of host element accesses, bulk fills and device
tasks must leave a runtime-managed Vector/Matrix observably equal to the
same operations applied to a local NumPy array.  Every runtime is built
with ``check=True``, so each example also validates its trace against
the run invariants at shutdown.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.containers import Matrix, Vector
from repro.hw.description import HOST_NODE
from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _rt():
    return Runtime(
        platform_c2050(), scheduler="eager", seed=1, noise_sigma=0.0,
        check=True,
    )


def _add_codelets():
    def add_fn(ctx, arr, v):
        arr += v

    cost = lambda ctx, dev: 1e-5
    return {
        "cuda": Codelet("ac", [ImplVariant("ac", Arch.CUDA, add_fn, cost)]),
        "cpu": Codelet("ah", [ImplVariant("ah", Arch.CPU, add_fn, cost)]),
    }


_VEC_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["set", "get", "fill", "add_cuda", "add_cpu", "read_all"]
        ),
        st.integers(min_value=0, max_value=15),
        st.floats(min_value=-4.0, max_value=4.0, allow_nan=False, width=32),
    ),
    min_size=1,
    max_size=24,
)


@given(ops=_VEC_OPS)
@settings(max_examples=50, deadline=None)
def test_vector_sequence_matches_numpy_oracle(ops):
    rt = _rt()
    codelets = _add_codelets()
    n = 16
    v = Vector.zeros(n, runtime=rt)
    model = np.zeros(n, dtype=np.float32)
    for kind, i, value in ops:
        if kind == "set":
            v[i] = value
            model[i] = value
        elif kind == "get":
            assert v[i] == model[i]
        elif kind == "fill":
            v.fill(value)
            model[:] = value
        elif kind == "read_all":
            assert np.array_equal(np.asarray(v), model)
        else:
            rt.submit(
                codelets[kind.split("_")[1]],
                [(v.handle, "rw")],
                scalar_args=(value,),
            )
            model += np.float32(value)
    assert np.array_equal(v.to_numpy(), model)
    rt.shutdown()  # validates the trace (check=True)


@given(ops=_VEC_OPS)
@settings(max_examples=30, deadline=None)
def test_matrix_sequence_matches_numpy_oracle(ops):
    rt = _rt()
    codelets = _add_codelets()
    rows, cols = 4, 4
    m = Matrix.zeros(rows, cols, runtime=rt)
    model = np.zeros((rows, cols), dtype=np.float32)
    for kind, flat, value in ops:
        i, j = divmod(flat, cols)
        if kind == "set":
            m[i, j] = value
            model[i, j] = value
        elif kind == "get":
            assert m[i, j] == model[i, j]
        elif kind == "fill":
            m.fill(value)
            model[:, :] = value
        elif kind == "read_all":
            assert np.array_equal(np.asarray(m), model)
        else:
            rt.submit(
                codelets[kind.split("_")[1]],
                [(m.handle, "rw")],
                scalar_args=(value,),
            )
            model += np.float32(value)
    assert np.array_equal(m.to_numpy(), model)
    rt.shutdown()


@given(
    n=st.integers(min_value=8, max_value=128),
    n_chunks=st.integers(min_value=1, max_value=8),
    bump=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False, width=32),
)
@settings(max_examples=30, deadline=None)
def test_vector_partition_roundtrip_matches_oracle(n, n_chunks, bump):
    """Partitioned device updates gather back to the exact oracle state,
    and the traced partition/unpartition accesses pass the checker."""
    rt = _rt()
    codelets = _add_codelets()
    v = Vector(np.arange(n, dtype=np.float32), runtime=rt)
    model = np.arange(n, dtype=np.float32)
    children = v.partition(n_chunks)
    assert len(children) == n_chunks
    for child in children:
        rt.submit(codelets["cuda"], [(child, "rw")], scalar_args=(bump,))
    v.unpartition()
    model += np.float32(bump)
    assert np.array_equal(v.to_numpy(), model)
    rt.shutdown()


@given(
    rows=st.integers(min_value=2, max_value=32),
    n_chunks=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_matrix_row_partition_roundtrip(rows, n_chunks):
    rt = _rt()
    codelets = _add_codelets()
    m = Matrix(np.ones((rows, 3), dtype=np.float32), runtime=rt)
    children = m.partition_rows(n_chunks)
    for child in children:
        rt.submit(codelets["cpu"], [(child, "rw")], scalar_args=(1.0,))
    m.unpartition()
    assert np.array_equal(
        m.to_numpy(), np.full((rows, 3), 2.0, dtype=np.float32)
    )
    rt.shutdown()


@given(value=st.floats(min_value=-4.0, max_value=4.0, allow_nan=False,
                       width=32))
@settings(max_examples=20, deadline=None)
def test_coherence_flush_reports_valid_host_copy(value):
    """After a device write the host copy is stale; any host read flushes
    it home and the introspection API agrees at every step."""
    rt = _rt()
    codelets = _add_codelets()
    v = Vector.zeros(8, runtime=rt)
    assert v.host_is_valid()
    rt.submit(codelets["cuda"], [(v.handle, "rw")], scalar_args=(value,))
    rt.wait_for_all()
    assert not v.host_is_valid()  # GPU owns the only fresh copy
    assert v[0] == np.float32(value)  # implicit flush on element read
    assert v.host_is_valid()
    rt.shutdown()


def test_local_containers_need_no_runtime():
    v = Vector.zeros(4)
    v[1] = 3.0
    assert v.valid_nodes() == [HOST_NODE] and v.host_is_valid()
    m = Matrix.zeros(2, 2)
    m[0, 1] = 2.0
    assert m[0, 1] == 2.0 and m.valid_nodes() == [HOST_NODE]
