"""Property-based tests: perfmodel fits, LOC counting, workloads."""

import math

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.metrics.loc import count_logical_lines
from repro.runtime.perfmodel import PerfModel, RegressionModel
from repro.workloads.sparse import random_csr
from repro.workloads.graphs import random_graph


@given(
    coeff=st.floats(min_value=1e-12, max_value=1e-6),
    exponent=st.floats(min_value=0.5, max_value=3.0),
)
@settings(max_examples=50, deadline=None)
def test_regression_recovers_random_power_laws(coeff, exponent):
    model = RegressionModel(min_samples=4)
    for size in (1e3, 1e4, 1e5, 1e6):
        model.record("v", size, coeff * size**exponent)
    predicted = model.predict("v", 3.3e5)
    expected = coeff * 3.3e5**exponent
    assert predicted is not None
    assert math.isclose(predicted, expected, rel_tol=1e-6)


@given(
    durations=st.lists(
        st.floats(min_value=1e-9, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_history_mean_matches_numpy(durations):
    model = PerfModel()
    fp = ("c", (4,))
    for d in durations:
        model.record(fp, "v", 100.0, d)
    assert model.predict(fp, "v", 100.0) == np.mean(durations).item() or math.isclose(
        model.predict(fp, "v", 100.0), float(np.mean(durations)), rel_tol=1e-9
    )


_code_lines = st.lists(
    st.sampled_from(
        ["x = 1", "y = x + 2", "def f():", "    return 3", "z = [1, 2]",
         "del x" ]
    ),
    min_size=1,
    max_size=10,
)


@given(lines=_code_lines, n_comments=st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_loc_invariant_under_comments_and_blanks(lines, n_comments):
    """Inserting comments and blank lines never changes logical LOC."""
    # keep indentation valid: a "return" only follows a "def"
    fixed = []
    expecting_body = False
    for line in lines:
        if line.startswith("    "):
            if not expecting_body:
                continue
            expecting_body = False
        elif line.endswith(":"):
            expecting_body = True
        fixed.append(line)
    if expecting_body:
        fixed.append("    pass")
    assume(fixed)
    src = "\n".join(fixed) + "\n"
    try:
        base = count_logical_lines(src)
    except Exception:
        assume(False)
    noisy_lines = []
    for i, line in enumerate(fixed):
        noisy_lines.append(line + "  # trailing comment")
        if i < n_comments:
            noisy_lines.append("# standalone comment")
            noisy_lines.append("")
    noisy = "\n".join(noisy_lines) + "\n"
    assert count_logical_lines(noisy) == base


@given(
    nrows=st.integers(min_value=2, max_value=300),
    deg=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_random_csr_always_wellformed(nrows, deg, seed):
    mat = random_csr(nrows, nrows, deg, seed=seed)
    assert mat.nnz == nrows * deg
    assert mat.rowptr[0] == 0 and mat.rowptr[-1] == mat.nnz
    assert (np.diff(mat.rowptr) == deg).all()
    assert mat.colidxs.min() >= 0 and mat.colidxs.max() < nrows


@given(
    n=st.integers(min_value=2, max_value=300),
    deg=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_random_graph_offsets_consistent(n, deg, seed):
    nodes, edges = random_graph(n, deg, seed=seed)
    assert len(nodes) == n + 1
    assert nodes[-1] == len(edges)
    assert (np.diff(nodes) >= 1).all()
    assert edges.min() >= 0 and edges.max() < n


@given(
    labels=st.lists(
        st.sampled_from(["cpu", "omp", "gpu"]), min_size=9, max_size=9
    )
)
@settings(max_examples=60, deadline=None)
def test_compacted_tree_reproduces_any_grid_labelling(labels):
    """Whatever winner pattern a 3x3 scenario grid carries, the
    compacted decision tree reproduces it exactly (axis-aligned grids
    are always separable by threshold trees)."""
    from repro.components.context import ContextInstance
    from repro.composer.compaction import compact_dispatch_table
    from repro.composer.static_comp import DispatchEntry, DispatchTable

    sizes = (16, 256, 4096)
    entries = []
    for i, n in enumerate(sizes):
        for j, m in enumerate(sizes):
            entries.append(
                DispatchEntry(
                    scenario=ContextInstance({"n": n, "m": m}),
                    variant=labels[i * 3 + j],
                    predicted_time=1.0,
                )
            )
    table = DispatchTable("grid", entries)
    tree = compact_dispatch_table(table, max_depth=8)
    for entry in entries:
        assert tree.lookup(entry.scenario.as_dict()) == entry.variant
