"""Deprecation shims: old entry points keep working and warn exactly once."""

import warnings

import pytest

from repro.errors import PeppherError
from repro.hw.description import (
    MachineDescription,
    reset_positional_warning,
)
from repro.hw.presets import platform_c2050
from repro.runtime import Runtime
from repro.runtime.events import reset_hook_warning
from repro.runtime.schedulers import (
    DmdaScheduler,
    EagerScheduler,
    reset_instance_warning,
)
from repro.serve import CompositionServer, TenantSpec


@pytest.fixture(autouse=True)
def fresh_warning_state():
    reset_instance_warning()
    reset_hook_warning()
    reset_positional_warning()
    yield
    reset_instance_warning()
    reset_hook_warning()
    reset_positional_warning()


def _tenants():
    return [
        TenantSpec(
            "t0", workload="sgemm", size=48, rate_hz=None, n_requests=2
        )
    ]


def test_runtime_scheduler_instance_warns_exactly_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        rt1 = Runtime(platform_c2050(), scheduler=DmdaScheduler())
        rt2 = Runtime(platform_c2050(), scheduler=EagerScheduler())
        rt1.shutdown()
        rt2.shutdown()
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "Runtime" in message and "make_scheduler" in message


def test_old_instance_form_still_works():
    sched = DmdaScheduler(calibration_samples=3)
    with pytest.warns(DeprecationWarning):
        rt = Runtime(platform_c2050(), scheduler=sched)
    assert rt.scheduler is sched
    rt.shutdown()


def test_server_scheduler_instance_warns_and_works():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        server = CompositionServer(
            platform_c2050(), tenants=_tenants(), scheduler=EagerScheduler()
        )
        server.run()
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    # exactly one warning, attributed to the server entry point — the
    # server's internal Runtime construction must not warn again
    assert len(deprecations) == 1
    assert "CompositionServer" in str(deprecations[0].message)


def test_server_instance_rejects_scheduler_options():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(PeppherError):
            CompositionServer(
                platform_c2050(),
                tenants=_tenants(),
                scheduler=EagerScheduler(),
                scheduler_options={"beta": 2.0},
            )


def test_string_scheduler_paths_never_warn():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        rt = Runtime(
            platform_c2050(), scheduler="dmda", scheduler_options={"beta": 2.0}
        )
        assert rt.scheduler.beta == 2.0
        rt.shutdown()
        server = CompositionServer(
            platform_c2050(), tenants=_tenants(), scheduler="fair"
        )
        server.run()
        server2 = CompositionServer(
            platform_c2050(),
            tenants=_tenants(),
            scheduler="dmda",
            scheduler_options={"beta": 1.5},
        )
        server2.run()
    assert not [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]


def _noop_codelet():
    import numpy as np

    from repro.runtime import Arch, Codelet, ImplVariant

    return Codelet(
        "noop",
        [
            ImplVariant(
                "noop_cpu", Arch.CPU, lambda ctx, *a: None, lambda c, d: 1e-5
            )
        ],
    )


def test_engine_hook_pair_warns_exactly_once_and_still_delivers():
    import numpy as np

    rt = Runtime(platform_c2050(), scheduler="eager", seed=0)
    submitted, completed = [], []
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        rt.engine.add_submit_hook(submitted.append)
        rt.engine.add_complete_hook(completed.append)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    # one warning for the pair, no matter how many times either is called
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "add_submit_hook" in message
    assert "Engine.events.subscribe" in message
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    task = rt.submit(_noop_codelet(), [(h, "r")], name="t0")
    rt.wait_for_all()
    rt.shutdown()
    # the shims still deliver Task objects, like the old hooks did
    assert submitted == [task]
    assert completed == [task]


# -- positional MachineDescription construction -----------------------------

def test_machine_positional_warns_exactly_once():
    m = platform_c2050()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        m1 = MachineDescription("a", list(m.units), dict(m.links))
        m2 = MachineDescription("b", list(m.units))
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "positional construction" in message
    assert "repro.hw.machine(name)" in message
    # the shim still builds a working machine
    assert m1.name == "a" and m1.n_memory_nodes == m.n_memory_nodes
    assert m2.name == "b" and m2.links == {}


def test_machine_keyword_form_never_warns():
    m = platform_c2050()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fresh = MachineDescription(
            name="kw", units=list(m.units), links=dict(m.links)
        )
        platform_c2050()  # presets go through make_machine
    assert not [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert fresh.name == "kw"


def test_machine_positional_duplicate_value_rejected():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="multiple values"):
            MachineDescription("dup", name="dup")


def test_machine_positional_too_many_args_rejected():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError, match="at most 3"):
            MachineDescription("m", [], {}, 42)


def test_machine_requires_name():
    with pytest.raises(TypeError, match="requires a name"):
        MachineDescription(units=[])
