"""Hand-written runtime versions: correctness parity with tool mode."""

import numpy as np
import pytest

from repro.apps import bfs, cfd, hotspot, lud, nw, particlefilter, pathfinder, sgemm, spmv
from repro.apps import odesolver as ode
from repro.direct import DIRECT_MODULES
from repro.workloads import gemm_inputs, hotspot_inputs, pathfinder_wall, random_csr, random_graph


def test_all_ten_apps_have_direct_versions():
    assert len(DIRECT_MODULES) == 10


def test_spmv_direct_matches_reference():
    y = DIRECT_MODULES["spmv"].main(nrows=256, seed=3)
    mat = random_csr(256, 256, 8, seed=3)
    x = np.ones(256, dtype=np.float32)
    ref = spmv.reference(mat.values, mat.colidxs, mat.rowptr, x, 256)
    assert np.allclose(y, ref, rtol=1e-4)


def test_sgemm_direct_matches_reference():
    c = DIRECT_MODULES["sgemm"].main(size=48, seed=4)
    a, b, c0 = gemm_inputs(48, 48, 48, seed=4)
    assert np.allclose(c.reshape(48, 48), sgemm.reference(48, 48, 48, 1.0, a, b, 0.0, c0), rtol=1e-3)


def test_bfs_direct_matches_reference():
    costs = DIRECT_MODULES["bfs"].main(n_nodes=300, seed=5)
    nodes, edges = random_graph(300, 8, seed=5)
    assert (costs == bfs.reference(nodes, edges, 300, 0)).all()


def test_cfd_direct_matches_reference():
    u = DIRECT_MODULES["cfd"].main(ncells=200, seed=6)
    u0, nb = cfd.make_grid(200, seed=6)
    assert np.allclose(u, cfd.reference(u0, nb, 200, 8), rtol=1e-4)


def test_hotspot_direct_matches_reference():
    temp = DIRECT_MODULES["hotspot"].main(size=24, seed=7)
    power, temp0 = hotspot_inputs(24, 24, seed=7)
    assert np.allclose(temp, hotspot.reference(power, temp0, 24, 24, 16), rtol=1e-4)


def test_lud_direct_matches_reference():
    A = DIRECT_MODULES["lud"].main(n=96, seed=8)
    A0 = lud.make_spd_matrix(96, seed=8)
    assert np.allclose(A, lud.reference(A0, 96), rtol=2e-2, atol=2e-2)


def test_nw_direct_matches_reference():
    score = DIRECT_MODULES["nw"].main(n=40, seed=9)
    s1, s2 = nw.make_sequences(40, seed=9)
    assert (score == nw.reference(s1, s2, 40, 2)).all()


def test_particlefilter_direct_matches_reference():
    track = DIRECT_MODULES["particlefilter"].main(n_particles=128, seed=10)
    frames, _ = particlefilter.make_video(8, 64, seed=10)
    assert np.allclose(track, particlefilter.reference(frames, 8, 64, 128, 10))


def test_pathfinder_direct_matches_reference():
    result = DIRECT_MODULES["pathfinder"].main(cols=300, seed=11)
    wall = pathfinder_wall(50, 300, seed=11)
    assert (result == pathfinder.reference(wall, 50, 300)).all()


def test_odesolver_direct_matches_reference():
    y, elapsed, calls = DIRECT_MODULES["odesolver"].main(n=128, steps=15)
    assert np.allclose(y, ode.reference_solution(128, 15), rtol=1e-4)
    assert elapsed > 0 and calls == 2 + 15 * 18 + 1


def test_odesolver_direct_single_backend_builds():
    y_cpu, t_cpu, _ = DIRECT_MODULES["odesolver"].main(
        n=64, steps=5, variants=("cpu",), scheduler="eager"
    )
    y_cuda, t_cuda, _ = DIRECT_MODULES["odesolver"].main(
        n=64, steps=5, variants=("cuda",), scheduler="eager"
    )
    assert np.allclose(y_cpu, y_cuda, rtol=1e-5)  # same values, different time
    assert t_cpu != t_cuda


def test_direct_codelets_cover_three_backends():
    for name, module in DIRECT_MODULES.items():
        if name == "odesolver":
            codelets = module.build_codelets()
            for cl in codelets.values():
                assert len(cl.variants) == 3
        else:
            assert len(module.build_codelet().variants) == 3
