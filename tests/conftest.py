"""Shared fixtures: machines, simple codelets, runtime factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.devices import AccessPattern
from repro.hw.presets import cpu_only, platform_c1060, platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def pytest_addoption(parser):
    parser.addoption(
        "--check-invariants",
        action="store_true",
        default=False,
        help="run the repro.check trace invariant checker at every "
        "Runtime/Session shutdown (also enabled by REPRO_CHECK=1)",
    )


@pytest.fixture(autouse=True, scope="session")
def _invariant_checking(request):
    """Turn shutdown-time trace checking on for the whole suite when
    ``--check-invariants`` (or ``REPRO_CHECK=1``) is given."""
    from repro.check.config import set_default_check

    if request.config.getoption("--check-invariants"):
        set_default_check(True)
        yield
        set_default_check(None)
    else:
        yield


@pytest.fixture
def machine():
    """Default 4-core + C2050 machine (3 CPU workers + 1 GPU)."""
    return platform_c2050()


@pytest.fixture
def machine_c1060():
    return platform_c1060()


@pytest.fixture
def machine_cpu_only():
    return cpu_only(4)


def make_axpy_codelet(archs=("cpu", "openmp", "cuda")) -> Codelet:
    """y += a*x codelet with configurable backends (test workhorse)."""

    def fn(ctx, y, x, a):
        y += a * x

    def cost_cpu(ctx, dev):
        n = ctx["n"]
        return dev.roofline_time(2 * n, 12 * n, AccessPattern.REGULAR)

    def cost_openmp(ctx, dev):
        n = ctx["n"]
        k = ctx.get("ncores", 4)
        return dev.roofline_time(2 * n / k, 12 * n / min(k, 3), AccessPattern.REGULAR)

    def cost_cuda(ctx, dev):
        n = ctx["n"]
        return dev.roofline_time(2 * n, 12 * n, AccessPattern.REGULAR)

    arch_map = {
        "cpu": (Arch.CPU, cost_cpu),
        "openmp": (Arch.OPENMP, cost_openmp),
        "cuda": (Arch.CUDA, cost_cuda),
    }
    variants = [
        ImplVariant(f"axpy_{name}", arch_map[name][0], fn, arch_map[name][1])
        for name in archs
    ]
    return Codelet("axpy", variants)


@pytest.fixture
def axpy_codelet():
    return make_axpy_codelet()


@pytest.fixture
def runtime(machine):
    rt = Runtime(machine, scheduler="eager", seed=0, noise_sigma=0.0)
    yield rt
    try:
        rt.shutdown()
    except Exception:
        pass


@pytest.fixture
def dmda_runtime(machine):
    rt = Runtime(machine, scheduler="dmda", seed=0)
    yield rt
    try:
        rt.shutdown()
    except Exception:
        pass


def vecs(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal(n).astype(np.float32),
        rng.standard_normal(n).astype(np.float32),
    )
