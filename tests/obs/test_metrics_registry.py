"""Metrics primitives: counters, gauges, histograms, registry, exposition."""

import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    exponential_buckets,
)


# ---------------------------------------------------------------------------
# bucket ladder
# ---------------------------------------------------------------------------


def test_exponential_buckets_shape():
    buckets = exponential_buckets(1e-6, 2.0, 24)
    assert len(buckets) == 24
    assert buckets[0] == pytest.approx(1e-6)
    for lo, hi in zip(buckets, buckets[1:]):
        assert hi == pytest.approx(lo * 2.0)
    assert DEFAULT_BUCKETS == buckets


@pytest.mark.parametrize(
    "start,factor,count",
    [(0.0, 2.0, 4), (-1.0, 2.0, 4), (1e-6, 1.0, 4), (1e-6, 2.0, 0)],
)
def test_exponential_buckets_rejects_bad_specs(start, factor, count):
    with pytest.raises(MetricError):
        exponential_buckets(start, factor, count)


# ---------------------------------------------------------------------------
# counters
# ---------------------------------------------------------------------------


def test_counter_inc_and_value():
    reg = MetricsRegistry()
    c = reg.counter("c_total", labelnames=("k",))
    c.inc(k="a")
    c.inc(2.5, k="a")
    c.inc(k="b")
    assert c.value(k="a") == pytest.approx(3.5)
    assert c.value(k="b") == 1.0
    assert c.value(k="never") == 0.0


def test_counter_rejects_decrease():
    reg = MetricsRegistry()
    c = reg.counter("c_total")
    with pytest.raises(MetricError):
        c.inc(-1.0)
    with pytest.raises(MetricError):
        c.labels().inc(-1.0)


def test_counter_label_mismatch():
    reg = MetricsRegistry()
    c = reg.counter("c_total", labelnames=("k",))
    with pytest.raises(MetricError):
        c.inc()  # missing label
    with pytest.raises(MetricError):
        c.inc(k="a", extra="b")  # surplus label
    with pytest.raises(MetricError):
        c.inc(wrong="a")  # wrong name


def test_counter_children_share_series():
    reg = MetricsRegistry()
    c = reg.counter("c_total", labelnames=("k",))
    child = c.labels(k="a")
    assert c.labels(k="a") is child  # cached
    child.inc(3)
    c.inc(k="a")
    assert child.value == 4.0
    assert c.value(k="a") == 4.0


# ---------------------------------------------------------------------------
# gauges
# ---------------------------------------------------------------------------


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("g")
    g.set(5)
    g.inc(2)
    g.dec(3)
    assert g.value() == 4.0
    child = g.labels()
    child.set(1.5)
    assert g.value() == 1.5
    child.dec(0.5)
    assert child.value == 1.0


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------


def test_histogram_bucketing_boundaries():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
    # an observation equal to a bound lands in that bound's bucket
    # (Prometheus `le` semantics)
    for v in (0.5, 1.0, 1.5, 4.0, 100.0):
        h.observe(v)
    snap = h.snap()[0]
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(107.0)
    assert snap["buckets"] == [
        [1.0, 2],  # 0.5, 1.0
        [2.0, 3],  # + 1.5
        [4.0, 4],  # + 4.0
        ["+Inf", 5],  # + 100.0
    ]


def test_histogram_child_matches_direct_observe():
    reg = MetricsRegistry()
    h = reg.histogram("h", labelnames=("k",), buckets=(1.0, 2.0))
    child = h.labels(k="a")
    child.observe(0.5)
    h.observe(1.5, k="a")
    assert child.count == 2
    assert child.sum == pytest.approx(2.0)
    assert h.count(k="a") == 2


def test_histogram_quantile_is_bucket_resolution():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 0.6, 1.5, 3.0):
        h.observe(v)
    assert h.quantile(0.5) == 1.0  # 2nd of 4 obs is in the le=1 bucket
    assert h.quantile(1.0) == 4.0
    assert math.isnan(reg.histogram("h2").quantile(0.5))
    with pytest.raises(MetricError):
        h.quantile(1.5)


def test_histogram_rejects_unsorted_buckets():
    reg = MetricsRegistry()
    with pytest.raises(MetricError):
        reg.histogram("h", buckets=(2.0, 1.0))
    with pytest.raises(MetricError):
        reg.histogram("h", buckets=(1.0, 1.0, 2.0))


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------


def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    c1 = reg.counter("c_total", labelnames=("k",))
    c2 = reg.counter("c_total", labelnames=("k",))
    assert c1 is c2
    assert "c_total" in reg
    assert reg.get("c_total") is c1


def test_registry_rejects_kind_and_label_conflicts():
    reg = MetricsRegistry()
    reg.counter("m", labelnames=("k",))
    with pytest.raises(MetricError):
        reg.gauge("m")
    with pytest.raises(MetricError):
        reg.counter("m", labelnames=("other",))
    reg.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(MetricError):
        reg.histogram("h", buckets=(1.0, 3.0))


def test_registry_rejects_bad_names():
    reg = MetricsRegistry()
    with pytest.raises(MetricError):
        reg.counter("9starts_with_digit")
    with pytest.raises(MetricError):
        reg.counter("has space")
    with pytest.raises(MetricError):
        reg.counter("ok_name", labelnames=("bad-label",))
    with pytest.raises(KeyError):
        reg.get("missing")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def test_prometheus_text_format():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", help="All requests", labelnames=("kind",))
    c.inc(3, kind="read")
    g = reg.gauge("depth", unit="tasks")
    g.set(7)
    h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    text = reg.to_prometheus()
    lines = text.splitlines()
    assert "# HELP requests_total All requests" in lines
    assert "# TYPE requests_total counter" in lines
    assert 'requests_total{kind="read"} 3' in lines
    assert "# UNIT depth tasks" in lines
    assert "depth 7" in lines
    assert 'lat_seconds_bucket{le="0.1"} 1' in lines
    assert 'lat_seconds_bucket{le="1"} 2' in lines
    assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
    assert "lat_seconds_sum 0.55" in lines
    assert "lat_seconds_count 2" in lines
    assert text.endswith("\n")
    # metric families are sorted by name
    order = [l.split()[2] for l in lines if l.startswith("# TYPE")]
    assert order == sorted(order)


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    c = reg.counter("c_total", labelnames=("k",))
    c.inc(k='a"b\\c\nd')
    assert 'c_total{k="a\\"b\\\\c\\nd"} 1' in reg.to_prometheus()


def test_empty_registry_exposes_empty_string():
    assert MetricsRegistry().to_prometheus() == ""
    assert MetricsRegistry().snapshot() == {}


# ---------------------------------------------------------------------------
# merging (shard aggregation)
# ---------------------------------------------------------------------------


def test_merge_counters_add_and_gauges_overwrite():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("c_total", labelnames=("k",)).inc(1, k="x")
    b.counter("c_total", labelnames=("k",)).inc(2, k="x")
    b.counter("c_total", labelnames=("k",)).inc(5, k="y")
    a.gauge("g").set(1)
    b.gauge("g").set(9)
    b.gauge("only_b").set(3)
    a.merge(b)
    assert a.get("c_total").value(k="x") == 3.0
    assert a.get("c_total").value(k="y") == 5.0
    assert a.get("g").value() == 9.0
    assert a.get("only_b").value() == 3.0


def test_merge_histograms_bucketwise():
    a, b = MetricsRegistry(), MetricsRegistry()
    ha = a.histogram("h", buckets=(1.0, 2.0))
    hb = b.histogram("h", buckets=(1.0, 2.0))
    ha.observe(0.5)
    hb.observe(1.5)
    hb.observe(10.0)
    a.merge(b)
    snap = ha.snap()[0]
    assert snap["count"] == 3
    assert snap["buckets"] == [[1.0, 1], [2.0, 2], ["+Inf", 3]]
    assert snap["sum"] == pytest.approx(12.0)


def test_merge_rejects_mismatched_schemas():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("m")
    b.gauge("m")
    with pytest.raises(MetricError):
        a.merge(b)
    c, d = MetricsRegistry(), MetricsRegistry()
    c.histogram("h", buckets=(1.0, 2.0))
    d.histogram("h", buckets=(1.0, 4.0))
    with pytest.raises(MetricError):
        c.merge(d)
