"""MetricsSuite: the engine metric catalogue, exact at every read."""

import numpy as np
import pytest

from repro.hw.faults import FaultModel
from repro.hw.presets import platform_c2050
from repro.obs import MetricsRegistry, MetricsSuite
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _codelet(name="noop", cost=1e-6, archs=(Arch.CPU, Arch.CUDA)):
    return Codelet(
        name,
        [
            ImplVariant(
                f"{name}_{a.value}", a, lambda ctx, *args: None, lambda c, d: cost
            )
            for a in archs
        ],
    )


def _runtime(**kw):
    kw.setdefault("scheduler", "eager")
    kw.setdefault("noise_sigma", 0.0)
    kw.setdefault("seed", 0)
    return Runtime(platform_c2050(), **kw)


def _counter_total(suite, name):
    metric = suite.registry.get(name)
    suite.collect()
    return sum(v for _, v in metric.series())


def test_create_normalizes_the_metrics_argument():
    assert MetricsSuite.create(None) is None
    assert MetricsSuite.create(False) is None
    default = MetricsSuite.create(True)
    assert isinstance(default, MetricsSuite)
    assert default.spans is None  # span tracing is the opt-in tier
    custom = MetricsSuite.create({"period_s": 0.5, "trace_spans": True})
    assert custom.period_s == 0.5
    assert custom.spans is not None
    suite = MetricsSuite()
    assert MetricsSuite.create(suite) is suite
    with pytest.raises(TypeError):
        MetricsSuite.create("yes")


def test_catalogue_matches_trace_exactly():
    rt = _runtime()
    suite = MetricsSuite().attach(rt.engine)
    a, b = _codelet("alpha"), _codelet("beta")
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    for i in range(5):
        rt.submit(a, [(h, "r")], name=f"a{i}")
    for i in range(3):
        rt.submit(b, [(h, "r")], name=f"b{i}")
    rt.wait_for_all()
    rt.shutdown()
    trace = rt.engine.trace

    submitted = suite.registry.get("repro_tasks_submitted_total")
    completed = suite.registry.get("repro_tasks_completed_total")
    duration = suite.registry.get("repro_task_duration_seconds")
    queue_wait = suite.registry.get("repro_task_queue_wait_seconds")
    decisions = suite.registry.get("repro_schedule_decisions_total")
    suite.collect()
    assert submitted.value(codelet="alpha") == 5
    assert submitted.value(codelet="beta") == 3
    assert decisions.value(codelet="alpha") == 5
    assert sum(v for _, v in completed.series()) == len(trace.tasks) == 8
    assert queue_wait.count(codelet="alpha") == 5
    # duration histogram saw exactly the recorded kernel times
    total = sum(
        s.sum for _, s in duration.series()
    )
    assert total == pytest.approx(sum(r.duration for r in trace.tasks))


def test_snapshot_is_exact_mid_run_and_at_end():
    rt = _runtime()
    suite = MetricsSuite().attach(rt.engine)
    cod = _codelet()
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    for i in range(4):
        rt.submit(cod, [(h, "r")], name=f"t{i}")
    # mid-run: submissions seen so far are all visible
    assert _counter_total(suite, "repro_tasks_submitted_total") == 4
    for i in range(2):
        rt.submit(cod, [(h, "r")], name=f"late{i}")
    rt.wait_for_all()
    rt.shutdown()
    snap = suite.snapshot()
    series = snap["repro_tasks_submitted_total"]["series"]
    assert sum(s["value"] for s in series) == 6
    assert sum(
        s["count"] for s in snap["repro_task_duration_seconds"]["series"]
    ) == 6


def test_transfers_fold_with_direction_labels():
    rt = _runtime(scheduler="dmda")
    suite = MetricsSuite().attach(rt.engine)
    # CUDA-only codelet forces device placement, hence h2d staging
    cod = _codelet("gpuonly", cost=1e-5, archs=(Arch.CUDA,))
    h = rt.register(np.zeros(1024, dtype=np.float32), "d")
    rt.submit(cod, [(h, "r")], name="t0")
    rt.wait_for_all()
    rt.shutdown()
    trace = rt.engine.trace
    assert trace.transfers, "expected at least one staging copy"
    suite.collect()
    transfers = suite.registry.get("repro_transfers_total")
    xfer_bytes = suite.registry.get("repro_transfer_bytes_total")
    assert transfers.value(direction="h2d") == sum(
        1 for r in trace.transfers if r.src_node == 0 and r.dst_node != 0
    )
    assert sum(v for _, v in xfer_bytes.series()) == sum(
        r.nbytes for r in trace.transfers
    )


def test_faults_and_retries_fold():
    rt = _runtime(
        scheduler="dmda",
        faults=FaultModel(kernel_fault_rate=0.08, seed=3),
    )
    suite = MetricsSuite().attach(rt.engine)
    cod = _codelet(cost=1e-3)
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    for i in range(30):
        rt.submit(cod, [(h, "r")], name=f"t{i}")
    rt.wait_for_all()
    rt.shutdown()
    trace = rt.engine.trace
    assert trace.faults, "fault model injected nothing; raise the rate"
    suite.collect()
    faults = suite.registry.get("repro_faults_total")
    retries = suite.registry.get("repro_schedule_retries_total")
    assert sum(v for _, v in faults.series()) == len(trace.faults)
    assert sum(v for _, v in retries.series()) == trace.n_task_retries
    assert sum(trace.retries_by_codelet.values()) == trace.n_task_retries


def test_attach_counts_only_from_attach_onward():
    rt = _runtime()
    cod = _codelet()
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    rt.submit(cod, [(h, "r")], name="before")
    rt.wait_for_all()
    suite = MetricsSuite().attach(rt.engine)
    rt.submit(cod, [(h, "r")], name="after")
    rt.wait_for_all()
    rt.shutdown()
    assert _counter_total(suite, "repro_tasks_submitted_total") == 1
    assert _counter_total(suite, "repro_tasks_completed_total") == 1


def test_reattach_accumulates_across_engines():
    suite = MetricsSuite()
    for round_ in range(2):
        rt = _runtime(seed=round_)
        suite.attach(rt.engine)
        cod = _codelet()
        h = rt.register(np.zeros(8, dtype=np.float32), "d")
        for i in range(3):
            rt.submit(cod, [(h, "r")], name=f"t{i}")
        rt.wait_for_all()
        rt.shutdown()
    assert _counter_total(suite, "repro_tasks_submitted_total") == 6
    assert _counter_total(suite, "repro_tasks_completed_total") == 6


def test_detach_folds_pending_state():
    rt = _runtime()
    suite = MetricsSuite().attach(rt.engine)
    cod = _codelet()
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    rt.submit(cod, [(h, "r")], name="t0")
    rt.wait_for_all()
    suite.detach()
    assert suite.engine is None
    # folded on detach, and later engine activity is not observed
    rt.submit(cod, [(h, "r")], name="unobserved")
    rt.wait_for_all()
    rt.shutdown()
    assert _counter_total(suite, "repro_tasks_submitted_total") == 1


def test_default_suite_subscribes_no_per_task_events():
    """The overhead budget's structural guarantee: nothing rides the
    per-task hot path — only the shutdown flush is subscribed."""
    rt = _runtime()
    MetricsSuite().attach(rt.engine)
    events = rt.engine.events
    for kind in ("submit", "schedule", "start", "complete", "transfer"):
        assert events.n_subscribers(kind) == 0
    assert events.n_subscribers("flush") == 2  # catalogue + samplers
    rt.shutdown()


def test_shared_registry_is_respected():
    reg = MetricsRegistry()
    suite = MetricsSuite(registry=reg)
    assert suite.registry is reg
    rt = _runtime()
    suite.attach(rt.engine)
    rt.shutdown()
    assert "repro_queue_depth" in reg
