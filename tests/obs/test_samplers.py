"""Lazy virtual-time engine samplers and their registry gauges."""

import numpy as np
import pytest

from repro.hw.presets import platform_c2050
from repro.obs import MetricsSuite
from repro.obs.samplers import EngineSamplers
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _codelet(cost):
    return Codelet(
        "work",
        [
            ImplVariant(
                "work_cpu", Arch.CPU, lambda ctx, *a: None, lambda c, d: cost
            ),
        ],
    )


def _runtime():
    return Runtime(
        platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0
    )


def _run(rt, suite, n=20, cost=1e-3):
    cod = _codelet(cost)
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    for i in range(n):
        rt.submit(cod, [(h, "r")], name=f"t{i}")
    rt.wait_for_all()


def test_period_must_be_positive():
    rt = _runtime()
    with pytest.raises(ValueError):
        EngineSamplers(rt.engine, period_s=0.0)
    rt.shutdown()


def test_flush_produces_boundary_and_tail_samples():
    rt = _runtime()
    suite = MetricsSuite(period_s=1e-3).attach(rt.engine)
    _run(rt, suite, n=20, cost=1e-3)  # ~20 ms of virtual work
    makespan = rt.shutdown()
    samples = suite.samplers.samples
    # one sample per 1 ms boundary crossed, plus the off-boundary tail
    n_boundaries = int(makespan / 1e-3)
    assert len(samples) == n_boundaries + 1
    assert samples[-1].time == pytest.approx(makespan)
    times = [s.time for s in samples]
    assert times == sorted(times)
    # the single CPU worker is saturated: every interior boundary sees
    # it busy and at least one queued task
    interior = samples[1:-2]
    assert interior
    assert all(s.queue_depth >= 1 for s in interior)
    assert all(s.busy_fraction > 0 for s in interior)
    assert suite.samplers.peak_queue_depth() >= 1
    assert 0.0 < suite.samplers.mean_busy_fraction() <= 1.0


def test_snapshot_catches_samplers_up_mid_run():
    rt = _runtime()
    suite = MetricsSuite(period_s=1e-3).attach(rt.engine)
    _run(rt, suite, n=10, cost=1e-3)
    assert suite.samplers.samples == []  # lazy: nothing sampled yet
    now = rt.engine.clock.now
    suite.snapshot()
    # one sample per boundary the virtual clock has crossed so far
    assert abs(len(suite.samplers.samples) - now / 1e-3) <= 1
    assert suite.samplers.samples
    queue_gauge = suite.registry.get("repro_queue_depth")
    busy_gauge = suite.registry.get("repro_worker_busy")
    assert len(busy_gauge) == len(rt.engine.machine.units)
    assert queue_gauge.value() == suite.samplers.latest.queue_depth
    rt.shutdown()


def test_gauges_mirror_last_sample_after_shutdown():
    rt = _runtime()
    suite = MetricsSuite(period_s=1e-3).attach(rt.engine)
    _run(rt, suite, n=5, cost=1e-3)
    rt.shutdown()
    last = suite.samplers.latest
    snap = suite.snapshot()
    assert last.queue_depth == 0  # drained
    assert snap["repro_queue_depth"]["series"][0]["value"] == 0
    assert snap["repro_backlog_seconds"]["series"][0]["value"] == (
        pytest.approx(last.backlog_s)
    )


def test_max_samples_caps_catchup_over_idle_gaps():
    rt = _runtime()
    samplers = EngineSamplers(rt.engine, period_s=1e-6, max_samples=50)
    rt.engine.events.attach(samplers)
    cod = _codelet(5e-3)  # 5 ms task = 5000 microsecond boundaries
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    rt.submit(cod, [(h, "r")], name="t0")
    rt.wait_for_all()
    samplers.catch_up()
    assert len(samplers.samples) <= 51
    rt.shutdown()


def test_sample_points_serialize():
    rt = _runtime()
    suite = MetricsSuite(period_s=1e-3).attach(rt.engine)
    _run(rt, suite, n=3, cost=1e-3)
    rt.shutdown()
    doc = suite.samplers.to_jsonable()
    assert doc and set(doc[0]) == {
        "time",
        "queue_depth",
        "worker_busy",
        "resident_bytes",
        "backlog_s",
    }
