"""Opt-in span tracing: invoke → schedule-wait / transfer / kernel trees."""

import json

import numpy as np
import pytest

from repro.hw.presets import platform_c2050
from repro.obs import MetricsSuite
from repro.runtime import Arch, Codelet, ImplVariant, Runtime


def _codelet(name="work", cost=1e-4, archs=(Arch.CPU, Arch.CUDA)):
    return Codelet(
        name,
        [
            ImplVariant(
                f"{name}_{a.value}", a, lambda ctx, *args: None, lambda c, d: cost
            )
            for a in archs
        ],
    )


def _traced_runtime():
    rt = Runtime(platform_c2050(), scheduler="dmda", seed=0, noise_sigma=0.0)
    suite = MetricsSuite(trace_spans=True).attach(rt.engine)
    return rt, suite


def test_span_tree_per_invocation():
    rt, suite = _traced_runtime()
    cod = _codelet()
    h = rt.register(np.zeros(64, dtype=np.float32), "d")
    for i in range(4):
        rt.submit(cod, [(h, "r")], name=f"t{i}")
    rt.wait_for_all()
    rt.shutdown()
    spans = suite.spans
    assert spans.n_finished == 4
    assert spans.active() == []
    for root in spans.finished:
        assert root.kind == "invoke"
        assert root.name == "work"
        assert not root.open
        kinds = [c.kind for c in root.children]
        assert kinds[0] == "schedule-wait"
        assert "kernel" in kinds
        for child in root.children:
            assert not child.open
            assert root.start <= child.start
            assert child.end <= root.end + 1e-12
        kernel = next(c for c in root.children if c.kind == "kernel")
        assert kernel.duration == pytest.approx(1e-4)


def test_transfer_spans_attach_to_the_staging_task():
    rt, suite = _traced_runtime()
    cod = _codelet("gpuonly", archs=(Arch.CUDA,))
    h = rt.register(np.zeros(1024, dtype=np.float32), "big")
    rt.submit(cod, [(h, "r")], name="t0")
    rt.wait_for_all()
    rt.shutdown()
    root = suite.spans.finished[0]
    transfers = [c for c in root.children if c.kind == "transfer"]
    assert transfers, "expected the h2d staging copy as a child span"
    assert transfers[0].labels["handle"] == "big"
    assert transfers[0].labels["nbytes"] == 4096


def test_spans_queryable_live():
    rt, suite = _traced_runtime()
    cod = _codelet()
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    task = rt.submit(cod, [(h, "r")], name="t0")
    span = suite.spans.for_task(task.task_id)
    assert span is not None
    rt.wait_for_all()
    rt.shutdown()
    assert suite.spans.for_task(task.task_id) is not None
    assert suite.spans.for_task(10_000) is None


def test_chrome_export_overlays_worker_timeline(tmp_path):
    rt, suite = _traced_runtime()
    cod = _codelet()
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    rt.submit(cod, [(h, "r")], name="t0")
    rt.wait_for_all()
    rt.shutdown()
    out = tmp_path / "trace.json"
    suite.save_chrome_trace(out)
    doc = json.loads(out.read_text())
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert 2 in pids  # span overlay
    assert 0 in pids  # worker timeline
    span_events = [e for e in doc["traceEvents"] if e["pid"] == 2]
    assert any(e["name"].startswith("invoke:") for e in span_events)


def test_max_finished_trims_but_counts_everything():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    suite = MetricsSuite(trace_spans=True, max_finished_spans=3).attach(
        rt.engine
    )
    cod = _codelet()
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    for i in range(10):
        rt.submit(cod, [(h, "r")], name=f"t{i}")
    rt.wait_for_all()
    rt.shutdown()
    assert len(suite.spans.finished) == 3
    assert suite.spans.n_finished == 10
