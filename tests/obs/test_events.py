"""Typed engine event stream (`EngineEvents`) and its delivery contract."""

import numpy as np
import pytest

from repro.hw.presets import platform_c2050
from repro.runtime import Arch, Codelet, ImplVariant, Runtime
from repro.runtime.events import (
    EVENT_KINDS,
    CompleteEvent,
    EngineEvents,
    FlushEvent,
    ScheduleEvent,
    SubmitEvent,
)


def _codelet(cost=1e-6):
    return Codelet(
        "noop",
        [
            ImplVariant(
                "noop_cpu", Arch.CPU, lambda ctx, *a: None, lambda c, d: cost
            ),
            ImplVariant(
                "noop_cuda", Arch.CUDA, lambda ctx, *a: None, lambda c, d: cost
            ),
        ],
    )


def _runtime(**kw):
    kw.setdefault("scheduler", "eager")
    kw.setdefault("noise_sigma", 0.0)
    return Runtime(platform_c2050(), seed=0, **kw)


def _run_tasks(rt, n=3):
    cod = _codelet()
    h = rt.register(np.zeros(8, dtype=np.float32), "d")
    for i in range(n):
        rt.submit(cod, [(h, "r")], name=f"t{i}")
    rt.wait_for_all()


# ---------------------------------------------------------------------------
# subscription mechanics
# ---------------------------------------------------------------------------


def test_subscribe_unknown_kind_raises():
    events = EngineEvents()
    with pytest.raises(KeyError):
        events.subscribe("no_such_kind", lambda e: None)


def test_attach_requires_at_least_one_handler():
    class Nothing:
        pass

    with pytest.raises(TypeError):
        EngineEvents().attach(Nothing())


def test_unsubscribe_stops_delivery_and_is_idempotent():
    events = EngineEvents()
    got = []
    undo = events.subscribe("flush", got.append)
    events.emit_flush(1.0)
    undo()
    undo()  # second call is a no-op
    events.emit_flush(2.0)
    assert [e.time for e in got] == [1.0]
    assert events.n_subscribers("flush") == 0


def test_delivery_in_subscription_order():
    events = EngineEvents()
    order = []
    events.subscribe("flush", lambda e: order.append("first"))
    events.subscribe("flush", lambda e: order.append("second"))
    events.emit_flush(0.0)
    assert order == ["first", "second"]


def test_attach_binds_every_on_method_and_detaches():
    class Observer:
        def __init__(self):
            self.seen = []

        def on_submit(self, e):
            self.seen.append(("submit", e))

        def on_flush(self, e):
            self.seen.append(("flush", e))

    events = EngineEvents()
    obs = Observer()
    detach = events.attach(obs)
    assert events.n_subscribers("submit") == 1
    assert events.n_subscribers("flush") == 1
    assert events.n_subscribers() == 2
    detach()
    assert events.n_subscribers() == 0


# ---------------------------------------------------------------------------
# engine integration: one event per lifecycle step, typed payloads
# ---------------------------------------------------------------------------


def test_engine_emits_typed_lifecycle_events():
    rt = _runtime()
    seen = {kind: [] for kind in EVENT_KINDS}
    for kind in EVENT_KINDS:
        rt.engine.events.subscribe(kind, seen[kind].append)
    _run_tasks(rt, n=3)
    rt.shutdown()

    assert len(seen["submit"]) == 3
    assert all(isinstance(e, SubmitEvent) for e in seen["submit"])
    assert [e.task.name for e in seen["submit"]] == ["t0", "t1", "t2"]

    assert len(seen["schedule"]) == 3
    first = seen["schedule"][0]
    assert isinstance(first, ScheduleEvent)
    assert first.attempt == 0
    assert first.decision.variant.name in ("noop_cpu", "noop_cuda")

    assert len(seen["start"]) == 3
    assert len(seen["complete"]) == 3
    done = seen["complete"][0]
    assert isinstance(done, CompleteEvent)
    assert done.record.codelet == "noop"
    assert done.record.end_time == pytest.approx(done.time)

    assert len(seen["flush"]) == 1
    assert isinstance(seen["flush"][0], FlushEvent)


def test_unobserved_engine_has_no_subscribers():
    rt = _runtime()
    _run_tasks(rt)
    assert rt.engine.events.n_subscribers() == 0
    rt.shutdown()


def test_trace_keeps_native_per_codelet_counters():
    rt = _runtime()
    _run_tasks(rt, n=4)
    rt.shutdown()
    trace = rt.engine.trace
    assert trace.submitted_by_codelet == {"noop": 4}
    assert trace.decisions_by_codelet == {"noop": 4}
    assert trace.retries_by_codelet == {}


# ---------------------------------------------------------------------------
# flush ordering: the drain barrier for buffered subscribers
# ---------------------------------------------------------------------------


def test_flush_fires_after_drain_before_shutdown_returns():
    rt = _runtime()
    state = {}

    def on_flush(event):
        # every submitted task must already be complete when flush runs:
        # flush is the point where buffered subscribers finalize, so it
        # must come after the drain but before shutdown-time consumers
        state["n_tasks_at_flush"] = len(rt.engine.trace.tasks)
        state["time"] = event.time

    rt.engine.events.subscribe("flush", on_flush)
    _run_tasks(rt, n=3)
    end = rt.shutdown()
    assert state["n_tasks_at_flush"] == 3
    assert state["time"] == pytest.approx(end)


def test_flush_fires_exactly_once_on_repeated_shutdown():
    rt = _runtime()
    count = []
    rt.engine.events.subscribe("flush", count.append)
    _run_tasks(rt, n=1)
    rt.shutdown()
    rt.shutdown()
    assert len(count) == 1
