"""Tunable parameters and prediction functions."""

import pytest

from repro.components.prediction import (
    MicrobenchTable,
    PredictionFunction,
    resolve_ref,
)
from repro.components.tunables import (
    TunableParam,
    expand_tunables,
    mangle_tunable_suffix,
)
from repro.errors import DescriptorError
from repro.hw.devices import tesla_c2050


# -- tunables ----------------------------------------------------------------

def test_tunable_needs_values_or_default():
    with pytest.raises(DescriptorError):
        TunableParam("tile")


def test_tunable_effective_default():
    assert TunableParam("tile", values=(8, 16)).effective_default == 8
    assert TunableParam("tile", values=(8,), default=16).effective_default == 16


def test_expand_cartesian_product():
    bindings = expand_tunables(
        [TunableParam("tile", values=(8, 16)), TunableParam("buf", values=(1, 2, 3))]
    )
    assert len(bindings) == 6
    assert {"tile": 8, "buf": 2} in bindings


def test_expand_empty():
    assert expand_tunables([]) == [{}]


def test_expand_uses_default_when_no_values():
    bindings = expand_tunables([TunableParam("tile", default=32)])
    assert bindings == [{"tile": 32}]


def test_mangle_suffix_stable_order():
    assert mangle_tunable_suffix({"b": 2, "a": 1}) == "_a1_b2"
    assert mangle_tunable_suffix({}) == ""


# -- prediction ----------------------------------------------------------------

def test_resolve_ref_roundtrip():
    fn = resolve_ref("repro.apps.spmv:cost_cpu")
    assert callable(fn)


def test_resolve_ref_validation():
    with pytest.raises(DescriptorError):
        resolve_ref("no_colon_here")
    with pytest.raises(DescriptorError):
        resolve_ref("repro.apps.spmv:not_there")
    with pytest.raises(DescriptorError):
        resolve_ref("definitely.not.a.module:x")


def test_microbench_interpolates_log_log():
    table = MicrobenchTable()
    table.add(100, 1e-4)
    table.add(10_000, 1e-2)  # slope 1 in log-log
    assert table.predict(1000) == pytest.approx(1e-3, rel=1e-6)


def test_microbench_extrapolates_with_edge_slope():
    table = MicrobenchTable()
    table.add(100, 1e-4)
    table.add(1000, 1e-3)
    assert table.predict(10_000) == pytest.approx(1e-2, rel=1e-6)


def test_microbench_single_sample_scales_linearly():
    table = MicrobenchTable()
    table.add(100, 1e-3)
    assert table.predict(200) == pytest.approx(2e-3)


def test_microbench_validation():
    table = MicrobenchTable()
    with pytest.raises(DescriptorError):
        table.add(-1, 1e-3)
    with pytest.raises(DescriptorError):
        table.predict(100)  # empty


def test_prediction_function_exclusive_inputs():
    with pytest.raises(DescriptorError):
        PredictionFunction()
    with pytest.raises(DescriptorError):
        PredictionFunction(fn=lambda c, d: 1.0, table=MicrobenchTable())


def test_prediction_function_from_callable_ref():
    pred = PredictionFunction.from_ref("repro.apps.spmv:cost_cpu")
    t = pred.predict({"nnz": 10_000, "nrows": 1000}, tesla_c2050())
    assert t > 0


def test_prediction_table_needs_size_key():
    table = MicrobenchTable()
    table.add(10, 1e-3)
    pred = PredictionFunction(table=table, size_key="n")
    assert pred.predict({"n": 10}, tesla_c2050()) == pytest.approx(1e-3)
    with pytest.raises(DescriptorError):
        pred.predict({"m": 10}, tesla_c2050())


def test_prediction_rejects_invalid_output():
    pred = PredictionFunction(fn=lambda c, d: float("nan"))
    with pytest.raises(DescriptorError):
        pred.predict({}, tesla_c2050())
