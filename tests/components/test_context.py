"""Context parameter declarations and instances."""

import pytest

from repro.components.context import (
    ContextInstance,
    ContextParamDecl,
    training_scenarios,
)
from repro.errors import DescriptorError


def test_decl_validation():
    with pytest.raises(DescriptorError):
        ContextParamDecl("n", kind="string")
    with pytest.raises(DescriptorError):
        ContextParamDecl("n", minimum=10, maximum=1)


def test_value_range_check():
    decl = ContextParamDecl("n", minimum=2, maximum=8)
    decl.validate(4)
    with pytest.raises(DescriptorError):
        decl.validate(1)
    with pytest.raises(DescriptorError):
        decl.validate(9)


def test_sample_points_geometric_and_bounded():
    decl = ContextParamDecl("n", minimum=10, maximum=10_000)
    pts = decl.sample_points(4)
    assert pts[0] == 10 and pts[-1] == 10_000
    assert pts == sorted(pts)
    ratios = [pts[i + 1] / pts[i] for i in range(3)]
    assert max(ratios) / min(ratios) < 1.3  # roughly geometric


def test_sample_points_int_kind_rounds():
    decl = ContextParamDecl("n", kind="int", minimum=10, maximum=1000)
    assert all(p == int(p) for p in decl.sample_points(5))


def test_sample_points_single():
    decl = ContextParamDecl("n", minimum=7, maximum=7)
    assert decl.sample_points(3) == [7.0]


def test_context_instance_mapping_protocol():
    ctx = ContextInstance({"n": 10, "m": 20})
    assert ctx["n"] == 10 and len(ctx) == 2
    assert sorted(ctx) == ["m", "n"]
    with pytest.raises(KeyError):
        ctx["missing"]


def test_context_instance_hash_eq():
    a = ContextInstance({"n": 10, "m": 20})
    b = ContextInstance({"m": 20, "n": 10})
    assert a == b and hash(a) == hash(b)
    assert a == {"n": 10, "m": 20}
    assert a != ContextInstance({"n": 11, "m": 20})


def test_training_scenarios_cartesian():
    decls = [
        ContextParamDecl("n", minimum=10, maximum=1000),
        ContextParamDecl("m", minimum=10, maximum=1000),
    ]
    scenarios = training_scenarios(decls, points_per_param=3)
    assert len(scenarios) == 9
    assert all("n" in s and "m" in s for s in scenarios)


def test_training_scenarios_empty_decls():
    assert training_scenarios([]) == [ContextInstance({})]
