"""ImplementationDescriptor.to_variants (ctx-style kernel lowering).

``lower_component`` adapts C-signature kernels for generated code;
``to_variants`` is the direct path for ctx-style callables
(``fn(ctx, *arrays, *scalars)``), useful for hand-built codelets.
"""

import sys
import types

import numpy as np
import pytest

from repro.components import (
    ImplementationDescriptor,
    TunableParam,
    RangeConstraint,
    standard_platforms,
)
from repro.errors import DescriptorError
from repro.runtime.archs import Arch

_PLATFORMS = {p.name: p for p in standard_platforms()}


@pytest.fixture(autouse=True)
def kernel_module():
    """A throwaway module the descriptor refs can resolve against."""
    mod = types.ModuleType("tv_kernels")

    def kernel(ctx, data, scale):
        data *= scale * ctx.get("tile", 1)

    def cost(ctx, device):
        return 1e-6 * ctx.get("tile", 1)

    mod.kernel = kernel
    mod.cost = cost
    sys.modules["tv_kernels"] = mod
    yield mod
    del sys.modules["tv_kernels"]


def _desc(**kw):
    base = dict(
        name="scale",
        provides="scale",
        platform="cuda",
        kernel_ref="tv_kernels:kernel",
        cost_ref="tv_kernels:cost",
    )
    base.update(kw)
    return ImplementationDescriptor(**base)


def test_lowering_resolves_refs_and_arch():
    variants = _desc().to_variants(_PLATFORMS)
    assert len(variants) == 1
    assert variants[0].arch is Arch.CUDA
    data = np.ones(4)
    variants[0].fn({}, data, 3.0)
    assert (data == 3.0).all()


def test_tunables_expand_and_reach_cost_model():
    variants = _desc(
        tunables=(TunableParam("tile", values=(2, 8)),)
    ).to_variants(_PLATFORMS)
    assert {v.name for v in variants} == {"scale_tile2", "scale_tile8"}
    from repro.hw.devices import tesla_c2050

    costs = {v.name: v.cost_model({}, tesla_c2050()) for v in variants}
    assert costs["scale_tile8"] == pytest.approx(4 * costs["scale_tile2"])


def test_tunables_reach_ctx_style_kernels():
    variants = _desc(
        tunables=(TunableParam("tile", values=(5,)),)
    ).to_variants(_PLATFORMS)
    data = np.ones(2)
    variants[0].fn({}, data, 1.0)
    assert (data == 5.0).all()  # tile merged into ctx, used by the kernel


def test_constraints_become_guards():
    variants = _desc(
        constraints=(RangeConstraint("n", minimum=100),)
    ).to_variants(_PLATFORMS)
    assert not variants[0].selectable({"n": 10})
    assert variants[0].selectable({"n": 1000})


def test_missing_refs_rejected():
    with pytest.raises(DescriptorError):
        _desc(kernel_ref="").to_variants(_PLATFORMS)
    with pytest.raises(DescriptorError):
        _desc(cost_ref="").to_variants(_PLATFORMS)


def test_non_callable_ref_rejected():
    sys.modules["tv_kernels"].not_callable = 42
    with pytest.raises(DescriptorError):
        _desc(kernel_ref="tv_kernels:not_callable").to_variants(_PLATFORMS)


def test_unknown_platform_rejected():
    with pytest.raises(DescriptorError):
        _desc(platform="vulkan").to_variants(_PLATFORMS)


def test_prediction_resolution():
    assert _desc().prediction() is None
    pred = _desc(prediction_ref="tv_kernels:cost").prediction()
    from repro.hw.devices import tesla_c2050

    assert pred.predict({"tile": 2}, tesla_c2050()) == pytest.approx(2e-6)
