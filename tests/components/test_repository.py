"""Repositories: registration, validation, disk layout."""

import pytest

from repro.components import (
    ImplementationDescriptor,
    InterfaceDescriptor,
    MainDescriptor,
    ParamDecl,
    Repository,
)
from repro.errors import RepositoryError


def _iface(name="spmv"):
    return InterfaceDescriptor(name, params=(ParamDecl("n", "int"),))


def _impl(name="spmv_cpu", provides="spmv", platform="cpu_serial", requires=()):
    return ImplementationDescriptor(
        name=name, provides=provides, platform=platform, requires=requires,
        kernel_ref="m:k", cost_ref="m:c",
    )


def test_standard_platforms_preloaded():
    repo = Repository()
    assert repo.platform("cuda").arch.value == "cuda"
    assert len(Repository(with_standard_platforms=False).platforms) == 0


def test_duplicate_interface_rejected():
    repo = Repository()
    repo.add_interface(_iface())
    with pytest.raises(RepositoryError):
        repo.add_interface(_iface())


def test_duplicate_implementation_rejected():
    repo = Repository()
    repo.add_interface(_iface())
    repo.add_implementation(_impl())
    with pytest.raises(RepositoryError):
        repo.add_implementation(_impl())


def test_duplicate_platform_and_main_rejected():
    repo = Repository()
    from repro.components import standard_platforms

    with pytest.raises(RepositoryError):
        repo.add_platform(standard_platforms()[0])
    main = MainDescriptor(name="app", components=("spmv",))
    repo.add_main(main)
    with pytest.raises(RepositoryError):
        repo.add_main(main)


def test_lookup_errors():
    repo = Repository()
    with pytest.raises(RepositoryError):
        repo.interface("missing")
    with pytest.raises(RepositoryError):
        repo.implementations_of("missing")
    with pytest.raises(RepositoryError):
        repo.implementation("missing")
    with pytest.raises(RepositoryError):
        repo.platform("missing")
    with pytest.raises(RepositoryError):
        repo.main("missing")


def test_implementation_lookup_by_name():
    repo = Repository()
    repo.add_interface(_iface())
    repo.add_implementation(_impl())
    assert repo.implementation("spmv_cpu").provides == "spmv"


def test_validate_flags_problems():
    repo = Repository()
    repo.add_interface(_iface())
    repo.add_implementation(
        _impl(name="x", platform="no_such_platform", requires=("ghost",))
    )
    repo.add_main(MainDescriptor(name="app", components=("phantom",)))
    problems = "\n".join(repo.validate())
    assert "no_such_platform" in problems
    assert "ghost" in problems
    assert "phantom" in problems


def test_validate_clean_repo():
    repo = Repository()
    repo.add_interface(_iface())
    repo.add_implementation(_impl())
    assert repo.validate() == []


def test_save_scan_roundtrip(tmp_path):
    repo = Repository()
    repo.add_interface(_iface())
    repo.add_implementation(_impl())
    repo.add_implementation(_impl(name="spmv_cuda", platform="cuda"))
    repo.add_main(MainDescriptor(name="app", components=("spmv",)))
    repo.save_to(tmp_path)

    # the paper's directory structure
    assert (tmp_path / "spmv" / "interface.xml").exists()
    assert (tmp_path / "spmv" / "cpu_serial" / "spmv_cpu.xml").exists()
    assert (tmp_path / "spmv" / "cuda" / "spmv_cuda.xml").exists()
    assert (tmp_path / "platforms" / "cuda.xml").exists()
    assert (tmp_path / "app.xml").exists()

    loaded = Repository.scan(tmp_path)
    assert loaded.interface_names() == ["spmv"]
    assert {i.name for i in loaded.implementations_of("spmv")} == {
        "spmv_cpu",
        "spmv_cuda",
    }
    assert loaded.main("app").components == ("spmv",)
    assert loaded.validate() == []


def test_scan_missing_directory():
    with pytest.raises(RepositoryError):
        Repository.scan("/nonexistent/path")
