"""Interface descriptors, including generic expansion."""

import pytest

from repro.components.interface import InterfaceDescriptor, ParamDecl
from repro.errors import DescriptorError
from repro.runtime.access import AccessMode


def _iface(**kw):
    base = dict(
        name="sort",
        params=(
            ParamDecl("data", "T*", AccessMode.RW),
            ParamDecl("n", "int"),
        ),
        type_params=("T",),
    )
    base.update(kw)
    return InterfaceDescriptor(**base)


def test_param_decl_pointer_detection():
    assert ParamDecl("x", "float*").is_pointer
    assert ParamDecl("x", "const float *").is_pointer
    assert not ParamDecl("n", "int").is_pointer


def test_param_decl_base_type():
    assert ParamDecl("x", "const float*").base_type == "float"
    assert ParamDecl("x", "size_t*").base_type == "size_t"


def test_param_decl_validation():
    with pytest.raises(DescriptorError):
        ParamDecl("2bad", "int")
    with pytest.raises(DescriptorError):
        ParamDecl("x", "  ")


def test_interface_rejects_duplicate_params():
    with pytest.raises(DescriptorError):
        InterfaceDescriptor(
            "f", params=(ParamDecl("a", "int"), ParamDecl("a", "float"))
        )


def test_interface_name_validation():
    with pytest.raises(DescriptorError):
        InterfaceDescriptor("bad name", params=())


def test_param_lookup():
    iface = _iface()
    assert iface.param("n").ctype == "int"
    with pytest.raises(DescriptorError):
        iface.param("zzz")


def test_operand_scalar_split():
    iface = _iface()
    assert [p.name for p in iface.operand_params()] == ["data"]
    assert [p.name for p in iface.scalar_params()] == ["n"]


def test_signature_text():
    sig = _iface().signature()
    assert "template <typename T>" in sig
    assert "void sort(T* data, int n)" in sig


def test_generic_flag():
    assert _iface().is_generic
    assert not _iface(type_params=()).is_generic


def test_expand_binds_types_and_mangles_name():
    expanded = _iface().expand({"T": "float"})
    assert expanded.name == "sort_float"
    assert expanded.param("data").ctype == "float*"
    assert not expanded.is_generic


def test_expand_missing_binding():
    with pytest.raises(DescriptorError):
        _iface().expand({})


def test_expand_nongeneric_is_identity():
    iface = _iface(type_params=(), params=(ParamDecl("n", "int"),))
    assert iface.expand({}) is iface


def test_expand_substitutes_whole_words_only():
    iface = InterfaceDescriptor(
        "f",
        params=(
            ParamDecl("data", "T*"),
            ParamDecl("total", "int"),  # contains the letter T
        ),
        type_params=("T",),
    )
    expanded = iface.expand({"T": "double"})
    assert expanded.param("total").ctype == "int"
    assert expanded.param("data").ctype == "double*"
