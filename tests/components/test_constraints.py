"""Selectability constraints."""

import pytest

from repro.components.constraints import (
    ExpressionConstraint,
    RangeConstraint,
    make_guard,
)
from repro.errors import ConstraintError


def test_range_needs_a_bound():
    with pytest.raises(ConstraintError):
        RangeConstraint("n")


def test_range_evaluation():
    c = RangeConstraint("n", minimum=10, maximum=100)
    assert c.evaluate({"n": 10}) and c.evaluate({"n": 100})
    assert not c.evaluate({"n": 9})
    assert not c.evaluate({"n": 101})


def test_range_missing_property_accepts():
    assert RangeConstraint("n", minimum=10).evaluate({"m": 1})


def test_range_describe():
    assert "n <= 100" in RangeConstraint("n", maximum=100).describe()


def test_expression_comparison_chain():
    c = ExpressionConstraint("10 <= n <= 100")
    assert c.evaluate({"n": 50})
    assert not c.evaluate({"n": 5})


def test_expression_arithmetic():
    c = ExpressionConstraint("nnz / nrows <= 64")
    assert c.evaluate({"nnz": 640, "nrows": 100})
    assert not c.evaluate({"nnz": 6500, "nrows": 100})


def test_expression_boolean_ops():
    c = ExpressionConstraint("n >= 8 and (m < 4 or not small)")
    assert c.evaluate({"n": 8, "m": 2, "small": True})
    assert not c.evaluate({"n": 8, "m": 9, "small": True})


def test_expression_unary_minus():
    assert ExpressionConstraint("x > -5").evaluate({"x": 0})


def test_expression_missing_property_accepts():
    assert ExpressionConstraint("n > 100").evaluate({})


@pytest.mark.parametrize(
    "bad",
    [
        "__import__('os')",
        "f(n)",
        "n.attr > 1",
        "[1,2][0] > 0",
        "n if m else k",
        "lambda: 1",
        "'text' == 'text'",
    ],
)
def test_expression_rejects_unsafe_nodes(bad):
    with pytest.raises(ConstraintError):
        ExpressionConstraint(bad)


def test_expression_rejects_syntax_errors():
    with pytest.raises(ConstraintError):
        ExpressionConstraint("n >")


def test_make_guard_combines():
    guard = make_guard(
        [RangeConstraint("n", minimum=10), ExpressionConstraint("m < 5")]
    )
    assert guard({"n": 20, "m": 1})
    assert not guard({"n": 5, "m": 1})
    assert not guard({"n": 20, "m": 9})


def test_make_guard_empty_is_none():
    assert make_guard([]) is None
