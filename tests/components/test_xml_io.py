"""XML round-trips for every descriptor kind."""

import pytest

from repro.components import (
    ContextParamDecl,
    ExpressionConstraint,
    ImplementationDescriptor,
    InterfaceDescriptor,
    MainDescriptor,
    ParamDecl,
    PlatformDescriptor,
    RangeConstraint,
    ResourceRequirement,
    TunableParam,
    descriptor_to_string,
    load_descriptor,
    parse_descriptor_string,
    save_descriptor,
    standard_platforms,
)
from repro.errors import DescriptorError
from repro.runtime.access import AccessMode
from repro.runtime.archs import Arch


def _interface():
    return InterfaceDescriptor(
        name="sort",
        params=(
            ParamDecl("data", "T*", AccessMode.RW),
            ParamDecl("n", "int", AccessMode.R),
        ),
        type_params=("T",),
        performance_metrics=("avg_exec_time", "worst_case"),
        context_params=(ContextParamDecl("n", "int", minimum=1, maximum=1e6),),
    )


def _implementation():
    return ImplementationDescriptor(
        name="sort_cuda",
        provides="sort",
        platform="cuda",
        requires=("helper", "other"),
        sources=("sort_cuda.cu", "common.h"),
        compile_cmd="nvcc -O3 -c $< -o $@",
        kernel_ref="mod:kernel",
        cost_ref="mod:cost",
        prediction_ref="mod:pred",
        resources=(ResourceRequirement("gpu_memory_mb", 64, 4096),),
        tunables=(TunableParam("tile", values=(8, 16), default=16),),
        constraints=(
            RangeConstraint("n", minimum=1.0),  # bounds round-trip as floats
            ExpressionConstraint("n / 2 >= 1"),
        ),
    )


def test_interface_roundtrip():
    iface = _interface()
    assert parse_descriptor_string(descriptor_to_string(iface)) == iface


def test_implementation_roundtrip():
    impl = _implementation()
    back = parse_descriptor_string(descriptor_to_string(impl))
    # constraints compare by description (ExpressionConstraint lacks __eq__)
    assert back.name == impl.name
    assert back.requires == impl.requires
    assert back.sources == impl.sources
    assert back.compile_cmd == impl.compile_cmd
    assert back.kernel_ref == impl.kernel_ref
    assert back.resources == impl.resources
    assert back.tunables == impl.tunables
    assert [c.describe() for c in back.constraints] == [
        c.describe() for c in impl.constraints
    ]


def test_platform_roundtrip():
    for platform in standard_platforms():
        assert parse_descriptor_string(descriptor_to_string(platform)) == platform


def test_main_roundtrip():
    main = MainDescriptor(
        name="app",
        sources=("main.cpp", "util.cpp"),
        target_platform="c1060",
        optimization_goal="min_energy",
        components=("sort", "spmv"),
        scheduler="eager",
        use_history_models=False,
        disable_impls=("sort_cpu",),
        link_cmd="g++ -o {app} {objects}",
    )
    assert parse_descriptor_string(descriptor_to_string(main)) == main


def test_platform_arch_parsing():
    p = PlatformDescriptor(name="x", language="C", arch=Arch.OPENCL)
    assert parse_descriptor_string(descriptor_to_string(p)).arch is Arch.OPENCL


def test_save_and_load_file(tmp_path):
    path = save_descriptor(_interface(), tmp_path / "deep" / "interface.xml")
    assert path.exists()
    assert load_descriptor(path) == _interface()


def test_load_dispatches_on_root_tag(tmp_path):
    kinds = {
        "i.xml": _interface(),
        "impl.xml": _implementation(),
        "p.xml": standard_platforms()[0],
        "m.xml": MainDescriptor(name="a", components=("sort",)),
    }
    for fname, desc in kinds.items():
        save_descriptor(desc, tmp_path / fname)
        assert type(load_descriptor(tmp_path / fname)) is type(desc)


def test_malformed_xml_rejected(tmp_path):
    bad = tmp_path / "bad.xml"
    bad.write_text("<peppherInterface name='x'")
    with pytest.raises(DescriptorError):
        load_descriptor(bad)


def test_unknown_root_tag_rejected():
    with pytest.raises(DescriptorError):
        parse_descriptor_string("<somethingElse/>")


def test_interface_missing_function_rejected():
    with pytest.raises(DescriptorError):
        parse_descriptor_string('<peppherInterface name="x"/>')


def test_descriptor_to_string_rejects_non_descriptor():
    with pytest.raises(DescriptorError):
        descriptor_to_string({"not": "a descriptor"})


def test_xml_is_pretty_printed():
    text = descriptor_to_string(_interface())
    assert text.count("\n") > 5  # indented, one element per line
