"""C/C++ declaration parsing (utility-mode input)."""

import pytest

from repro.components.cdecl import parse_declaration, parse_header, to_interface
from repro.errors import CDeclError
from repro.runtime.access import AccessMode


def test_simple_declaration():
    d = parse_declaration("void foo(int a, float b);")
    assert d.name == "foo" and d.return_type == "void"
    assert [(p.name, p.ctype) for p in d.params] == [("a", "int"), ("b", "float")]


def test_paper_spmv_declaration():
    d = parse_declaration(
        "void spmv(float* values, int nnz, int nrows, int ncols, int first, "
        "size_t* colidxs, size_t* rowPtr, float* x, float* y);"
    )
    assert d.name == "spmv" and len(d.params) == 9
    assert d.params[0].ctype == "float*"
    assert d.params[5].ctype == "size_t*"


def test_const_pointer_is_read():
    d = parse_declaration("void f(const float* in, float* out);")
    assert d.params[0].access is AccessMode.R
    assert d.params[1].access is AccessMode.RW  # conservative suggestion


def test_references_follow_const_semantics():
    d = parse_declaration("void f(const Thing& a, Thing& b);")
    assert d.params[0].access is AccessMode.R and d.params[0].is_operand
    assert d.params[1].access is AccessMode.RW


def test_by_value_scalar_is_read_non_operand():
    d = parse_declaration("void f(int n);")
    assert d.params[0].access is AccessMode.R and not d.params[0].is_operand


def test_template_declaration():
    d = parse_declaration("template <typename T> void sort(T* data, int n);")
    assert d.type_params == ("T",)
    assert d.params[0].ctype == "T*"


def test_template_multiple_params():
    d = parse_declaration(
        "template <typename K, class V> void join(K* keys, V* vals, int n);"
    )
    assert d.type_params == ("K", "V")


def test_template_bad_param():
    with pytest.raises(CDeclError):
        parse_declaration("template <int N> void f(int a);")


def test_void_parameter_list():
    assert parse_declaration("void f(void);").params == ()
    assert parse_declaration("int g();").params == ()


def test_array_suffix_parameter():
    d = parse_declaration("void f(float data[], int n);")
    assert d.params[0].name == "data"


def test_whitespace_normalisation():
    d = parse_declaration("void f(const  float  *  x);")
    assert d.params[0].ctype == "const float*"


def test_unparsable_rejected():
    with pytest.raises(CDeclError):
        parse_declaration("not a declaration")
    with pytest.raises(CDeclError):
        parse_declaration("")


def test_header_parsing_strips_comments():
    header = """
    /* block comment with (parens) */
    #include <stddef.h>
    // line comment with foo(int)
    void alpha(int a);
    void beta(const float* x, float* y);
    """
    decls = parse_header(header)
    assert [d.name for d in decls] == ["alpha", "beta"]


def test_header_without_declarations():
    with pytest.raises(CDeclError):
        parse_header("// nothing here\n#define X 1\n")


def test_to_interface_suggests_context_params():
    d = parse_declaration("void f(const float* data, int n, size_t count, float w);")
    iface = to_interface(d)
    names = [cp.name for cp in iface.context_params]
    assert names == ["n", "count"]  # integer scalars only
    assert iface.param("data").access is AccessMode.R


def test_to_interface_keeps_template_params():
    d = parse_declaration("template <typename T> void s(T* d, int n);")
    assert to_interface(d).type_params == ("T",)
