"""Workload generators: sizes, structure and determinism."""

import numpy as np
import pytest

from repro.workloads import (
    UF_SPECS,
    gemm_inputs,
    hotspot_inputs,
    make_matrix,
    matrix_names,
    pathfinder_wall,
    random_csr,
    random_graph,
)


# -- sparse (the Figure 5 matrices) ------------------------------------------

def test_six_figure5_matrices():
    assert matrix_names() == [
        "Chemistry",
        "Convex",
        "HB",
        "Network",
        "Simulation",
        "Structural",
    ]


@pytest.mark.parametrize("name", sorted(UF_SPECS))
def test_matrix_nnz_matches_paper_table(name):
    mat = make_matrix(name, scale=1.0)
    spec = UF_SPECS[name]
    assert mat.nnz == spec.nnz
    assert mat.nrows == spec.nrows


def test_matrix_csr_wellformed():
    mat = make_matrix("HB", scale=0.1)
    assert mat.rowptr[0] == 0
    assert (np.diff(mat.rowptr) >= 1).all()
    assert mat.rowptr[-1] == len(mat.values) == len(mat.colidxs)
    assert mat.colidxs.min() >= 0 and mat.colidxs.max() < mat.ncols


def test_matrix_scale_shrinks():
    full = UF_SPECS["Network"]
    small = make_matrix("Network", scale=0.1)
    assert small.nrows == int(full.nrows * 0.1)
    assert abs(small.nnz - full.nnz * 0.1) < full.nnz * 0.02


def test_matrix_deterministic():
    a = make_matrix("Convex", seed=5, scale=0.05)
    b = make_matrix("Convex", seed=5, scale=0.05)
    assert (a.values == b.values).all() and (a.colidxs == b.colidxs).all()


def test_matrix_unknown_name():
    with pytest.raises(KeyError):
        make_matrix("NotAMatrix")


def test_matrix_bad_scale():
    with pytest.raises(ValueError):
        make_matrix("HB", scale=0.0)
    with pytest.raises(ValueError):
        make_matrix("HB", scale=2.0)


def test_banded_structure_stays_near_diagonal():
    mat = make_matrix("Structural", scale=0.02)
    rows = np.repeat(np.arange(mat.nrows), np.diff(mat.rowptr))
    distance = np.abs(mat.colidxs - rows)
    assert np.median(distance) < mat.nrows / 50  # banded, not scattered


def test_powerlaw_structure_has_skewed_degrees():
    mat = make_matrix("Simulation", scale=0.02)
    degrees = np.diff(mat.rowptr)
    assert degrees.max() > 8 * np.median(degrees)


def test_random_csr_shape():
    mat = random_csr(50, 70, 3, seed=1)
    assert mat.nrows == 50 and mat.ncols == 70 and mat.nnz == 150


def test_to_dense_matches_spmv():
    from repro.apps.spmv import reference

    mat = random_csr(20, 20, 3, seed=2)
    x = np.random.default_rng(0).standard_normal(20).astype(np.float32)
    assert np.allclose(mat.to_dense() @ x, reference(mat.values, mat.colidxs, mat.rowptr, x, 20), rtol=1e-4)


# -- graphs ------------------------------------------------------------------

def test_graph_offsets_wellformed():
    nodes, edges = random_graph(100, 5, seed=3)
    assert len(nodes) == 101
    assert nodes[-1] == len(edges)
    assert (np.diff(nodes) >= 1).all()  # ring edge guarantees degree >= 1


def test_graph_is_fully_reachable():
    from repro.apps.bfs import reference

    nodes, edges = random_graph(60, 2, seed=4)
    costs = reference(nodes, edges, 60, 0)
    assert (costs >= 0).all()  # the embedded ring reaches everyone


def test_graph_minimum_size():
    with pytest.raises(ValueError):
        random_graph(1)


# -- grids / dense -------------------------------------------------------------

def test_hotspot_inputs_contain_hotspots():
    power, temp = hotspot_inputs(32, 32, seed=5)
    assert power.max() > 1.0  # hot functional units exist
    assert (temp == 60.0).all()


def test_pathfinder_wall_range():
    wall = pathfinder_wall(10, 20, seed=6)
    assert wall.min() >= 1 and wall.max() <= 9
    assert wall.shape == (200,)


def test_gemm_inputs_shapes_and_dtype():
    a, b, c = gemm_inputs(4, 5, 6, seed=7)
    assert a.shape == (4, 6) and b.shape == (6, 5) and c.shape == (4, 5)
    assert a.dtype == np.float32
