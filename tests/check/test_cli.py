"""``python -m repro.check`` CLI: exit codes and reporting."""

import json

import numpy as np
import pytest

from repro.check.__main__ import main
from repro.hw.presets import platform_c2050
from repro.runtime import Runtime
from repro.runtime.trace_export import save_trace_json

from tests.conftest import make_axpy_codelet


@pytest.fixture()
def trace_file(tmp_path):
    """A saved, legal trace from a small real run."""
    rt = Runtime(platform_c2050(), scheduler="dmda", seed=0)
    cl = make_axpy_codelet()
    n = 200_000
    hy = rt.register(np.zeros(n, dtype=np.float32), "y")
    hx = rt.register(np.ones(n, dtype=np.float32), "x")
    for _ in range(5):
        rt.submit(cl, [(hy, "rw"), (hx, "r")], ctx={"n": n}, scalar_args=(1.0,))
    rt.wait_for_all()
    path = save_trace_json(rt.trace, rt.machine, tmp_path / "run.json")
    rt.shutdown()
    return path


def test_legal_trace_exits_zero(trace_file, capsys):
    assert main([str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "no invariant violations" in out


def test_corrupted_trace_exits_one_and_names_the_rule(trace_file, capsys):
    doc = json.loads(trace_file.read_text())
    # swap one task's interval: end before start
    task = doc["tasks"][0]
    task["start_time"], task["end_time"] = task["end_time"], task["start_time"]
    bad = trace_file.with_name("bad.json")
    bad.write_text(json.dumps(doc))
    assert main([str(bad)]) == 1
    err = capsys.readouterr().err
    assert "timeline.task-order" in err
    assert f"task#{task['task_id']}" in err


def test_violation_listing_is_capped(trace_file, capsys):
    doc = json.loads(trace_file.read_text())
    for task in doc["tasks"]:
        task["start_time"], task["end_time"] = (
            task["end_time"],
            task["start_time"],
        )
    bad = trace_file.with_name("bad.json")
    bad.write_text(json.dumps(doc))
    assert main([str(bad), "--max-violations", "2"]) == 1
    err = capsys.readouterr().err
    assert err.count("timeline.task-order") == 2
    assert "more" in err


def test_missing_file_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope.json")]) == 2
    assert "unreadable" in capsys.readouterr().err


def test_foreign_document_exits_two(tmp_path, capsys):
    chrome = tmp_path / "chrome.json"
    chrome.write_text(json.dumps({"traceEvents": []}))
    assert main([str(chrome)]) == 2
    assert "unreadable" in capsys.readouterr().err


def test_multiple_traces_one_bad_exits_one(trace_file, capsys):
    doc = json.loads(trace_file.read_text())
    doc["n_submitted"] += 1
    bad = trace_file.with_name("bad.json")
    bad.write_text(json.dumps(doc))
    assert main([str(trace_file), str(bad)]) == 1
    captured = capsys.readouterr()
    assert "OK" in captured.out  # the good trace still reports success
    assert "conservation.tasks" in captured.err
