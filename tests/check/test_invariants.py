"""Invariant checker: clean runs validate, corrupted traces pinpoint rules."""


import numpy as np
import pytest

from repro.check import InvariantViolation, assert_trace_legal, check_trace
from repro.hw.description import HOST_NODE
from repro.hw.presets import cpu_only, platform_c2050
from repro.runtime import Runtime
from repro.runtime.stats import (
    EvictionRecord,
    ExecutionTrace,
    RequestRecord,
    TaskRecord,
    TransferRecord,
)
from repro.runtime.trace_export import MachineInfo

from tests.conftest import make_axpy_codelet



def replace(rec, **changes):
    """Records are slotted now (no dataclasses.replace); forward to the
    blessed per-record replace()."""
    return rec.replace(**changes)


def _traced_run(scheduler="dmda", n_tasks=8, n=200_000):
    """A small real run; returns (trace, machine)."""
    rt = Runtime(platform_c2050(), scheduler=scheduler, seed=0)
    cl = make_axpy_codelet()
    pairs = [
        (
            rt.register(np.zeros(n, dtype=np.float32), f"y{i}"),
            rt.register(np.ones(n, dtype=np.float32), f"x{i}"),
        )
        for i in range(3)
    ]
    for i in range(n_tasks):
        hy, hx = pairs[i % 3]
        rt.submit(cl, [(hy, "rw"), (hx, "r")], ctx={"n": n}, scalar_args=(1.0,))
    rt.wait_for_all()
    trace, machine = rt.trace, rt.machine
    rt.shutdown()
    return trace, machine


def _rules(trace, machine):
    return [v.rule for v in check_trace(trace, machine)]


# -- clean runs ---------------------------------------------------------------


@pytest.mark.parametrize("scheduler", ["eager", "dmda", "ws", "random"])
def test_clean_run_has_no_violations(scheduler):
    trace, machine = _traced_run(scheduler=scheduler)
    assert check_trace(trace, machine) == []
    assert_trace_legal(trace, machine)  # must not raise


def test_checker_accepts_machine_info_summary():
    trace, machine = _traced_run(n_tasks=4)
    assert check_trace(trace, MachineInfo.of(machine)) == []


def test_empty_trace_is_legal():
    assert check_trace(ExecutionTrace(), platform_c2050()) == []


# -- corrupting a real trace --------------------------------------------------


def test_reversed_task_times_violate_task_order():
    trace, machine = _traced_run(n_tasks=4)
    rec = trace.tasks[0]
    trace.tasks[0] = replace(
        rec, start_time=rec.end_time, end_time=rec.start_time
    )
    rules = _rules(trace, machine)
    assert "timeline.task-order" in rules


def test_non_finite_stamp_violates_task_times():
    trace, machine = _traced_run(n_tasks=4)
    trace.tasks[1] = replace(trace.tasks[1], start_time=float("nan"))
    assert "timeline.task-times" in _rules(trace, machine)


def test_unknown_worker_is_reported():
    trace, machine = _traced_run(n_tasks=4)
    trace.tasks[0] = replace(trace.tasks[0], worker_ids=(999,))
    violations = check_trace(trace, machine)
    rules = [v.rule for v in violations]
    assert "timeline.task-workers" in rules
    v = violations[rules.index("timeline.task-workers")]
    assert f"task#{trace.tasks[0].task_id}" in v.events


def test_wrong_anchor_node_is_reported():
    trace, machine = _traced_run(n_tasks=4)
    trace.tasks[0] = replace(trace.tasks[0], node=trace.tasks[0].node + 57)
    assert "timeline.task-node" in _rules(trace, machine)


def test_inflated_submit_count_breaks_conservation():
    trace, machine = _traced_run(n_tasks=4)
    trace.n_submitted += 2
    assert "conservation.tasks" in _rules(trace, machine)


def test_duplicate_seq_stamp_is_reported():
    trace, machine = _traced_run(n_tasks=4)
    trace.tasks[1] = replace(trace.tasks[1], seq=trace.tasks[0].seq)
    assert "recording.seq-duplicate" in _rules(trace, machine)


def test_out_of_range_seq_is_reported():
    trace, machine = _traced_run(n_tasks=4)
    trace.tasks[0] = replace(trace.tasks[0], seq=trace.next_seq + 5)
    assert "recording.seq-range" in _rules(trace, machine)


def test_assert_trace_legal_raises_structured_violation():
    trace, machine = _traced_run(n_tasks=4)
    rec = trace.tasks[0]
    # ready after end violates submit <= ready <= start (stamps stay
    # non-negative, so only the ordering rule fires)
    trace.tasks[0] = replace(rec, ready_time=rec.end_time + 1.0)
    with pytest.raises(InvariantViolation) as excinfo:
        assert_trace_legal(trace, machine)
    err = excinfo.value
    assert err.rule == "timeline.task-order"
    assert f"task#{rec.task_id}" in err.events
    assert err.rule in str(err)


# -- synthetic traces (full control over every record) ------------------------


def _task(
    machine,
    task_id,
    start,
    end,
    worker=0,
    seq=None,
    submit_seq=None,
    **kw,
):


    node = machine.unit(worker).memory_node
    return TaskRecord.make(
        task_id=task_id,
        name=f"t#{task_id}",
        codelet="t",
        variant="t_cpu",
        arch="cpu",
        worker_ids=(worker,),
        submit_time=0.0,
        ready_time=0.0,
        start_time=start,
        end_time=end,
        node=node,
        submit_seq=task_id if submit_seq is None else submit_seq,
        seq=task_id if seq is None else seq,
        **kw,
    )


def _synthetic(machine, tasks=(), transfers=(), evictions=(), requests=()):
    trace = ExecutionTrace()
    trace.tasks.extend(tasks)
    trace.transfers.extend(transfers)
    trace.evictions.extend(evictions)
    trace.requests.extend(requests)
    trace.n_submitted = len(trace.tasks)
    seqs = [r.seq for r in trace.records_in_seq_order()]
    trace.next_seq = max(seqs, default=-1) + 1
    return trace


def test_overlapping_tasks_on_one_worker():
    machine = cpu_only(2)
    trace = _synthetic(
        machine,
        tasks=[
            _task(machine, 0, 0.0, 1.0, worker=0),
            _task(machine, 1, 0.5, 1.5, worker=0),
        ],
    )
    violations = check_trace(trace, machine)
    rules = [v.rule for v in violations]
    assert rules == ["exclusivity.worker-overlap"]
    assert violations[0].events == ("task#0", "task#1")


def test_gang_tasks_occupy_every_listed_worker():
    machine = cpu_only(4)
    gang = replace(
        _task(machine, 0, 0.0, 1.0, worker=0), worker_ids=(0, 1, 2, 3)
    )
    solo = _task(machine, 1, 0.2, 0.8, worker=3)
    trace = _synthetic(machine, tasks=[gang, solo])
    assert "exclusivity.worker-overlap" in _rules(trace, machine)


def test_start_before_dependency_end():
    machine = cpu_only(2)
    trace = _synthetic(
        machine,
        tasks=[
            _task(machine, 0, 1.0, 2.0, worker=0),
            replace(_task(machine, 1, 0.5, 3.0, worker=1), deps=(0,)),
        ],
    )
    assert "dependency.start-before-dep" in _rules(trace, machine)


def test_unknown_dependency_without_aborts():
    machine = cpu_only(1)
    trace = _synthetic(
        machine,
        tasks=[replace(_task(machine, 0, 0.0, 1.0), deps=(42,))],
    )
    assert "dependency.unknown" in _rules(trace, machine)
    # with aborted tasks the missing dependency is explainable
    trace.n_tasks_aborted = 1
    trace.n_submitted += 1
    assert "dependency.unknown" not in _rules(trace, machine)


def test_dependency_submitted_after_dependent():
    machine = cpu_only(2)
    trace = _synthetic(
        machine,
        tasks=[
            _task(machine, 0, 0.0, 1.0, worker=0, submit_seq=7),
            replace(
                _task(machine, 1, 1.0, 2.0, worker=1, submit_seq=3), deps=(0,)
            ),
        ],
    )
    assert "dependency.submit-order" in _rules(trace, machine)


def test_double_completion_of_one_submission():
    machine = cpu_only(2)
    trace = _synthetic(
        machine,
        tasks=[
            _task(machine, 0, 0.0, 1.0, worker=0, submit_seq=0),
            _task(machine, 1, 1.0, 2.0, worker=1, submit_seq=0),
        ],
    )
    # conservation sees two completions for submission 0
    assert "conservation.double-completion" in _rules(trace, machine)


def test_device_read_without_transfer_is_incoherent():
    machine = platform_c2050()
    gpu = machine.gpu_units[0]
    bad = replace(
        _task(machine, 0, 1.0, 2.0, worker=gpu.unit_id), reads=(7,)
    )
    trace = _synthetic(machine, tasks=[bad])
    violations = check_trace(trace, machine)
    rules = [v.rule for v in violations]
    assert "coherence.read-invalid" in rules
    v = violations[rules.index("coherence.read-invalid")]
    assert "handle#7" in v.events


def test_device_read_with_transfer_is_coherent():
    machine = platform_c2050()
    gpu = machine.gpu_units[0]
    node = gpu.memory_node
    staged = TransferRecord.make(
        handle_id=7,
        handle_name="data7",
        src_node=HOST_NODE,
        dst_node=node,
        nbytes=64,
        start_time=0.0,
        end_time=0.5,
        seq=0,
    )
    ok = replace(
        _task(machine, 0, 1.0, 2.0, worker=gpu.unit_id, seq=1), reads=(7,)
    )
    trace = _synthetic(machine, tasks=[ok], transfers=[staged])
    assert check_trace(trace, machine) == []


def test_read_before_transfer_completes_is_illegal():
    machine = platform_c2050()
    gpu = machine.gpu_units[0]
    staged = TransferRecord.make(
        handle_id=7,
        handle_name="data7",
        src_node=HOST_NODE,
        dst_node=gpu.memory_node,
        nbytes=64,
        start_time=0.0,
        end_time=5.0,
        seq=0,
    )
    early = replace(
        _task(machine, 0, 1.0, 2.0, worker=gpu.unit_id, seq=1), reads=(7,)
    )
    trace = _synthetic(machine, tasks=[early], transfers=[staged])
    # at the read time no completed transfer has made the copy valid
    assert "coherence.read-invalid" in _rules(trace, machine)


def test_transfer_from_node_without_copy():
    machine = platform_c2050()
    node = machine.gpu_units[0].memory_node
    ghost = TransferRecord.make(
        handle_id=3,
        handle_name="data3",
        src_node=node,
        dst_node=HOST_NODE,
        nbytes=64,
        start_time=0.0,
        end_time=0.5,
        seq=0,
    )
    trace = _synthetic(machine, transfers=[ghost])
    assert "coherence.transfer-source" in _rules(trace, machine)


def test_self_transfer_is_malformed():
    machine = platform_c2050()
    loop = TransferRecord.make(
        handle_id=3,
        handle_name="data3",
        src_node=HOST_NODE,
        dst_node=HOST_NODE,
        nbytes=64,
        start_time=0.0,
        end_time=0.5,
        seq=0,
    )
    trace = _synthetic(machine, transfers=[loop])
    assert "timeline.transfer-nodes" in _rules(trace, machine)


def test_overlapping_transfers_on_one_link_channel():
    machine = platform_c2050()
    node = machine.gpu_units[0].memory_node

    def h2d(handle_id, start, end, seq):
        return TransferRecord.make(
            handle_id=handle_id,
            handle_name=f"data{handle_id}",
            src_node=HOST_NODE,
            dst_node=node,
            nbytes=64,
            start_time=start,
            end_time=end,
            seq=seq,
        )

    trace = _synthetic(
        machine, transfers=[h2d(1, 0.0, 1.0, 0), h2d(2, 0.5, 1.5, 1)]
    )
    assert "exclusivity.link-overlap" in _rules(trace, machine)


def test_eviction_from_node_without_copy():
    machine = platform_c2050()
    node = machine.gpu_units[0].memory_node
    phantom = EvictionRecord.make(
        handle_id=3,
        handle_name="data3",
        node=node,
        nbytes=64,
        time=1.0,
        flushed=False,
        seq=0,
    )
    trace = _synthetic(machine, evictions=[phantom])
    assert "coherence.evict-absent" in _rules(trace, machine)


def test_evicting_the_last_copy_is_illegal():
    machine = platform_c2050()
    gpu = machine.gpu_units[0]
    node = gpu.memory_node
    # a task writes handle 5 on the GPU (sole owner), then the copy is
    # dropped without a flush home: the data is gone
    writer = replace(
        _task(machine, 0, 0.0, 1.0, worker=gpu.unit_id, seq=0), writes=(5,)
    )
    drop = EvictionRecord.make(
        handle_id=5,
        handle_name="data5",
        node=node,
        nbytes=64,
        time=2.0,
        flushed=False,
        seq=1,
    )
    trace = _synthetic(machine, tasks=[writer], evictions=[drop])
    assert "coherence.evict-last-copy" in _rules(trace, machine)


def test_host_eviction_is_invalid():
    machine = platform_c2050()
    bad = EvictionRecord.make(
        handle_id=5,
        handle_name="data5",
        node=HOST_NODE,
        nbytes=64,
        time=1.0,
        flushed=False,
        seq=0,
    )
    trace = _synthetic(machine, evictions=[bad])
    assert "timeline.eviction-node" in _rules(trace, machine)


# -- serving records ----------------------------------------------------------


def test_shed_request_with_task_breaks_conservation():
    machine = cpu_only(1)
    shed = RequestRecord.make(
        tenant="a", req_id=0, codelet="c", arrival_time=0.0, shed=True,
        task_id=12,
    )
    trace = _synthetic(machine, requests=[shed])
    assert "conservation.shed-request" in _rules(trace, machine)


def test_completed_request_must_map_to_completed_task():
    machine = cpu_only(1)
    orphan = RequestRecord.make(
        tenant="a", req_id=0, codelet="c", arrival_time=0.0,
        dispatch_time=0.1, start_time=0.2, end_time=0.3, task_id=42,
    )
    trace = _synthetic(machine, requests=[orphan])
    assert "conservation.request-task" in _rules(trace, machine)


def test_request_task_time_mismatch_is_reported():
    machine = cpu_only(1)
    task = _task(machine, 0, 1.0, 2.0)
    req = RequestRecord.make(
        tenant="a", req_id=0, codelet="t", arrival_time=0.0,
        dispatch_time=0.5, start_time=1.0, end_time=9.0, task_id=0,
    )
    trace = _synthetic(machine, tasks=[task], requests=[req])
    assert "conservation.request-times" in _rules(trace, machine)
