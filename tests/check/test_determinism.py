"""Run-to-run determinism: same seed, byte-identical canonical traces."""

import numpy as np
import pytest

from repro.hw.noise import NoiseModel, NullNoise
from repro.hw.presets import platform_c2050
from repro.runtime import Runtime
from repro.runtime.trace_export import canonical_chrome_json
from repro.session import Session

from tests.conftest import make_axpy_codelet


def _drive(session, n_tasks=10, n=300_000):
    cl = make_axpy_codelet()
    hy = session.register(np.zeros(n, dtype=np.float32), "y")
    hx = session.register(np.ones(n, dtype=np.float32), "x")
    for _ in range(n_tasks):
        session.submit(
            cl, [(hy, "rw"), (hx, "r")], ctx={"n": n}, scalar_args=(1.0,)
        )
    session.wait_for_all()


def _canonical_run(seed, noise_sigma=0.03, scheduler="dmda"):
    with Session(
        "c2050", scheduler=scheduler, seed=seed, noise_sigma=noise_sigma,
        check=True,
    ) as s:
        _drive(s)
        return canonical_chrome_json(s.trace, s.machine)


@pytest.mark.parametrize("scheduler", ["eager", "dmda"])
def test_same_seed_sessions_are_byte_identical(scheduler):
    a = _canonical_run(seed=11, scheduler=scheduler)
    b = _canonical_run(seed=11, scheduler=scheduler)
    assert a == b


def test_different_seeds_perturb_noisy_timings():
    # sanity check that the identity above is not vacuous: with noise on,
    # different seeds must actually change the canonical trace
    assert _canonical_run(seed=1) != _canonical_run(seed=2)


def test_sigma_zero_makes_seed_irrelevant():
    # regression: with noise disabled the seed feeds nothing else in a
    # deterministic-policy run, so traces match across seeds
    a = _canonical_run(seed=1, noise_sigma=0.0)
    b = _canonical_run(seed=2, noise_sigma=0.0)
    assert a == b


def test_null_noise_never_perturbs_durations():
    for model in (NullNoise(seed=3), NoiseModel(sigma=0.0, seed=3)):
        for d in (0.0, 1e-9, 0.5, 7.25):
            assert model.perturb(d) == d


def test_noise_model_validation():
    with pytest.raises(ValueError):
        NoiseModel(sigma=-0.1)
    with pytest.raises(ValueError):
        NoiseModel(sigma=0.1).perturb(-1.0)


def test_zero_sigma_runtime_engages_null_noise():
    # Runtime maps noise_sigma=0 onto NullNoise: the run is byte-stable
    # and actually differs from a noisy run with the same seed
    def run(noise_sigma):
        rt = Runtime(
            platform_c2050(), scheduler="dmda", seed=4,
            noise_sigma=noise_sigma, check=True,
        )
        cl = make_axpy_codelet()
        n = 250_000
        hy = rt.register(np.zeros(n, dtype=np.float32), "y")
        hx = rt.register(np.ones(n, dtype=np.float32), "x")
        for _ in range(6):
            rt.submit(
                cl, [(hy, "rw"), (hx, "r")], ctx={"n": n}, scalar_args=(1.0,)
            )
        rt.wait_for_all()
        doc = canonical_chrome_json(rt.trace, rt.machine)
        rt.shutdown()
        return doc

    quiet = run(0.0)
    assert quiet == run(0.0)
    assert quiet != run(0.03)
