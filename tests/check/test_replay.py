"""Decision recording and deterministic replay."""


import numpy as np
import pytest

from repro.check.replay import (
    DecisionLog,
    DecisionRecord,
    assert_traces_identical,
    record_and_replay,
)
from repro.errors import ReplayDivergence
from repro.hw.presets import platform_c2050
from repro.runtime import Runtime

from tests.conftest import make_axpy_codelet

N = 200_000



def replace(rec, **changes):
    """Records are slotted now (no dataclasses.replace); forward to the
    blessed per-record replace()."""
    return rec.replace(**changes)


def _workload(n_tasks=6):
    """A run function for record_and_replay: n_tasks axpy submissions."""

    def run(rt):
        cl = make_axpy_codelet()
        hy = rt.register(np.zeros(N, dtype=np.float32), "y")
        hx = rt.register(np.ones(N, dtype=np.float32), "x")
        for _ in range(n_tasks):
            rt.submit(
                cl, [(hy, "rw"), (hx, "r")], ctx={"n": N}, scalar_args=(1.0,)
            )
        rt.wait_for_all()

    return run


# -- record + replay round trip ----------------------------------------------


@pytest.mark.parametrize("scheduler", ["eager", "dmda", "ws"])
def test_record_and_replay_reproduces_trace(scheduler):
    recorded, replayed, log = record_and_replay(
        _workload(), machine_factory=platform_c2050, scheduler=scheduler,
        seed=3,
    )
    assert len(log) == 6
    assert recorded.n_tasks == replayed.n_tasks == 6
    # helper already asserted identity; spot-check the strongest bits
    assert recorded.makespan == replayed.makespan
    assert [r.variant for r in recorded.tasks] == [
        r.variant for r in replayed.tasks
    ]


def test_record_and_replay_reproduces_lookahead_plans():
    """Planner decisions replay byte-identically, window flushes included.

    ``record_and_replay`` carries the recorded scheduler's bulk window
    size into the replay scheduler, so the engine buffers and flushes
    tasks at exactly the recorded boundaries — event-heap tie-breaking
    and transfer interleaving then reproduce exactly.
    """
    recorded, replayed, log = record_and_replay(
        _workload(36),
        machine_factory=platform_c2050,
        scheduler="lookahead",
        scheduler_options={"window_size": 8},
        seed=5,
    )
    assert len(log) == 36
    assert recorded.n_tasks == replayed.n_tasks == 36
    # helper already ran assert_traces_identical; pin the strongest bits
    assert recorded.makespan == replayed.makespan
    assert [
        (r.variant, r.worker_ids, r.start_time, r.end_time)
        for r in recorded.tasks
    ] == [
        (r.variant, r.worker_ids, r.start_time, r.end_time)
        for r in replayed.tasks
    ]


def test_record_and_replay_rejects_conflicting_machine_args():
    with pytest.raises(TypeError):
        record_and_replay(
            _workload(),
            machine_factory=platform_c2050,
            machine=platform_c2050(),
        )


def test_runtime_record_flag_exposes_decision_log():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, record=True)
    _workload(4)(rt)
    rt.shutdown()
    assert rt.decision_log is not None
    assert len(rt.decision_log) == 4
    entry = rt.decision_log.entries[0]
    assert entry.codelet == "axpy"
    assert entry.variant.startswith("axpy_")
    assert entry.worker_ids


def test_runtime_without_record_has_no_log():
    rt = Runtime(platform_c2050(), scheduler="eager", seed=0)
    assert rt.decision_log is None
    rt.shutdown()


# -- log serialization --------------------------------------------------------


def test_decision_log_json_round_trip(tmp_path):
    log = DecisionLog(
        [
            DecisionRecord("axpy", "axpy_cuda", (4,)),
            DecisionRecord("axpy", "axpy_openmp", (0, 1, 2, 3)),
        ]
    )
    path = log.save(tmp_path / "decisions.json")
    loaded = DecisionLog.load(path)
    assert loaded.entries == log.entries
    assert isinstance(loaded.entries[1].worker_ids, tuple)


def test_decision_log_rejects_foreign_documents():
    with pytest.raises(ReplayDivergence) as excinfo:
        DecisionLog.from_jsonable({"decisions": []})
    assert excinfo.value.rule == "replay.log-format"


def test_decision_log_rejects_future_versions():
    doc = DecisionLog().to_jsonable()
    doc["version"] = 99
    with pytest.raises(ReplayDivergence) as excinfo:
        DecisionLog.from_jsonable(doc)
    assert excinfo.value.rule == "replay.log-version"


# -- divergence detection -----------------------------------------------------


def _replay_runtime(entries, seed=0):
    return Runtime(
        platform_c2050(),
        scheduler="replay",
        scheduler_options={"log": DecisionLog(entries)},
        seed=seed,
    )


def _submit_one(rt):
    cl = make_axpy_codelet()
    hy = rt.register(np.zeros(N, dtype=np.float32), "y")
    hx = rt.register(np.ones(N, dtype=np.float32), "x")
    rt.submit(cl, [(hy, "rw"), (hx, "r")], ctx={"n": N}, scalar_args=(1.0,))
    rt.wait_for_all()


@pytest.mark.parametrize(
    "entries, rule",
    [
        ([], "replay.log-exhausted"),
        ([DecisionRecord("sgemm", "sgemm_cpu", (0,))], "replay.codelet-mismatch"),
        ([DecisionRecord("axpy", "axpy_fpga", (0,))], "replay.unknown-variant"),
        ([DecisionRecord("axpy", "axpy_cpu", (999,))], "replay.unknown-worker"),
    ],
)


def test_replay_divergence_is_loud(entries, rule):
    rt = _replay_runtime(entries)
    with pytest.raises(ReplayDivergence) as excinfo:
        _submit_one(rt)
    assert excinfo.value.rule == rule


def test_replay_scheduler_follows_log_verbatim():
    # record an eager run, then replay its log entry-for-entry
    rt = Runtime(platform_c2050(), scheduler="dmda", seed=7, record=True)
    _workload(5)(rt)
    rt.shutdown()
    # same seed: the replayed run draws identical timing noise
    rt2 = _replay_runtime(rt.decision_log.entries, seed=7)
    _workload(5)(rt2)
    rt2.shutdown()
    assert_traces_identical(rt.trace, rt2.trace)


def test_assert_traces_identical_flags_any_difference():
    recorded, replayed, _log = record_and_replay(
        _workload(3), machine_factory=platform_c2050, scheduler="eager",
    )
    rec = replayed.tasks[0]
    replayed.tasks[0] = replace(rec, end_time=rec.end_time + 1.0)
    with pytest.raises(ReplayDivergence) as excinfo:
        assert_traces_identical(recorded, replayed)
    assert excinfo.value.rule == "replay.trace-mismatch"
    assert "end_time" in str(excinfo.value)


def test_exploration_counters_may_differ():
    recorded, replayed, _log = record_and_replay(
        _workload(3), machine_factory=platform_c2050, scheduler="dmda",
    )
    # a replayed dmda run never explores; identity must still hold
    assert replayed.n_exploration_decisions == 0
