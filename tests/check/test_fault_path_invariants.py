"""Fault-path invariants: retry discipline and blacklist placement."""


import numpy as np
import pytest

from repro.check import check_trace
from repro.errors import UnrecoverableTaskError
from repro.hw.faults import FaultModel
from repro.hw.presets import cpu_only, platform_c2050
from repro.runtime import RecoveryPolicy, Runtime
from repro.runtime.stats import FaultRecord

from tests.conftest import make_axpy_codelet


def _faulty_trace(machine=None, **kw):
    machine = machine or platform_c2050()
    rt = Runtime(machine, scheduler="dmda", seed=0,
                 faults=FaultModel(kernel_fault_rate=0.3, seed=3),
                 recovery=RecoveryPolicy(max_retries=8), **kw)
    cl = make_axpy_codelet(archs=("cpu", "openmp", "cuda"))
    y = rt.register(np.zeros(4096, dtype=np.float32))
    x = rt.register(np.ones(4096, dtype=np.float32))
    for _ in range(16):
        rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 4096},
                  scalar_args=(1.0,))
    rt.wait_for_all()
    rt.shutdown()
    return rt.trace, machine


def _forge(tr, rec):
    """Append a forged fault record with a fresh, in-range seq stamp."""
    seq = tr.next_seq
    tr.next_seq = seq + 1
    tr.faults.append(rec.replace(seq=seq))


def test_legal_faulty_run_has_no_violations():
    tr, machine = _faulty_trace()
    assert tr.n_faults > 0
    assert check_trace(tr, machine) == []


def test_blacklist_scenario_with_lost_trigger_has_no_false_positive():
    """When the triggering task is itself lost (no TaskRecord), the
    placement scan cannot anchor on a submission index and must stay
    silent rather than flag eagerly-placed later tasks."""
    machine = cpu_only(3)
    rt = Runtime(machine, scheduler="eager", seed=0,
                 faults=FaultModel(kernel_fault_rate=1.0, seed=0),
                 recovery=RecoveryPolicy(max_retries=30, blacklist_after=2))
    cl = make_axpy_codelet(archs=("cpu",))
    y = rt.register(np.zeros(8, dtype=np.float32))
    x = rt.register(np.ones(8, dtype=np.float32))
    with pytest.raises(UnrecoverableTaskError):
        rt.submit(cl, [(y, "rw"), (x, "r")], ctx={"n": 8},
                  scalar_args=(1.0,))
    assert any(f.kind == "blacklisted" for f in rt.trace.faults)
    assert check_trace(rt.trace, machine) == []


def test_duplicate_attempt_fault_is_flagged():
    tr, machine = _faulty_trace()
    kernel = next(f for f in tr.faults if f.kind == "kernel")
    _forge(tr, kernel)  # a second fault for the same (task, attempt)
    rules = {v.rule for v in check_trace(tr, machine)}
    assert "fault.attempt-duplicate" in rules


def test_overlapping_retry_attempts_are_flagged():
    tr, machine = _faulty_trace()
    kernel = next(f for f in tr.faults if f.kind == "kernel")
    # a later attempt faulting *earlier* in time than its predecessor
    _forge(tr, kernel.replace(
        attempt=kernel.attempt + 1, time=kernel.time * 0.5
    ))
    rules = {v.rule for v in check_trace(tr, machine)}
    assert "fault.attempt-overlap" in rules


def test_placement_on_blacklisted_worker_is_flagged():
    tr, machine = _faulty_trace()
    # pick a trigger task and a strictly later-submitted task, then
    # claim the later task's worker was blacklisted before it was ready
    tasks = sorted(tr.tasks, key=lambda r: r.submit_seq)
    trigger, later = None, None
    for a in tasks:
        for b in tasks:
            if (
                b.submit_seq > a.submit_seq
                and b.ready_time > 0
                and b.worker_ids
                and not set(b.worker_ids) & set(a.worker_ids)
            ):
                trigger, later = a, b
                break
        if trigger is not None:
            break
    assert trigger is not None, "workload too uniform to forge a scenario"
    _forge(tr, FaultRecord.make(
        kind="blacklisted",
        time=later.ready_time * 0.5,
        task_id=trigger.task_id,
        task_name=trigger.name,
        worker_ids=(later.worker_ids[0],),
        detail="forged for the test",
    ))
    rules = {v.rule for v in check_trace(tr, machine)}
    assert "fault.blacklist-placement" in rules


def test_trigger_task_keeping_blacklisted_worker_is_flagged():
    tr, machine = _faulty_trace()
    rec = tr.tasks[0]
    _forge(tr, FaultRecord.make(
        kind="blacklisted",
        time=0.0,
        task_id=rec.task_id,
        task_name=rec.name,
        worker_ids=(rec.worker_ids[0],),
        detail="forged: trigger still placed on the retired worker",
    ))
    rules = {v.rule for v in check_trace(tr, machine)}
    assert "fault.blacklist-placement" in rules
