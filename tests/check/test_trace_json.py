"""Lossless trace JSON round-trip and canonical renumbering."""

import numpy as np
import pytest

from repro.check.replay import _comparable
from repro.errors import PeppherError
from repro.hw.faults import FaultModel
from repro.hw.presets import platform_c2050
from repro.runtime import Runtime
from repro.runtime.trace_export import (
    load_trace_json,
    save_trace_json,
    trace_from_dict,
    trace_to_dict,
)

from tests.conftest import make_axpy_codelet


def _faulty_run(seed=0):
    """A run with tasks, transfers, faults and retries — every stream."""
    rt = Runtime(
        platform_c2050(),
        scheduler="eager",
        seed=seed,
        faults=FaultModel(kernel_fault_rate=0.3, seed=seed),
    )
    cl = make_axpy_codelet()
    n = 400_000
    hy = rt.register(np.zeros(n, dtype=np.float32), "y")
    hx = rt.register(np.ones(n, dtype=np.float32), "x")
    for _ in range(8):
        rt.submit(cl, [(hy, "rw"), (hx, "r")], ctx={"n": n}, scalar_args=(1.0,))
    rt.wait_for_all()
    rt.acquire(hy, "r")
    trace, machine = rt.trace, rt.machine
    rt.shutdown()
    return trace, machine


def test_round_trip_is_lossless(tmp_path):
    trace, machine = _faulty_run()
    assert trace.n_faults > 0  # the run must exercise the fault stream
    path = save_trace_json(trace, machine, tmp_path / "t.json")
    loaded, info = load_trace_json(path)
    assert loaded.tasks == trace.tasks
    assert loaded.transfers == trace.transfers
    assert loaded.evictions == trace.evictions
    assert loaded.faults == trace.faults
    assert loaded.accesses == trace.accesses
    assert loaded.requests == trace.requests
    assert loaded.n_submitted == trace.n_submitted
    assert loaded.next_seq == trace.next_seq
    assert loaded.n_task_retries == trace.n_task_retries
    assert loaded.blacklisted_workers == trace.blacklisted_workers
    assert info.name == machine.name
    assert len(info.units) == len(machine.units)


def test_trace_dict_rejects_foreign_and_future_formats():
    trace, machine = _faulty_run()
    doc = trace_to_dict(trace, machine)
    with pytest.raises(PeppherError):
        trace_from_dict({"traceEvents": []})
    doc["version"] = 99
    with pytest.raises(PeppherError):
        trace_from_dict(doc)


def test_canonicalization_makes_equal_runs_compare_equal():
    # two identical runs draw different process-global task/handle ids,
    # so the raw traces differ; the canonical forms must not
    t1, _ = _faulty_run(seed=5)
    t2, _ = _faulty_run(seed=5)
    raw_ids_1 = [rec.task_id for rec in t1.tasks]
    raw_ids_2 = [rec.task_id for rec in t2.tasks]
    assert raw_ids_1 != raw_ids_2
    assert _comparable(t1, ignore=()) == _comparable(t2, ignore=())


def test_canonical_ids_are_dense_first_appearance():
    trace, _ = _faulty_run()
    canon = trace.canonicalized()
    task_ids = [rec.task_id for rec in canon.tasks]
    assert sorted(task_ids) == list(range(len(task_ids)))
    handle_ids = {h for rec in canon.tasks for h in (*rec.reads, *rec.writes)}
    handle_ids |= {rec.handle_id for rec in canon.transfers}
    assert handle_ids and handle_ids == set(range(len(handle_ids)))
    # auto-generated names embedding ids are rewritten consistently
    for rec in canon.tasks:
        assert rec.name.endswith(f"#{rec.task_id}")
