"""Differential harness: composed apps vs direct references, all apps,
parametrized over the scheduler registry (small sizes keep this fast)."""

import numpy as np
import pytest

from repro.apps.mains import TOOL_MAINS, compose_app
from repro.check.differential import (
    SIZE_KWARGS,
    SMALL_SIZES,
    TOLERANCES,
    compare_app,
    composed_result,
    reference_result,
    run_differential,
)
from repro.composer.recipe import Recipe
from repro.runtime.schedulers import policy_names

APPS = sorted(TOOL_MAINS)

#: every registry policy a differential run can drive: "replay" needs a
#: recorded decision log, so it is exercised in tests/check instead
SCHEDULERS = [name for name in policy_names() if name != "replay"]

_cache: dict = {}


def _fixtures(app):
    """Composition and reference result, amortized across schedulers."""
    if app not in _cache:
        _cache[app] = (compose_app(app), reference_result(app))
    return _cache[app]


def test_every_app_is_covered():
    assert APPS == sorted(SMALL_SIZES) == sorted(SIZE_KWARGS)
    assert len(APPS) == 10


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("app", APPS)
def test_composed_matches_direct(app, scheduler):
    composed, reference = _fixtures(app)
    result = compare_app(
        app, scheduler=scheduler, composed=composed, reference=reference
    )
    assert result.ok, (
        f"{app} under {scheduler}: {result.detail} "
        f"(max |diff| {result.max_abs_diff:.3e})"
    )


def test_static_narrowing_still_matches():
    # user-guided static composition: CPU-only variant set must produce
    # the same numerics through the whole generated-wrapper path
    recipe = Recipe(enable_only=("spmv_cpu",))
    result = compare_app("spmv", scheduler="eager", recipe=recipe)
    assert result.ok, result.detail
    assert result.narrowed == ("spmv_cpu",)


def test_run_differential_sweep_reports_every_cell():
    results = run_differential(apps=["sgemm"], schedulers=("eager", "dmda"))
    assert [r.scheduler for r in results] == ["eager", "dmda"]
    assert all(r.ok for r in results)
    assert all(r.size == SMALL_SIZES["sgemm"] for r in results)


def test_lookahead_policy_is_in_the_matrix():
    """The registry-driven matrix above must include the planner."""
    assert "lookahead" in SCHEDULERS


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("app", ["sgemm", "spmv", "hotspot"])
def test_lookahead_matches_dmda_results(app, seed):
    """Greedy and planned composition agree numerically on every seed."""
    composed, _ = _fixtures(app)
    greedy = composed_result(app, scheduler="dmda", seed=seed, composed=composed)
    planned = composed_result(
        app,
        scheduler="lookahead",
        seed=seed,
        composed=composed,
        scheduler_options={"window_size": 8},
    )
    rtol, atol = TOLERANCES.get(app, (1e-5, 1e-6))
    np.testing.assert_allclose(planned, greedy, rtol=rtol, atol=atol)


def test_run_differential_accepts_scheduler_options_pairs():
    results = run_differential(
        apps=["sgemm"],
        schedulers=("dmda", ("lookahead", {"window_size": 4})),
    )
    assert [r.scheduler for r in results] == ["dmda", "lookahead"]
    assert all(r.ok for r in results)


def test_composed_result_threads_scheduler_options():
    """Regression: scheduler_options used to be dropped on the floor.

    A bogus option must now reach make_scheduler and explode, instead of
    silently running the default configuration.
    """
    composed, _ = _fixtures("sgemm")
    with pytest.raises(TypeError):
        composed_result(
            "sgemm",
            scheduler="lookahead",
            composed=composed,
            scheduler_options={"definitely_not_an_option": 1},
        )
