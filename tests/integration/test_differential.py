"""Differential harness: composed apps vs direct references, all apps,
parametrized over the scheduler registry (small sizes keep this fast)."""

import pytest

from repro.apps.mains import TOOL_MAINS, compose_app
from repro.check.differential import (
    SIZE_KWARGS,
    SMALL_SIZES,
    compare_app,
    reference_result,
    run_differential,
)
from repro.composer.recipe import Recipe
from repro.runtime.schedulers import policy_names

APPS = sorted(TOOL_MAINS)

#: every registry policy a differential run can drive: "replay" needs a
#: recorded decision log, so it is exercised in tests/check instead
SCHEDULERS = [name for name in policy_names() if name != "replay"]

_cache: dict = {}


def _fixtures(app):
    """Composition and reference result, amortized across schedulers."""
    if app not in _cache:
        _cache[app] = (compose_app(app), reference_result(app))
    return _cache[app]


def test_every_app_is_covered():
    assert APPS == sorted(SMALL_SIZES) == sorted(SIZE_KWARGS)
    assert len(APPS) == 10


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("app", APPS)
def test_composed_matches_direct(app, scheduler):
    composed, reference = _fixtures(app)
    result = compare_app(
        app, scheduler=scheduler, composed=composed, reference=reference
    )
    assert result.ok, (
        f"{app} under {scheduler}: {result.detail} "
        f"(max |diff| {result.max_abs_diff:.3e})"
    )


def test_static_narrowing_still_matches():
    # user-guided static composition: CPU-only variant set must produce
    # the same numerics through the whole generated-wrapper path
    recipe = Recipe(enable_only=("spmv_cpu",))
    result = compare_app("spmv", scheduler="eager", recipe=recipe)
    assert result.ok, result.detail
    assert result.narrowed == ("spmv_cpu",)


def test_run_differential_sweep_reports_every_cell():
    results = run_differential(apps=["sgemm"], schedulers=("eager", "dmda"))
    assert [r.scheduler for r in results] == ["eager", "dmda"]
    assert all(r.ok for r in results)
    assert all(r.size == SMALL_SIZES["sgemm"] for r in results)
