"""End-to-end composition: XML -> IR -> generated code -> execution."""

import numpy as np
import pytest

from repro.apps import mains, spmv
from repro.apps import odesolver as ode
from repro.components import MainDescriptor, Repository
from repro.composer import Composer, Recipe
from repro.containers import Vector
from repro.workloads.sparse import random_csr


@pytest.fixture
def spmv_repo():
    repo = Repository()
    spmv.register(repo)
    repo.add_main(MainDescriptor(name="spmv_app", components=("spmv",)))
    return repo


def _run_spmv_through(app, nrows=512, seed=0):
    pep = app.peppher
    rt = pep.PEPPHER_INITIALIZE(seed=seed)
    mat = random_csr(nrows, nrows, 8, seed=seed)
    values = Vector(mat.values, runtime=rt)
    colidxs = Vector(mat.colidxs, runtime=rt)
    rowptr = Vector(mat.rowptr, runtime=rt)
    x = Vector(np.ones(nrows, dtype=np.float32), runtime=rt)
    y = Vector.zeros(nrows, runtime=rt)
    pep.spmv(values, mat.nnz, nrows, nrows, 0, colidxs, rowptr, x, y)
    result = y.to_numpy()
    trace = rt.trace
    pep.PEPPHER_SHUTDOWN()
    ref = spmv.reference(mat.values, mat.colidxs, mat.rowptr, np.ones(nrows, dtype=np.float32), nrows)
    assert np.allclose(result, ref, rtol=1e-4)
    return trace


def test_composed_spmv_runs_correctly(tmp_path, spmv_repo):
    app = Composer(spmv_repo, Recipe()).compose(
        spmv_repo.main("spmv_app"), tmp_path
    )
    trace = _run_spmv_through(app)
    assert trace.n_tasks == 1


def test_generated_package_reimports_from_disk_only(tmp_path, spmv_repo):
    """The generated package must be self-contained: a fresh import reads
    the deployed descriptors, not the in-memory repository."""
    app = Composer(spmv_repo, Recipe()).compose(spmv_repo.main("spmv_app"), tmp_path)
    app.import_generated()
    # a second application object over the same directory re-imports
    from repro.composer.application import ComposedApplication

    fresh = ComposedApplication(app.tree, tmp_path)
    _run_spmv_through(fresh)


def test_disable_impls_switch_forces_variant(tmp_path, spmv_repo):
    recipe = Recipe(disable_impls=("spmv_cpu", "spmv_openmp"))
    app = Composer(spmv_repo, recipe).compose(spmv_repo.main("spmv_app"), tmp_path)
    trace = _run_spmv_through(app)
    assert trace.tasks[0].variant == "spmv_cuda_cusp"


def test_static_dispatch_narrows_generated_registry(tmp_path, spmv_repo):
    recipe = Recipe(static_dispatch=True, training_points_per_param=3)
    composer = Composer(spmv_repo, recipe)
    tree = composer.build_ir(spmv_repo.main("spmv_app"))
    composer.process(tree)
    node = tree.node("spmv")
    assert node.static_choice is not None
    app = composer.generate(tree, tmp_path)
    registry_text = (tmp_path / "_registry.py").read_text()
    assert "STATIC_NARROWING" in registry_text
    winners = sorted(node.static_choice.winners())
    assert str(winners) in registry_text
    _run_spmv_through(app)


def test_use_history_models_off_falls_back_to_eager(tmp_path):
    repo = Repository()
    spmv.register(repo)
    main = MainDescriptor(
        name="spmv_app", components=("spmv",), use_history_models=False
    )
    repo.add_main(main)
    app = Composer(repo, Recipe()).compose(main, tmp_path)
    pep = app.peppher
    rt = pep.PEPPHER_INITIALIZE()
    assert rt.scheduler.name == "eager"
    pep.PEPPHER_SHUTDOWN()


def test_platform_override_at_initialize(tmp_path, spmv_repo):
    app = Composer(spmv_repo, Recipe()).compose(spmv_repo.main("spmv_app"), tmp_path)
    rt = app.initialize(platform="c1060")
    assert rt.machine.name == "xeon-e5520+c1060"
    app.shutdown()


def test_multi_component_application(tmp_path):
    """All nine ODE components composed into one application."""
    app = mains.compose_app("odesolver", out_dir=tmp_path)
    files = app.artefact_files()
    for name in ode.COMPONENT_NAMES:
        assert f"{name}_stub.py" in files
    y, elapsed, calls = mains.odesolver_main(app=app, n=96, steps=10)
    assert np.allclose(y, ode.reference_solution(96, 10), rtol=1e-4)
    assert calls == 2 + 10 * 18 + 1


def test_makefile_and_manifest_deployed(tmp_path, spmv_repo):
    app = Composer(spmv_repo, Recipe()).compose(spmv_repo.main("spmv_app"), tmp_path)
    assert (tmp_path / "Makefile").read_text().startswith("# Makefile")
    import json

    manifest = json.loads((tmp_path / "build_manifest.json").read_text())
    assert manifest["application"] == "spmv_app"


def test_tool_mains_match_direct_results():
    """Tool-generated and hand-written versions compute identical spmv."""
    from repro.direct import spmv_direct

    y_tool = mains.spmv_main(nrows=256, seed=2)
    y_direct = spmv_direct.main(nrows=256, seed=2)
    assert np.allclose(y_tool, y_direct, rtol=1e-5)
