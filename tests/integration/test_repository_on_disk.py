"""The full ten-app repository survives the disk round trip."""

import numpy as np
import pytest

from repro.apps import APP_NAMES, make_repository
from repro.apps import odesolver as ode
from repro.components import MainDescriptor, Repository
from repro.composer import Composer, Recipe


@pytest.fixture(scope="module")
def disk_repo(tmp_path_factory):
    root = tmp_path_factory.mktemp("repo")
    repo = make_repository()  # all ten applications
    repo.add_main(
        MainDescriptor(name="everything", components=tuple(
            name for name in APP_NAMES if name != "odesolver"
        ) + ode.COMPONENT_NAMES)
    )
    repo.save_to(root)
    return root


def test_scan_recovers_every_interface(disk_repo):
    loaded = Repository.scan(disk_repo)
    names = set(loaded.interface_names())
    assert {"spmv", "sgemm", "bfs", "cfd", "hotspot", "lud", "nw",
            "particlefilter", "pathfinder"} <= names
    assert set(ode.COMPONENT_NAMES) <= names
    assert loaded.validate() == []


def test_scan_recovers_all_implementations(disk_repo):
    loaded = Repository.scan(disk_repo)
    total = sum(
        len(loaded.implementations_of(n)) for n in loaded.interface_names()
    )
    assert total == 9 * 3 + 9 * 3  # 9 simple apps + 9 ode components, 3 each


def test_compose_whole_suite_from_disk(disk_repo, tmp_path):
    loaded = Repository.scan(disk_repo)
    app = Composer(loaded, Recipe()).compose(loaded.main("everything"), tmp_path)
    files = app.artefact_files()
    # one stub per component: 9 simple + 9 ode
    stubs = [f for f in files if f.endswith("_stub.py")]
    assert len(stubs) == 18
    # and the composed application actually runs a couple of components
    pep = app.peppher
    rt = pep.PEPPHER_INITIALIZE(seed=0)
    from repro.containers import Vector
    from repro.workloads.sparse import random_csr

    mat = random_csr(128, 128, 4, seed=0)
    values = Vector(mat.values, runtime=rt)
    colidxs = Vector(mat.colidxs, runtime=rt)
    rowptr = Vector(mat.rowptr, runtime=rt)
    x = Vector(np.ones(128, dtype=np.float32), runtime=rt)
    y = Vector.zeros(128, runtime=rt)
    pep.spmv(values, mat.nnz, 128, 128, 0, colidxs, rowptr, x, y)
    out = y.to_numpy()
    pep.PEPPHER_SHUTDOWN()
    from repro.apps import spmv as spmv_mod

    ref = spmv_mod.reference(
        mat.values, mat.colidxs, mat.rowptr, np.ones(128, dtype=np.float32), 128
    )
    assert np.allclose(out, ref, rtol=1e-4)
