"""Experiment harnesses reproduce the paper's shapes (small scale)."""

import pytest

from repro.experiments import ablations, fig3, fig5, fig6, fig7, overhead, table1


def test_table1_direct_exceeds_tool_for_every_app():
    rows = table1.run()
    assert len(rows) == 10
    for row in rows:
        assert row.direct_loc > row.tool_loc, row.application
        assert 5 <= row.difference_percent <= 150, row.application
    # the ODE solver is the largest application in both columns
    ode_row = next(r for r in rows if r.application == "odesolver")
    assert ode_row.tool_loc == max(r.tool_loc for r in rows)
    assert "Table I" in table1.format_table(rows)


def test_fig3_copy_counts_match_paper_exactly():
    result = fig3.run(n=50_000)
    assert result.smart_copies == 2
    assert result.naive_copies == 7
    assert result.smart_h2d == 0 and result.smart_d2h == 2
    assert result.values_ok
    assert result.readers_overlap
    assert "2 copies" in fig3.format_result(result)


def test_fig5_hybrid_beats_direct_cuda_on_every_matrix():
    rows = fig5.run(scale=0.15, verify=True)
    assert len(rows) == 6
    for row in rows:
        assert row.speedup > 1.0, f"{row.matrix}: {row.speedup:.2f}"
        assert row.cpu_chunks > 0  # CPUs always contribute
    # at this reduced scale dmda may rightly keep the tiniest matrix
    # CPU-only, but the big matrices must be genuinely hybrid
    assert sum(1 for r in rows if r.gpu_chunks > 0) >= 4
    big = max(rows, key=lambda r: r.nnz)
    assert big.gpu_chunks > 0
    assert max(r.speedup for r in rows) > 1.3
    assert "speedup" in fig5.format_result(rows)


@pytest.mark.parametrize("platform", ["c2050", "c1060"])
def test_fig6_tgpa_tracks_best_static(platform):
    apps = ("bfs", "sgemm", "nw", "hotspot")
    result = fig6.run(platform, apps=apps, size_scale=0.25)
    norm = result.normalised()
    for app in apps:
        best_static = min(norm[app]["openmp"], norm[app]["cuda"])
        # TGPA (=1.0 by normalisation) within 25% of the best static
        assert best_static > 0.75, (app, norm[app])
    assert platform in fig6.format_result(result)


def test_fig6_winner_flips_between_platforms():
    apps = ("bfs", "hotspot")
    r2050 = fig6.run("c2050", apps=apps, size_scale=0.25).normalised()
    r1060 = fig6.run("c1060", apps=apps, size_scale=0.25).normalised()
    # hotspot stays GPU-friendly on both machines
    assert r2050["hotspot"]["cuda"] < r2050["hotspot"]["openmp"]
    assert r1060["hotspot"]["cuda"] < r1060["hotspot"]["openmp"]
    # bfs flips: CUDA wins with caches (C2050), OpenMP without (C1060)
    assert r2050["bfs"]["cuda"] < r2050["bfs"]["openmp"]
    assert r1060["bfs"]["openmp"] < r1060["bfs"]["cuda"]


def test_fig7_tool_overhead_negligible():
    points = fig7.run(sizes=(250, 500), steps=40, verify=True)
    for p in points:
        assert p.direct_cpu_s > 2 * p.direct_cuda_s  # CPU far slower
        assert abs(p.tool_overhead_percent) < 10.0  # tool ~ direct
    # times grow with problem size
    assert points[1].direct_cpu_s > points[0].direct_cpu_s
    assert "Figure 7" in fig7.format_result(points)


def test_overhead_below_two_microseconds_virtual():
    result = overhead.run(n_tasks=500)
    assert result.virtual_us_per_task < 2.0  # the paper's bound
    assert "us/task" in overhead.format_result(result)


def test_ablation_scheduler_random_is_worst():
    results = ablations.scheduler_study(scale=0.1)
    assert set(results) == {"eager", "random", "ws", "dm", "dmda"}
    assert results["random"] == max(results.values())
    assert "ABL1" in ablations.format_scheduler_study(results)


def test_ablation_containers_save_transfers():
    result = ablations.container_study(nrows=50_000, calls=8)
    assert result.smart_transfers < result.raw_transfers / 3
    assert result.speedup > 1.5
    assert "ABL2" in ablations.format_container_study(result)


def test_ablation_narrowing_helps_cold_start():
    result = ablations.narrowing_study(size=512, calls=8)
    assert result.narrowed_s < result.dynamic_s
    assert result.dynamic_wrong_picks > 0  # calibration explored losers
    assert "ABL3" in ablations.format_narrowing_study(result)


def test_obs_overhead_result_math():
    result = overhead.ObsOverheadResult(
        n_tasks=100,
        reps=3,
        base_us_per_task=10.0,
        obs_us_per_task=10.4,
        pair_overheads=(0.01, 0.05, 0.02),
    )
    assert result.overhead == pytest.approx(0.04)
    assert result.median_pair_overhead == pytest.approx(0.02)
    assert result.within_budget  # 4% <= 5% budget
    over = overhead.ObsOverheadResult(
        n_tasks=100, reps=1, base_us_per_task=10.0, obs_us_per_task=11.0
    )
    assert not over.within_budget
    assert over.median_pair_overhead == over.overhead  # no pairs recorded
    doc = over.to_dict()
    assert doc["overhead_pct"] == pytest.approx(10.0)
    assert doc["within_budget"] is False
    assert "overhead" in overhead.format_obs_result(over)
