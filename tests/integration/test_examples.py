"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart_example():
    out = _run("quickstart.py")
    assert "utility mode generated" in out
    assert "composed 'axpy_app'" in out
    assert "variant selection" in out


def test_spmv_hybrid_example():
    out = _run("spmv_hybrid.py", "HB", "0.1")
    assert "speedup" in out
    assert "verified against the NumPy oracle" in out


def test_ode_solver_example():
    out = _run("ode_solver.py", "100", "20")
    assert "composition tool" in out
    assert "match the NumPy oracle" in out


def test_utility_mode_example():
    out = _run("utility_mode.py")
    assert "interface.xml" in out
    assert "peppherInterface" in out


def test_dynamic_scheduling_example():
    out = _run("dynamic_scheduling.py", "sgemm")
    assert "Figure 6 (c2050)" in out and "Figure 6 (c1060)" in out


def test_multi_gpu_example():
    out = _run("multi_gpu.py", "0.1")
    assert "2 GPU" in out and "Gantt" in out
    assert "Chrome trace written" in out


def test_reproduce_all_quick(tmp_path):
    out = _run(
        "reproduce_all.py", str(tmp_path / "report.txt"), "--quick", timeout=400
    )
    assert "full report written" in out
    report = (tmp_path / "report.txt").read_text()
    for heading in ("Table I", "Figure 3", "Figure 5", "Figure 6", "Figure 7",
                    "ABL1", "ABL6"):
        assert heading in report, heading
