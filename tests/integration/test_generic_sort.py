"""Generic component expansion end to end (paper section IV-B).

The generic ``sort`` interface is instantiated for float and int via the
composition recipe, generating one concrete component (with its own
stubs and descriptors) per type binding — all sharing the same kernel
sources.  The CUDA variant additionally expands its ``tile`` tunable
into two variants and carries a selectability constraint.
"""

import numpy as np
import pytest

from repro.apps import sort
from repro.components import MainDescriptor, Repository
from repro.composer import Composer, Recipe
from repro.containers import Vector


@pytest.fixture
def sort_app(tmp_path):
    repo = Repository()
    sort.register(repo)
    main = MainDescriptor(name="sort_app", components=("sort",))
    repo.add_main(main)
    recipe = Recipe().with_bindings("sort", {"T": "float"}, {"T": "int"})
    return Composer(repo, recipe).compose(main, tmp_path)


def test_expansion_generates_one_component_per_binding(sort_app):
    files = sort_app.artefact_files()
    assert "sort_float_stub.py" in files
    assert "sort_int_stub.py" in files
    assert "descriptors/sort_float/interface.xml" in files
    assert "descriptors/sort_int/cuda/sort_bitonic_cuda_int.xml" in files


def test_instantiations_share_kernel_sources(sort_app):
    from repro.components import load_descriptor

    impl_f = load_descriptor(
        sort_app.out_dir / "descriptors/sort_float/cpu_serial/sort_cpu_float.xml"
    )
    impl_i = load_descriptor(
        sort_app.out_dir / "descriptors/sort_int/cpu_serial/sort_cpu_int.xml"
    )
    assert impl_f.kernel_ref == impl_i.kernel_ref == "repro.apps.sort:sort_cpu"


def test_both_instantiations_sort_correctly(sort_app):
    pep = sort_app.peppher
    rt = pep.PEPPHER_INITIALIZE(seed=1)
    rng = np.random.default_rng(0)
    floats = Vector(rng.standard_normal(5000).astype(np.float32), runtime=rt)
    ints = Vector(rng.integers(0, 10_000, 5000).astype(np.int64), runtime=rt)
    pep.sort_float(floats, 5000)
    pep.sort_int(ints, 5000)
    f = floats.to_numpy()
    i = ints.to_numpy()
    pep.PEPPHER_SHUTDOWN()
    assert (np.diff(f) >= 0).all()
    assert (np.diff(i) >= 0).all()


def test_tunable_expansion_creates_per_tile_variants(sort_app):
    pkg = sort_app.import_generated()
    import importlib

    registry = importlib.import_module(f"{sort_app.package_name}._registry")
    names = {v.name for v in registry.CODELETS["sort_float"].variants}
    assert "sort_bitonic_cuda_float_tile256" in names
    assert "sort_bitonic_cuda_float_tile1024" in names


def test_constraint_keeps_gpu_off_small_arrays(sort_app):
    """The CUDA variant declares n >= 1024 selectability."""
    pep = sort_app.peppher
    rt = pep.PEPPHER_INITIALIZE(seed=2)
    small = Vector(np.random.default_rng(1).standard_normal(64).astype(np.float32), runtime=rt)
    for _ in range(6):
        pep.sort_float(small, 64)
    rt.wait_for_all()
    archs = {rec.arch for rec in rt.trace.tasks}
    pep.PEPPHER_SHUTDOWN()
    assert "cuda" not in archs


def test_unbound_generic_fails_composition(tmp_path):
    repo = Repository()
    sort.register(repo)
    main = MainDescriptor(name="sort_app", components=("sort",))
    repo.add_main(main)
    from repro.errors import CompositionError

    with pytest.raises(CompositionError, match="type bindings"):
        Composer(repo, Recipe()).compose(main, tmp_path)
