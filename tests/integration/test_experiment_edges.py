"""Experiment-harness edge cases and reporting details."""

import pytest

from repro.experiments import fig5, fig6


def test_fig6_rejects_unknown_mode():
    with pytest.raises(ValueError):
        fig6.measure_app(
            fig6.SCENARIOS["sgemm"], lambda: None, mode="hybrid"
        )


def test_fig6_per_size_report_lists_all_sizes():
    result = fig6.run("c2050", apps=("sgemm",), size_scale=0.2)
    text = fig6.format_result(result, per_size=True)
    assert "per-size virtual times" in text
    assert text.count("sgemm") >= 4  # summary row + three mode rows


def test_fig6_adapt_win_note_when_tgpa_beats_both():
    result = fig6.run("c2050", apps=("bfs",), size_scale=0.25)
    norm = result.normalised()["bfs"]
    text = fig6.format_result(result)
    if min(norm["openmp"], norm["cuda"]) > 1.0:
        assert "adapting per problem size" in text


def test_fig5_single_matrix_subset():
    rows = fig5.run(matrices=("Network",), scale=0.05)
    assert [r.matrix for r in rows] == ["Network"]


def test_entry_wrapper_charges_packing_overhead(runtime):
    """The generated indirection costs a little virtual host time —
    the quantity Figure 7 shows to be negligible."""
    import numpy as np

    from repro.apps import spmv
    from repro.composer.glue import WRAPPER_OVERHEAD_S, invoke_entry, lower_component
    from repro.containers import Vector
    from repro.workloads.sparse import random_csr

    cl = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS)
    mat = random_csr(64, 64, 4, seed=1)
    vecs = [
        Vector(mat.values, runtime=runtime),
        Vector(mat.colidxs, runtime=runtime),
        Vector(mat.rowptr, runtime=runtime),
        Vector(np.ones(64, dtype=np.float32), runtime=runtime),
        Vector.zeros(64, runtime=runtime),
    ]
    before = runtime.now
    invoke_entry(
        runtime,
        cl,
        spmv.INTERFACE,
        (vecs[0], mat.nnz, 64, 64, 0, vecs[1], vecs[2], vecs[3], vecs[4]),
        sync=False,
    )
    # submission overhead + the wrapper's packing overhead were charged
    assert runtime.now >= before + WRAPPER_OVERHEAD_S
