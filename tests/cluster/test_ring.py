"""Consistent-hash ring: stability, preference order, minimal remap."""

import pytest

from repro.cluster import HashRing


def test_vnodes_validation():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)


def test_membership_and_idempotent_add_remove():
    ring = HashRing([0, 1, 2])
    assert len(ring) == 3
    assert 1 in ring and 5 not in ring
    ring.add(1)  # no-op
    assert len(ring) == 3
    ring.remove(1)
    ring.remove(1)  # no-op
    assert len(ring) == 2
    assert ring.members == frozenset({0, 2})


def test_empty_ring_routes_nowhere():
    ring = HashRing()
    assert ring.preference("tenant") == []
    assert ring.primary("tenant") is None


def test_preference_is_distinct_and_covers_all_members():
    ring = HashRing(range(8))
    pref = ring.preference("tenant-a")
    assert sorted(pref) == list(range(8))
    assert len(set(pref)) == 8
    assert ring.primary("tenant-a") == pref[0]
    # the n cap truncates the same order
    assert ring.preference("tenant-a", 3) == pref[:3]


def test_routing_is_deterministic_across_instances():
    a = HashRing(range(10), vnodes=32)
    b = HashRing(range(10), vnodes=32)
    for key in ("alpha", "beta", "gamma", "tenant-17"):
        assert a.preference(key) == b.preference(key)


def test_insertion_order_does_not_matter():
    a = HashRing([0, 1, 2, 3, 4])
    b = HashRing([4, 2, 0, 3, 1])
    for key in ("alpha", "beta", "gamma"):
        assert a.preference(key) == b.preference(key)


def test_removal_only_remaps_keys_owned_by_the_removed_node():
    ring = HashRing(range(10), vnodes=64)
    keys = [f"tenant-{i}" for i in range(200)]
    before = {k: ring.primary(k) for k in keys}
    victim = ring.primary("tenant-0")
    ring.remove(victim)
    for k in keys:
        if before[k] != victim:
            assert ring.primary(k) == before[k], (
                "a key not owned by the removed node was remapped"
            )
        else:
            assert ring.primary(k) != victim


def test_removed_node_leaves_every_preference_list():
    ring = HashRing(range(6))
    ring.remove(3)
    for key in ("a", "b", "c", "d"):
        assert 3 not in ring.preference(key)
