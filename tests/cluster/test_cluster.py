"""Cluster end-to-end: failover, hedging, brown-out, drain, replay."""

import pytest

from repro.cluster import (
    BrownoutPolicy,
    Cluster,
    ClusterTenant,
    HashRing,
    HedgePolicy,
    NodeFaultModel,
    chaos_schedule,
)
from repro.errors import PeppherError
from repro.hw.faults import FaultModel
from repro.runtime.engine import RecoveryPolicy


def tenants(n_requests=150, rate_hz=3000.0):
    return [
        ClusterTenant("alpha", workload="sgemm", size=64, rate_hz=rate_hz,
                      n_requests=n_requests, seed=11, priority=2, slo_ms=5.0),
        ClusterTenant("beta", workload="bfs", size=200, rate_hz=rate_hz,
                      n_requests=n_requests, seed=22, priority=1),
        ClusterTenant("gamma", workload="pathfinder", size=48, rate_hz=rate_hz,
                      n_requests=n_requests // 2, seed=33, priority=0),
    ]


def primary_of(name, n_nodes, vnodes=32):
    """The node the router will prefer for ``name`` (same ring math)."""
    return HashRing(range(n_nodes), vnodes=vnodes).preference(name)[0]


def make_cluster(n_nodes=4, specs=None, **kw):
    defaults = dict(seed=1, check=True)
    defaults.update(kw)
    return Cluster(n_nodes, specs or tenants(), **defaults)


def events(trace, kind, node=None):
    return [
        e for e in trace.events
        if e.kind == kind and (node is None or e.node == node)
    ]


# ---------------------------------------------------------------------------
# construction and validation
# ---------------------------------------------------------------------------

def test_tenant_validation():
    with pytest.raises(PeppherError, match="priority"):
        ClusterTenant("t", priority=-1)
    with pytest.raises(PeppherError, match="slo_ms"):
        ClusterTenant("t", slo_ms=0.0)


def test_policy_validation():
    with pytest.raises(ValueError):
        HedgePolicy(after_s=0.0)
    with pytest.raises(ValueError):
        HedgePolicy(after_s=1e-3, max_hedges=0)
    with pytest.raises(ValueError):
        BrownoutPolicy(high_water=1.0, low_water=2.0)


def test_cluster_rejects_fault_plan_naming_unknown_node():
    with pytest.raises(ValueError, match="crash_at names node"):
        make_cluster(
            n_nodes=2, node_faults=NodeFaultModel(crash_at={5: 1.0})
        )


def test_run_and_drain_are_one_shot():
    c = make_cluster(specs=tenants(n_requests=10))
    c.run()
    with pytest.raises(PeppherError, match="already ran"):
        c.run()
    with pytest.raises(PeppherError, match="before run"):
        c.drain(0, 0.01)
    c.shutdown()


# ---------------------------------------------------------------------------
# healthy path
# ---------------------------------------------------------------------------

def test_healthy_run_completes_everything():
    c = make_cluster()
    tr = c.run()
    offered = sum(s.n_requests for s in tenants())
    assert len(tr.requests) == offered
    assert all(r.outcome == "completed" for r in tr.requests)
    assert not events(tr, "dead") and not events(tr, "failover")
    assert sorted(c.alive_nodes) == [0, 1, 2, 3]
    c.shutdown()


def test_tenants_route_to_their_ring_primary_when_healthy():
    c = make_cluster()
    tr = c.run()
    for name in ("alpha", "beta", "gamma"):
        served = {r.served_by for r in tr.requests if r.tenant == name}
        assert served == {primary_of(name, 4)}
    c.shutdown()


# ---------------------------------------------------------------------------
# crash and failover
# ---------------------------------------------------------------------------

def test_crash_is_detected_and_failed_over():
    victim = primary_of("alpha", 4)
    c = make_cluster(
        node_faults=NodeFaultModel(crash_at={victim: 0.02}),
    )
    tr = c.run()
    dead = events(tr, "dead", victim)
    assert len(dead) == 1 and dead[0].time > 0.02
    assert events(tr, "failover")
    assert all(r.outcome == "completed" for r in tr.requests)
    assert any(r.failed_over for r in tr.requests if r.tenant == "alpha")
    assert victim not in c.alive_nodes
    # after the death was declared, alpha is served elsewhere
    t_dead = dead[0].time
    late = [
        r for r in tr.requests
        if r.tenant == "alpha" and r.arrival_time > t_dead
    ]
    assert late and all(r.served_by != victim for r in late)
    c.shutdown()


def test_crashed_node_executes_nothing_after_the_crash():
    victim = primary_of("alpha", 4)
    c = make_cluster(node_faults=NodeFaultModel(crash_at={victim: 0.02}))
    c.run()
    engine_trace = c.nodes[victim].engine.trace
    assert engine_trace.tasks, "victim never served — test is vacuous"
    assert all(rec.start_time <= 0.02 + 1e-9 for rec in engine_trace.tasks)
    c.shutdown()


def test_exactly_once_under_crash_and_hedging():
    victim = primary_of("alpha", 4)
    c = make_cluster(
        node_faults=NodeFaultModel(crash_at={victim: 0.02}),
        hedge=HedgePolicy(after_s=2e-3),
    )
    tr = c.run()
    applied = {}
    for a in tr.attempts:
        if a.outcome == "applied":
            applied[(a.tenant, a.req_id)] = applied.get(
                (a.tenant, a.req_id), 0
            ) + 1
    for r in tr.requests:
        want = 1 if r.outcome == "completed" else 0
        assert applied.get((r.tenant, r.req_id), 0) == want
    c.shutdown()


# ---------------------------------------------------------------------------
# partitions
# ---------------------------------------------------------------------------

def test_partition_heals_and_node_rejoins():
    victim = primary_of("alpha", 4)
    c = make_cluster(
        node_faults=NodeFaultModel(partition_at={victim: (0.015, 0.035)}),
    )
    tr = c.run()
    assert events(tr, "partition", victim)
    assert events(tr, "heal", victim)
    assert events(tr, "dead", victim), "partition was never detected"
    assert events(tr, "alive", victim), "healed node never rejoined"
    assert all(r.outcome == "completed" for r in tr.requests)
    assert victim in c.alive_nodes
    c.shutdown()


def test_partition_redelivery_is_suppressed_not_double_applied():
    """Work stranded on a partitioned node completes and is redelivered
    at heal time — after failover already answered.  The redelivery
    must be recorded as a duplicate, never applied twice.

    The node is slowed first so its in-flight work at partition start
    actually straddles the window (healthy tasks are microseconds)."""
    victim = primary_of("alpha", 4)
    c = make_cluster(
        node_faults=NodeFaultModel(
            slow_at={victim: (0.010, 500.0)},
            partition_at={victim: (0.012, 0.040)},
        ),
    )
    tr = c.run()
    dups = [a for a in tr.attempts if a.outcome == "duplicate"]
    assert dups, "no duplicate deliveries — the scenario did not trigger"
    assert events(tr, "duplicate")
    c.shutdown()


# ---------------------------------------------------------------------------
# stragglers and hedging
# ---------------------------------------------------------------------------

def test_straggler_triggers_hedges_and_all_requests_complete():
    victim = primary_of("alpha", 4)
    c = make_cluster(
        node_faults=NodeFaultModel(slow_at={victim: (0.01, 200.0)}),
        hedge=HedgePolicy(after_s=2e-3),
    )
    tr = c.run()
    assert events(tr, "slowdown", victim)
    hedges = [a for a in tr.attempts if a.hedge]
    assert hedges, "no hedges fired against a 200x straggler"
    assert all(a.node != victim for a in hedges), (
        "a hedge was dispatched to the straggler itself"
    )
    assert all(r.outcome == "completed" for r in tr.requests)
    c.shutdown()


# ---------------------------------------------------------------------------
# brown-out
# ---------------------------------------------------------------------------

def test_brownout_sheds_only_the_lowest_priority_class():
    specs = [
        ClusterTenant("prod", workload="sgemm", size=64, rate_hz=20000.0,
                      n_requests=400, seed=1, priority=2),
        ClusterTenant("batch", workload="pathfinder", size=48,
                      rate_hz=20000.0, n_requests=400, seed=2, priority=0),
    ]
    c = make_cluster(
        n_nodes=2,
        specs=specs,
        node_faults=NodeFaultModel(
            slow_at={0: (0.002, 50.0), 1: (0.002, 50.0)}
        ),
        brownout=BrownoutPolicy(high_water=1.0, low_water=0.5),
        max_inflight=1,
    )
    tr = c.run()
    shed = [r for r in tr.requests if r.shed_reason == "brownout"]
    assert shed, "pressure never tripped the brown-out gate"
    assert events(tr, "brownout_on")
    assert {r.tenant for r in shed} == {"batch"}
    assert all(
        r.outcome == "completed"
        for r in tr.requests
        if r.tenant == "prod"
    )
    c.shutdown()


# ---------------------------------------------------------------------------
# planned drain
# ---------------------------------------------------------------------------

def test_drain_removes_the_node_without_losing_requests():
    victim = primary_of("alpha", 4)
    c = make_cluster()
    c.drain(victim, at=0.02)
    tr = c.run()
    assert events(tr, "drain_start", victim)
    done = events(tr, "drain_done", victim)
    assert len(done) == 1
    assert all(r.outcome == "completed" for r in tr.requests)
    assert c.nodes[victim].removed
    assert victim not in c.alive_nodes
    # nothing routed to the node after it left the ring
    t_gone = done[0].time
    assert all(
        a.node != victim
        for a in tr.attempts
        if a.dispatch_time > t_gone
    )
    c.shutdown()


# ---------------------------------------------------------------------------
# device faults inside cluster nodes
# ---------------------------------------------------------------------------

def test_device_faults_are_retried_inside_nodes():
    c = make_cluster(
        specs=tenants(n_requests=60),
        device_faults=FaultModel(kernel_fault_rate=0.2, seed=5),
        recovery=RecoveryPolicy(max_retries=8),
    )
    tr = c.run()
    node_faults = sum(
        len(n.engine.trace.faults) for n in c.nodes.values()
    )
    assert node_faults > 0, "device fault rate too low to matter"
    assert all(r.outcome == "completed" for r in tr.requests)
    c.shutdown()


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

def _digest(**kw):
    c = make_cluster(check=False, **kw)
    d = c.run().digest()
    c.shutdown()
    return d


def test_same_seed_chaos_runs_are_identical():
    plan = chaos_schedule(4, at=0.02, kill=1, slow=1,
                          slow_factor=50.0, stagger_s=0.005, seed=9)
    kw = dict(node_faults=plan, hedge=HedgePolicy(after_s=2e-3))
    assert _digest(**kw) == _digest(**kw)


def test_seed_changes_the_trace_through_timing_noise():
    """With noise enabled the cluster seed feeds every node's timing
    perturbation: same seed replays identically, a different seed
    produces a different trace."""
    assert _digest(seed=1, noise_sigma=0.05) == _digest(
        seed=1, noise_sigma=0.05
    )
    assert _digest(seed=1, noise_sigma=0.05) != _digest(
        seed=2, noise_sigma=0.05
    )
