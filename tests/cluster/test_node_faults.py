"""Node-level fault plans: validation and seeded chaos schedules."""

import pytest

from repro.cluster import NodeFaultModel, chaos_schedule


def test_empty_model_is_disabled():
    assert not NodeFaultModel().enabled
    assert NodeFaultModel(crash_at={0: 1.0}).enabled
    assert NodeFaultModel(slow_at={0: (1.0, 2.0)}).enabled
    assert NodeFaultModel(partition_at={0: (1.0, 2.0)}).enabled


def test_validation_rejects_malformed_schedules():
    with pytest.raises(ValueError, match="crash_at"):
        NodeFaultModel(crash_at={0: -1.0})
    with pytest.raises(ValueError, match="slow_at"):
        NodeFaultModel(slow_at={0: (-1.0, 2.0)})
    with pytest.raises(ValueError, match="factor"):
        NodeFaultModel(slow_at={0: (1.0, 0.5)})
    with pytest.raises(ValueError, match="partition_at"):
        NodeFaultModel(partition_at={0: (2.0, 1.0)})  # heals before start
    with pytest.raises(ValueError, match="partition_at"):
        NodeFaultModel(partition_at={0: (-0.5, 1.0)})


def test_never_healing_partition_is_legal():
    m = NodeFaultModel(partition_at={0: (1.0, float("inf"))})
    assert m.partition_at[0][1] == float("inf")


def test_validate_for_rejects_unknown_nodes():
    NodeFaultModel(crash_at={3: 1.0}).validate_for(4)
    with pytest.raises(ValueError, match="crash_at names node 4"):
        NodeFaultModel(crash_at={4: 1.0}).validate_for(4)
    with pytest.raises(ValueError, match="slow_at"):
        NodeFaultModel(slow_at={9: (1.0, 2.0)}).validate_for(4)
    with pytest.raises(ValueError, match="partition_at"):
        NodeFaultModel(partition_at={-1: (0.0, 1.0)}).validate_for(4)


def test_chaos_schedule_draws_distinct_victims():
    plan = chaos_schedule(
        8, at=1.0, kill=2, slow=2, partition=2,
        partition_for=0.5, stagger_s=0.1, seed=7,
    )
    victims = (
        list(plan.crash_at)
        + list(plan.slow_at)
        + list(plan.partition_at)
    )
    assert len(victims) == 6
    assert len(set(victims)) == 6
    assert all(0 <= v < 8 for v in victims)


def test_chaos_schedule_staggers_incidents_in_order():
    plan = chaos_schedule(
        6, at=2.0, kill=1, slow=1, partition=1,
        partition_for=1.0, stagger_s=0.25, seed=0,
    )
    (t_crash,) = plan.crash_at.values()
    ((t_slow, _),) = plan.slow_at.values()
    ((t_part, t_heal),) = plan.partition_at.values()
    assert t_crash == 2.0
    assert t_slow == 2.25
    assert t_part == 2.5
    assert t_heal == 3.5


def test_chaos_schedule_is_seed_deterministic():
    kw = dict(at=1.0, kill=2, slow=1, slow_factor=8.0, stagger_s=0.1)
    a = chaos_schedule(10, seed=3, **kw)
    b = chaos_schedule(10, seed=3, **kw)
    c = chaos_schedule(10, seed=4, **kw)
    assert a.crash_at == b.crash_at
    assert a.slow_at == b.slow_at
    assert (a.crash_at, a.slow_at) != (c.crash_at, c.slow_at)


def test_chaos_schedule_rejects_too_many_victims():
    with pytest.raises(ValueError, match="victims"):
        chaos_schedule(3, at=1.0, kill=2, slow=2)
    with pytest.raises(ValueError, match="at must be"):
        chaos_schedule(3, at=-1.0)
