"""Phi-accrual failure detector: suspicion accrual and recovery."""

import math

import pytest

from repro.cluster import NodeState, PhiAccrualDetector


def make(interval=1e-3, **kw):
    return PhiAccrualDetector(interval, **kw)


def test_constructor_validation():
    with pytest.raises(ValueError):
        PhiAccrualDetector(0.0)
    with pytest.raises(ValueError):
        make(suspect_phi=0.0)
    with pytest.raises(ValueError):
        make(suspect_phi=3.0, dead_phi=2.0)
    with pytest.raises(ValueError):
        make(ewma_alpha=0.0)
    with pytest.raises(ValueError):
        make(ewma_alpha=1.5)


def test_unknown_node_has_zero_suspicion():
    d = make()
    assert d.phi(7, 10.0) == 0.0
    assert d.state(7, 10.0) is NodeState.ALIVE


def test_phi_rises_monotonically_with_silence():
    d = make()
    d.register(0, 0.0)
    phis = [d.phi(0, t) for t in (0.0, 1e-3, 2e-3, 5e-3, 10e-3)]
    assert phis[0] == 0.0
    assert all(a < b for a, b in zip(phis, phis[1:]))


def test_heartbeat_resets_suspicion():
    d = make()
    d.register(0, 0.0)
    assert d.phi(0, 4e-3) > d.suspect_phi
    d.heartbeat(0, 4e-3)
    assert d.phi(0, 4e-3) == 0.0
    assert d.state(0, 4e-3) is NodeState.ALIVE


def test_state_thresholds():
    d = make(suspect_phi=1.0, dead_phi=2.0)
    d.register(0, 0.0)
    # phi = elapsed / (mean * ln 10): thresholds at 1 and 2
    at_suspect = 1.0 * 1e-3 * math.log(10.0)
    at_dead = 2.0 * 1e-3 * math.log(10.0)
    assert d.state(0, at_suspect * 0.99) is NodeState.ALIVE
    assert d.state(0, at_suspect * 1.01) is NodeState.SUSPECT
    assert d.state(0, at_dead * 0.99) is NodeState.SUSPECT
    assert d.state(0, at_dead * 1.01) is NodeState.DEAD


def test_declared_dead_node_recovers_when_beats_resume():
    d = make()
    d.register(0, 0.0)
    assert d.state(0, 0.1) is NodeState.DEAD
    d.heartbeat(0, 0.1)  # the partition healed
    assert d.state(0, 0.1) is NodeState.ALIVE


def test_silence_to_die_matches_the_threshold():
    d = make(suspect_phi=1.0, dead_phi=2.0)
    d.register(0, 0.0)
    bound = d.silence_to_die_s(0)
    assert d.state(0, bound * 0.99) is not NodeState.DEAD
    assert d.state(0, bound * 1.01) is NodeState.DEAD


def test_ewma_adapts_to_slow_heartbeats():
    """A node that habitually beats slowly earns more tolerance: the
    same absolute silence accrues less suspicion."""
    fast, slow = make(), make()
    fast.register(0, 0.0)
    slow.register(0, 0.0)
    t_f, t_s = 0.0, 0.0
    for _ in range(50):
        t_f += 1e-3
        fast.heartbeat(0, t_f)
        t_s += 4e-3
        slow.heartbeat(0, t_s)
    assert slow.phi(0, t_s + 5e-3) < fast.phi(0, t_f + 5e-3)
    assert slow.silence_to_die_s(0) > fast.silence_to_die_s(0)
