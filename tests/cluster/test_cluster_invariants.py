"""Cluster invariant checker: clean runs pass, tampered traces fail."""


import pytest

from repro.check.cluster import assert_cluster_legal, check_cluster
from repro.cluster import (
    Cluster,
    ClusterTenant,
    HashRing,
    NodeFaultModel,
)
from repro.errors import InvariantViolation


def _primary(name, n_nodes):
    return HashRing(range(n_nodes), vnodes=32).preference(name)[0]


def _chaos_cluster():
    """A run with failover retries AND suppressed duplicates on the
    trace, so every checker rule has material to inspect: alpha's
    primary crashes (no hedging, so lost attempts are genuinely
    retried), and beta's primary is slowed then partitioned (stranded
    completions are redelivered at heal time as duplicates)."""
    specs = [
        ClusterTenant("alpha", workload="sgemm", size=64, rate_hz=3000.0,
                      n_requests=120, seed=11, priority=2),
        ClusterTenant("beta", workload="bfs", size=200, rate_hz=3000.0,
                      n_requests=120, seed=22, priority=1),
    ]
    crash_victim = _primary("alpha", 4)
    part_victim = _primary("beta", 4)
    assert part_victim != crash_victim, "fixture needs distinct victims"
    c = Cluster(
        4,
        specs,
        seed=1,
        node_faults=NodeFaultModel(
            crash_at={crash_victim: 0.02},
            slow_at={part_victim: (0.010, 500.0)},
            partition_at={part_victim: (0.012, 0.040)},
        ),
        check=False,
    )
    c.run()
    return c, crash_victim


@pytest.fixture()
def chaos():
    c, victim = _chaos_cluster()
    yield c, victim
    c.shutdown()


def _rules(cluster):
    return {v.rule for v in check_cluster(cluster)}


def test_clean_chaos_run_has_no_violations(chaos):
    c, _ = chaos
    assert check_cluster(c) == []
    assert_cluster_legal(c)


def test_unknown_outcome_is_flagged(chaos):
    c, _ = chaos
    c.trace.attempts[0].outcome = "mystery"
    assert "cluster.outcome-vocabulary" in _rules(c)


def test_unresolved_attempt_is_flagged(chaos):
    c, _ = chaos
    c.trace.attempts[0].outcome = "pending"
    assert "cluster.attempt-unresolved" in _rules(c)


def test_double_applied_request_is_flagged(chaos):
    c, _ = chaos
    # promote a suppressed duplicate back to applied: the exactly-once
    # rule must notice the completed request now has two applications
    dup = next(a for a in c.trace.attempts if a.outcome == "duplicate")
    dup.outcome = "applied"
    assert "cluster.exactly-once" in _rules(c)


def test_applied_attempt_without_request_record_is_flagged(chaos):
    c, _ = chaos
    victim = next(a for a in c.trace.attempts if a.outcome == "applied")
    c.trace.requests = [
        r
        for r in c.trace.requests
        if (r.tenant, r.req_id) != (victim.tenant, victim.req_id)
    ]
    assert "cluster.exactly-once" in _rules(c)


def test_execution_on_a_crashed_node_is_flagged(chaos):
    c, crashed = chaos
    crash_t = c.nodes[crashed].crashed_at
    # forge an attempt that claims to have run on the dead node
    a = next(x for x in c.trace.attempts if x.outcome == "applied")
    a.node = crashed
    a.dispatch_time = crash_t + 1e-3
    a.task_seq = 0
    assert "cluster.dead-node-execution" in _rules(c)


def test_overlapping_failover_retry_is_flagged(chaos):
    c, _ = chaos
    # find a failed-over request (>= 2 non-hedge attempts) and pull its
    # retry's dispatch before the predecessor was resolved
    by_req = {}
    for a in c.trace.attempts:
        if not a.hedge:
            by_req.setdefault((a.tenant, a.req_id), []).append(a)
    attempts = next(v for v in by_req.values() if len(v) >= 2)
    attempts.sort(key=lambda a: a.attempt)
    attempts[1].dispatch_time = attempts[0].resolved_time - 1e-3
    assert "cluster.attempt-overlap" in _rules(c)


def test_assert_cluster_legal_raises_with_count(chaos):
    c, _ = chaos
    c.trace.attempts[0].outcome = "mystery"
    c.trace.attempts[1].outcome = "mystery"
    with pytest.raises(InvariantViolation, match="cluster.outcome-vocabulary"):
        assert_cluster_legal(c)


def test_node_engine_traces_are_checked_too(chaos):
    c, _ = chaos
    node = next(n for n in c.nodes.values() if n.engine.trace.tasks)
    rec = node.engine.trace.tasks[0]
    node.engine.trace.tasks[0] = rec.replace(
        end_time=rec.start_time - 1.0  # physically impossible
    )
    vs = check_cluster(c)
    assert any(f"node {node.node_id}:" in v.detail for v in vs)
