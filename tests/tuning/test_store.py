"""Persistent per-machine perf-model store: round-trips, staleness, merging."""

import json

import pytest

from repro.errors import StaleModelError
from repro.hw.presets import cpu_only, platform_c2050
from repro.runtime.perfmodel import PerfModel
from repro.tuning import PerfModelStore, machine_fingerprint


def _model(codelet="axpy", variant="axpy_cpu", base=1e-9):
    model = PerfModel()
    for size in (1e3, 1e4, 1e5, 1e6):
        model.record((codelet, (int(size),)), variant, size, base * size)
    return model


def test_cold_machine_loads_none_and_warm_model_is_empty(tmp_path):
    store = PerfModelStore(tmp_path)
    machine = platform_c2050()
    assert store.load(machine) is None
    warm = store.warm_model(machine)
    assert warm.codelets() == set()
    assert not store.has(machine)


def test_roundtrip_identical_predictions_across_processes(tmp_path):
    machine = platform_c2050()
    model = _model()
    PerfModelStore(tmp_path).save(machine, model)
    # a fresh store object with a fresh machine build = a new process
    loaded = PerfModelStore(tmp_path).load(platform_c2050())
    fp = ("axpy", (1000,))
    assert loaded.predict(fp, "axpy_cpu", 1e3) == pytest.approx(
        model.predict(fp, "axpy_cpu", 1e3)
    )
    # regression predictions for unseen sizes round-trip exactly too
    assert loaded.predict(("axpy", (777,)), "axpy_cpu", 5e7) == pytest.approx(
        model.predict(("axpy", (777,)), "axpy_cpu", 5e7)
    )
    assert loaded.codelets() == {"axpy"}


def test_fingerprint_tracks_description_not_name():
    a, b = platform_c2050(), platform_c2050()
    assert machine_fingerprint(a) == machine_fingerprint(b)
    c = platform_c2050(n_cpu_cores=7)
    assert a.name == c.name  # same preset name...
    assert machine_fingerprint(a) != machine_fingerprint(c)  # ...new fabric


def test_changed_machine_description_raises_stale(tmp_path):
    store = PerfModelStore(tmp_path)
    store.save(platform_c2050(), _model())
    changed = platform_c2050(n_cpu_cores=7)  # same name, new description
    with pytest.raises(StaleModelError):
        store.load(changed)
    with pytest.raises(StaleModelError):
        store.warm_model(changed)


def test_changed_format_version_raises_stale(tmp_path):
    store = PerfModelStore(tmp_path)
    machine = platform_c2050()
    path = store.save(machine, _model())
    payload = json.loads(path.read_text())
    payload["format_version"] = 0
    path.write_text(json.dumps(payload))
    with pytest.raises(StaleModelError):
        store.load(machine)


def test_save_replaces_stale_entry_outright(tmp_path):
    store = PerfModelStore(tmp_path)
    store.save(platform_c2050(), _model(base=1e-9))
    changed = platform_c2050(n_cpu_cores=7)
    store.save(changed, _model(base=5e-9))  # recalibration repairs staleness
    loaded = store.load(changed)  # no StaleModelError anymore
    assert loaded.predict(("axpy", (1000,)), "axpy_cpu", 1e3) == pytest.approx(
        5e-9 * 1e3
    )
    with pytest.raises(StaleModelError):
        store.load(platform_c2050())  # the old description is now the stale one


def test_merge_on_save_keeps_other_codelets(tmp_path):
    machine = platform_c2050()
    PerfModelStore(tmp_path).save(machine, _model("axpy", "axpy_cpu"))
    PerfModelStore(tmp_path).save(machine, _model("gemm", "gemm_cpu"))
    loaded = PerfModelStore(tmp_path).load(platform_c2050())
    assert loaded.codelets() == {"axpy", "gemm"}
    # selective loading by codelet
    only = PerfModelStore(tmp_path).load(platform_c2050(), codelets=["gemm"])
    assert only.codelets() == {"gemm"}


def test_merge_on_save_larger_history_wins(tmp_path):
    machine = platform_c2050()
    store = PerfModelStore(tmp_path)
    fp = ("axpy", (10,))
    first = PerfModel()
    for t in (1.0, 2.0, 3.0):
        first.record(fp, "axpy_cpu", 1e4, t)
    store.save(machine, first)
    second = PerfModel()  # fewer samples for the shared key: must lose
    second.record(fp, "axpy_cpu", 1e4, 99.0)
    store.save(machine, second)
    loaded = store.load(machine)
    assert loaded.n_samples(fp, "axpy_cpu") == 3
    assert loaded.predict(fp, "axpy_cpu", 1e4) == pytest.approx(2.0)


def test_provenance_recorded_and_preserved(tmp_path):
    machine = platform_c2050()
    store = PerfModelStore(tmp_path)
    store.save(machine, _model(), provenance={"axpy": {"driver": "test"}})
    assert store.provenance(machine)["axpy"] == {"driver": "test"}
    # a later save without provenance keeps the recorded one
    store.save(machine, _model())
    assert store.provenance(machine)["axpy"] == {"driver": "test"}


def test_atomic_save_leaves_no_temp_files(tmp_path):
    store = PerfModelStore(tmp_path)
    machine = platform_c2050()
    store.save(machine, _model())
    store.save(machine, _model())
    assert len(list(tmp_path.iterdir())) == 1
    assert not list(tmp_path.glob("*.tmp"))


def test_invalidate_and_machines(tmp_path):
    store = PerfModelStore(tmp_path)
    gpu, cpu = platform_c2050(), cpu_only(4)
    store.save(gpu, _model())
    store.save(cpu, _model())
    assert sorted(store.machines()) == sorted([gpu.name, cpu.name])
    assert store.invalidate(gpu)
    assert not store.invalidate(gpu)  # already gone
    assert store.machines() == [cpu.name]


def test_dispatch_table_roundtrip(tmp_path):
    from repro.components.context import ContextInstance
    from repro.composer.static_comp import DispatchEntry, DispatchTable

    machine = platform_c2050()
    store = PerfModelStore(tmp_path)
    table = DispatchTable(interface_name="axpy")
    table.entries.append(
        DispatchEntry(
            scenario=ContextInstance({"n": 1024}),
            variant="axpy_cuda",
            predicted_time=1e-4,
            all_predictions=(("axpy_cuda", 1e-4), ("axpy_cpu", 3e-4)),
        )
    )
    store.save_dispatch_table(machine, table)
    loaded = store.load_dispatch_table(platform_c2050(), "axpy")
    assert loaded.winners() == {"axpy_cuda"}
    assert loaded.lookup({"n": 900}) == "axpy_cuda"
    assert loaded.entries[0].all_predictions == table.entries[0].all_predictions
    assert store.load_dispatch_table(machine, "unknown") is None
    # saving a model afterwards must not drop the stored table
    store.save(machine, _model())
    assert store.load_dispatch_table(machine, "axpy") is not None
