"""Adaptive calibration driver: ladder, early-stop, budgets, store wiring."""

import pytest

from repro.apps import sgemm
from repro.components.context import ContextParamDecl
from repro.errors import CompositionError
from repro.hw.presets import platform_c2050
from repro.tuning import PerfModelStore, calibrate_component
from repro.tuning.calibrate import size_ladder

VARIANTS = ("sgemm_cpu", "sgemm_openmp", "sgemm_cublas")


def _calibrate(store=None, rungs=6, **kw):
    return calibrate_component(
        sgemm.INTERFACE,
        sgemm.IMPLEMENTATIONS,
        platform_c2050,
        sgemm.training_operands,
        store=store,
        rungs=rungs,
        **kw,
    )


def test_size_ladder_is_diagonal_not_cross_product():
    decls = (
        ContextParamDecl("m", "int", minimum=16, maximum=4096),
        ContextParamDecl("n", "int", minimum=16, maximum=4096),
    )
    ladder = size_ladder(decls, 5)
    assert len(ladder) == 5  # not 25
    ms = [s["m"] for s in ladder]
    assert ms == sorted(ms) and ms[0] == 16 and ms[-1] == 4096
    for s in ladder:
        assert s["m"] == s["n"]  # parameters scale together


def test_size_ladder_collapses_duplicate_rungs():
    decls = (ContextParamDecl("n", "int", minimum=4, maximum=8),)
    ladder = size_ladder(decls, 10)  # int rounding collapses most rungs
    values = [s["n"] for s in ladder]
    assert values == sorted(set(values))


def test_calibration_fits_every_variant():
    report = _calibrate()
    assert set(report.variants) == set(VARIANTS)
    for vc in report.variants.values():
        assert vc.fitted
    # the model serves predictions for arbitrary production sizes
    for variant in VARIANTS:
        assert report.model.regression.predict(variant, 4.2e6) is not None


def test_early_stop_spends_less_than_brute_force():
    repetitions = 2
    report = _calibrate(repetitions=repetitions)
    brute_force = len(report.ladder) * len(VARIANTS) * repetitions
    assert report.total_runs < brute_force


def test_early_stop_converges_in_the_power_law_region():
    # over the full context range sgemm's cost is curved (launch
    # overheads dominate small sizes) and the out-of-sample check
    # rightly refuses to converge; confined to the compute-bound region
    # the cost is a clean power law and every variant early-stops
    decls = tuple(
        ContextParamDecl(p, "int", minimum=512, maximum=4096)
        for p in ("m", "n", "k")
    )
    ladder = size_ladder(decls, 6)
    report = _calibrate(ladder=ladder)
    converged = [
        v for v in report.variants.values() if v.converged_at is not None
    ]
    assert converged
    assert report.total_runs < len(ladder) * len(VARIANTS) * 2
    for vc in report.variants.values():
        assert vc.fitted


def test_converged_variants_still_anchor_the_top_rung():
    # without the top anchor, a variant converging in the small-size
    # region extrapolates its fit far beyond its data — the failure mode
    # that made store-warmed runs mis-place large tasks
    report = _calibrate()
    spans = {
        v: max(s for s, _ in report.model.regression.samples(v))
        for v in VARIANTS
    }
    top = max(spans.values())
    for variant, largest in spans.items():
        assert largest == pytest.approx(top), variant


def test_calibration_saves_to_store_with_provenance(tmp_path):
    store = PerfModelStore(tmp_path)
    report = _calibrate(store=store)
    machine = platform_c2050()
    warm = store.load(machine)
    assert warm is not None and warm.codelets() == {"sgemm"}
    prov = store.provenance(machine)["sgemm"]
    assert prov["driver"] == "adaptive-ladder"
    assert prov["total_runs"] == report.total_runs
    assert set(prov["variants"]) == set(VARIANTS)
    # warm predictions match the in-memory calibrated model
    for variant in VARIANTS:
        assert warm.regression.predict(variant, 1e6) == pytest.approx(
            report.model.regression.predict(variant, 1e6)
        )


def test_calibration_warm_starts_from_existing_store(tmp_path):
    store = PerfModelStore(tmp_path)
    first = _calibrate(store=store)
    second = _calibrate(store=store)
    # the second campaign starts from fitted models: every variant's
    # out-of-sample check passes immediately
    assert second.total_runs < first.total_runs


def test_calibration_validates_arguments():
    with pytest.raises(CompositionError):
        _calibrate(repetitions=0)
    with pytest.raises(CompositionError):
        _calibrate(rel_tol=0.0)


def test_explicit_ladder_overrides_rungs():
    ladder = size_ladder(sgemm.INTERFACE.context_params, 3)
    report = _calibrate(ladder=ladder)
    assert report.ladder == ladder
