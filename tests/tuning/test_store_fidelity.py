"""Fingerprint coverage of device-model knobs: fidelity changes reject stale models."""

import dataclasses
import json

import pytest

from repro.errors import StaleModelError
from repro.hw.presets import machine
from repro.runtime.perfmodel import PerfModel
from repro.tuning import PerfModelStore, machine_fingerprint


def _model(codelet="dev_spmv", variant="dev_spmv_cuda", base=1e-9):
    model = PerfModel()
    for size in (1e3, 1e4, 1e5, 1e6):
        model.record((codelet, (int(size),)), variant, size, base * size)
    return model


def _with_hit_rate(mach, l1_hit_rate):
    """The same machine with the GPU's L1 hit-rate knob turned."""
    (gpu,) = mach.gpu_units
    tuned = dataclasses.replace(
        gpu.device, model=gpu.device.model.with_hit_rates(l1_hit_rate=l1_hit_rate)
    )
    mach.units[gpu.unit_id] = dataclasses.replace(gpu, device=tuned)
    return mach


def test_fidelity_tier_changes_fingerprint():
    coarse = machine("fermi")
    detailed = machine("fermi", fidelity="detailed")
    assert machine_fingerprint(coarse) != machine_fingerprint(detailed)


def test_hit_rate_knob_changes_fingerprint():
    a = machine("fermi", fidelity="detailed")
    b = _with_hit_rate(machine("fermi", fidelity="detailed"), 0.9)
    assert machine_fingerprint(a) != machine_fingerprint(b)


def test_coarse_fingerprint_has_no_model_key():
    """Model-less devices fingerprint exactly as before the model layer
    existed, so pre-existing store files stay valid for coarse machines."""
    a, b = machine("c2050"), machine("c2050")
    assert machine_fingerprint(a) == machine_fingerprint(b)


def test_loading_across_fidelity_tiers_raises_stale(tmp_path):
    store = PerfModelStore(tmp_path)
    coarse = machine("kepler")
    detailed = machine("kepler", fidelity="detailed")
    assert coarse.name == detailed.name  # same file on disk
    store.save(coarse, _model())
    with pytest.raises(StaleModelError):
        store.load(detailed)
    assert store.load(machine("kepler")) is not None  # same tier: fine


def test_loading_across_hit_rate_settings_raises_stale(tmp_path):
    store = PerfModelStore(tmp_path)
    store.save(machine("volta", fidelity="detailed"), _model())
    retuned = _with_hit_rate(machine("volta", fidelity="detailed"), 0.05)
    with pytest.raises(StaleModelError):
        store.load(retuned)


def test_hand_edited_store_file_raises_stale(tmp_path):
    """Regression: a store file whose fingerprint was edited by hand (or
    written by a build with different model knobs) must be rejected."""
    store = PerfModelStore(tmp_path)
    mach = machine("pascal", fidelity="detailed")
    path = store.save(mach, _model())
    payload = json.loads(path.read_text())
    payload["fingerprint"] = "0123456789abcdef"
    path.write_text(json.dumps(payload))
    with pytest.raises(StaleModelError, match="different machine"):
        store.load(mach)


def test_stale_tier_entry_is_replaced_by_recalibration(tmp_path):
    store = PerfModelStore(tmp_path)
    store.save(machine("kepler"), _model(variant="old_cuda"))
    detailed = machine("kepler", fidelity="detailed")
    store.save(detailed, _model(variant="new_cuda"))  # replaces, not merges
    loaded = store.load(machine("kepler", fidelity="detailed"))
    fp = ("dev_spmv", (1000,))
    assert loaded.predict(fp, "new_cuda", 1e3) is not None
    assert loaded.predict(fp, "old_cuda", 1e3) is None
