"""SEI-style logical LOC counting."""

from repro.metrics.loc import count_file, count_files, count_logical_lines, count_object


def test_counts_simple_statements():
    assert count_logical_lines("a = 1\nb = 2\n") == 2


def test_ignores_blank_lines():
    assert count_logical_lines("a = 1\n\n\n\nb = 2\n") == 2


def test_ignores_comments():
    assert count_logical_lines("# comment\na = 1  # trailing\n# more\n") == 1


def test_multiline_statement_counts_once():
    src = "total = (1 +\n         2 +\n         3)\n"
    assert count_logical_lines(src) == 1


def test_multiline_call_counts_once():
    src = "f(\n    a,\n    b,\n)\n"
    assert count_logical_lines(src) == 1


def test_docstrings_excluded():
    src = '''def f():
    """Documentation,
    two lines."""
    return 1
'''
    assert count_logical_lines(src) == 2  # def + return


def test_module_docstring_excluded():
    src = '"""Module docs."""\nx = 1\n'
    assert count_logical_lines(src) == 1


def test_string_assignment_is_code():
    # unlike a bare docstring, an assigned string is a statement
    assert count_logical_lines('x = """text"""\n') == 1


def test_compound_statements():
    src = "if a:\n    b = 1\nelse:\n    c = 2\n"
    assert count_logical_lines(src) == 4


def test_semicolons_count_as_one_physical_statement_line():
    # SEI counts logical statements per NEWLINE; a; b on one line is one
    # terminated logical line in the tokeniser's view
    assert count_logical_lines("a = 1; b = 2\n") == 1


def test_count_object_on_function():
    def sample():
        """Doc."""
        x = 1
        return x

    assert count_object(sample) == 3  # def + x + return


def test_count_file_and_files(tmp_path):
    f1 = tmp_path / "a.py"
    f1.write_text("a = 1\nb = 2\n")
    f2 = tmp_path / "b.py"
    f2.write_text("c = 3\n")
    assert count_file(f1) == 2
    assert count_files([f1, f2]) == 3


def test_empty_source():
    assert count_logical_lines("") == 0
    assert count_logical_lines("# only a comment\n") == 0
