"""SVG figure rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.report.svg import BarChart, LineChart, save_svg


def _bar():
    return BarChart(
        title="demo",
        categories=["a", "b", "c"],
        series={"one": [1.0, 2.0, 3.0], "two": [2.0, 1.0, 0.5]},
        y_label="speedup",
    )


def test_bar_chart_is_valid_xml():
    svg = _bar().to_svg()
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")


def test_bar_chart_has_one_rect_per_bar():
    svg = _bar().to_svg()
    root = ET.fromstring(svg)
    rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
    # 1 background + 6 bars + 2 legend swatches
    assert len(rects) == 1 + 6 + 2


def test_bar_chart_validates_lengths():
    with pytest.raises(ValueError):
        BarChart("t", ["a", "b"], {"s": [1.0]}).to_svg()
    with pytest.raises(ValueError):
        BarChart("t", [], {}).to_svg()


def test_bar_heights_proportional():
    svg = _bar().to_svg()
    root = ET.fromstring(svg)
    ns = "{http://www.w3.org/2000/svg}"
    heights = [
        float(r.get("height"))
        for r in root.findall(f".//{ns}rect")
        if r.find(f"{ns}title") is not None
    ]
    # series one: values 1, 2, 3 -> first three bars
    assert heights[1] == pytest.approx(2 * heights[0], rel=1e-3)
    assert heights[2] == pytest.approx(3 * heights[0], rel=1e-3)


def _line(log=False):
    return LineChart(
        title="demo",
        x_values=[1.0, 2.0, 4.0],
        series={"s": [0.1, 1.0, 10.0]},
        log_y=log,
    )


def test_line_chart_valid_xml_linear_and_log():
    for log in (False, True):
        root = ET.fromstring(_line(log).to_svg())
        assert root.tag.endswith("svg")


def test_log_chart_equal_decades_equally_spaced():
    svg = _line(log=True).to_svg()
    root = ET.fromstring(svg)
    ns = "{http://www.w3.org/2000/svg}"
    circles = root.findall(f".//{ns}circle")
    ys = [float(c.get("cy")) for c in circles]
    # 0.1 -> 1 -> 10: one decade apart each, so equal pixel steps
    assert ys[0] - ys[1] == pytest.approx(ys[1] - ys[2], rel=1e-3)


def test_log_chart_rejects_nonpositive():
    with pytest.raises(ValueError):
        LineChart("t", [1, 2], {"s": [0.0, 1.0]}, log_y=True).to_svg()


def test_line_chart_needs_two_points():
    with pytest.raises(ValueError):
        LineChart("t", [1.0], {"s": [1.0]}).to_svg()


def test_save_svg(tmp_path):
    path = save_svg(_bar().to_svg(), tmp_path / "charts" / "f.svg")
    assert path.exists()
    ET.parse(path)  # well-formed on disk


def test_paper_figure_builders():
    from repro.experiments import fig5, fig7
    from repro.report import fig5_chart, fig7_chart

    rows = fig5.run(matrices=("HB",), scale=0.05)
    chart = fig5_chart(rows)
    ET.fromstring(chart.to_svg())

    points = fig7.run(sizes=(250, 500), steps=10)
    ET.fromstring(fig7_chart(points).to_svg())
