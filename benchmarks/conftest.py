"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures.  Formatted
result tables are printed *and* written to ``benchmarks/results/`` so the
rows survive pytest's output capture; ``bench_output.txt`` plus that
directory together document a full reproduction run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Callable saving a formatted experiment table to disk + stdout."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _report
