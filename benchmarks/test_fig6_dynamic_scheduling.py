"""Figure 6: OpenMP vs CUDA vs tool-generated performance-aware code.

Nine applications, two platforms (6a: C2050, 6b: C1060), execution time
averaged over problem sizes.  Expected shape: TGPA tracks the best
static choice everywhere (and sometimes beats it by adapting per size);
the OpenMP/CUDA winner differs per app and shifts between platforms.
"""

import pytest

from repro.experiments import fig6


def _check(result: fig6.Fig6Result):
    norm = result.normalised()
    for app, modes in norm.items():
        best_static = min(modes["openmp"], modes["cuda"])
        # TGPA (normalised to 1.0) within 25% of the best static build
        assert best_static > 0.75, (result.platform, app, modes)


@pytest.mark.parametrize("platform", ["c2050", "c1060"])
def test_fig6_dynamic_scheduling(benchmark, report, platform):
    result = benchmark.pedantic(
        fig6.run, kwargs={"platform": platform}, rounds=1, iterations=1
    )
    report(f"fig6_{platform}", fig6.format_result(result))
    from repro.report import fig6_chart, save_svg
    from pathlib import Path

    RESULTS_DIR = Path(__file__).parent / "results"
    save_svg(fig6_chart(result).to_svg(), RESULTS_DIR / f"fig6_{platform}.svg")
    assert set(result.means) == set(fig6.APP_ORDER)
    _check(result)


def test_fig6_winner_flips_for_irregular_apps(benchmark, report):
    """The architectural adjustment the paper highlights: rankings shift
    between the cached C2050 and the cache-less C1060."""
    apps = ("bfs", "particlefilter", "hotspot", "sgemm")

    def both():
        return (
            fig6.run("c2050", apps=apps).normalised(),
            fig6.run("c1060", apps=apps).normalised(),
        )

    r2050, r1060 = benchmark.pedantic(both, rounds=1, iterations=1)
    lines = ["Figure 6 winner comparison (OpenMP vs CUDA) across platforms:"]
    for app in apps:
        w2050 = "CUDA" if r2050[app]["cuda"] < r2050[app]["openmp"] else "OpenMP"
        w1060 = "CUDA" if r1060[app]["cuda"] < r1060[app]["openmp"] else "OpenMP"
        lines.append(f"  {app:<16s} c2050: {w2050:<6s} c1060: {w1060}")
    report("fig6_winner_flips", "\n".join(lines))
    # regular compute-bound apps stay GPU-won on both platforms
    assert r2050["sgemm"]["cuda"] < r2050["sgemm"]["openmp"]
    assert r1060["sgemm"]["cuda"] < r1060["sgemm"]["openmp"]
    # the irregular app flips to the CPU gang on the cache-less GPU
    assert r2050["bfs"]["cuda"] < r2050["bfs"]["openmp"]
    assert r1060["bfs"]["openmp"] < r1060["bfs"]["cuda"]
