"""ABL1: scheduling-policy ablation on the hybrid SpMV workload."""

from repro.experiments import ablations


def test_ablation_schedulers(benchmark, report):
    results = benchmark.pedantic(
        ablations.scheduler_study,
        kwargs={"scale": 1.0, "matrix": "Simulation"},
        rounds=1,
        iterations=1,
    )
    report("ablation_schedulers", ablations.format_scheduler_study(results))
    # speed-blind random placement is clearly worst; the availability- and
    # model-aware policies cluster at the front
    best = min(results.values())
    assert results["random"] > 1.3 * best
    assert results["dmda"] < 1.2 * best
