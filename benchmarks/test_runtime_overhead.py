"""Section V-E: per-task runtime overhead micro-benchmark.

The paper cites StarPU task overhead below ~2 microseconds.  The modeled
(virtual) per-task overhead of this runtime matches that bound; the
wall-clock cost of the Python simulator is reported for transparency.
"""

from repro.experiments import overhead


def test_runtime_task_overhead(benchmark, report):
    result = benchmark.pedantic(
        overhead.run, kwargs={"n_tasks": 2000}, rounds=1, iterations=1
    )
    report("runtime_overhead", overhead.format_result(result))
    assert result.virtual_us_per_task < 2.0


def test_submit_wallclock_per_task(benchmark):
    """Real wall time of one submit+schedule+complete cycle (the number
    pytest-benchmark reports for this test)."""
    import numpy as np

    from repro.experiments.overhead import empty_codelet
    from repro.hw.presets import platform_c2050
    from repro.runtime import Runtime

    rt = Runtime(platform_c2050(), scheduler="eager", seed=0, noise_sigma=0.0)
    cl = empty_codelet()
    handle = rt.register(np.zeros(16, dtype=np.float32))

    benchmark(lambda: rt.submit(cl, [(handle, "r")]))
    rt.wait_for_all()
