"""Table I: programmer LOC, composition tool vs direct runtime code."""

from repro.experiments import table1


def test_table1_loc(benchmark, report):
    rows = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    report("table1_loc", table1.format_table(rows))
    # paper shape: direct exceeds tool for all ten applications
    assert len(rows) == 10
    for row in rows:
        assert row.direct_loc > row.tool_loc
    # the ODE solver is the largest row, as in the paper
    assert max(rows, key=lambda r: r.tool_loc).application == "odesolver"
