"""ABL2: smart containers vs raw always-copy parameters (sections IV-D/H)."""

from repro.experiments import ablations


def test_ablation_containers(benchmark, report):
    result = benchmark.pedantic(
        ablations.container_study,
        kwargs={"nrows": 500_000, "calls": 10},
        rounds=1,
        iterations=1,
    )
    report("ablation_containers", ablations.format_container_study(result))
    # containers reuse device copies across repeated invocations;
    # raw parameters re-transfer everything on every call
    assert result.smart_transfers < result.raw_transfers / 3
    assert result.speedup > 2.0
