"""ABL5: multi-GPU scaling of hybrid SpMV.

The PEPPHER component model targets multi-GPU systems; a second C2050
must reduce the hybrid makespan (each GPU has its own PCIe DMA engine,
so transfers also parallelise).
"""

from repro.experiments import ablations


def test_ablation_multigpu(benchmark, report):
    results = benchmark.pedantic(
        ablations.multigpu_study, kwargs={"scale": 1.0}, rounds=1, iterations=1
    )
    report("ablation_multigpu", ablations.format_multigpu_study(results))
    assert results["cpus+2gpu"] < results["cpus+1gpu"]
    assert results["cpus+1gpu"] / results["cpus+2gpu"] > 1.2
