"""Figure 3: smart-container copy elision (2 copies vs 7)."""

from repro.experiments import fig3


def test_fig3_container_copies(benchmark, report):
    result = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    report("fig3_container_copies", fig3.format_result(result))
    assert result.smart_copies == 2  # the paper's count
    assert result.naive_copies == 7  # the paper's count
    assert result.values_ok and result.readers_overlap
