"""ABL6: composition stages — why dynamic composition is the default.

Paper section III: composition can be static, dynamic, or multi-stage
(static narrowing + runtime finalisation).  On a streaming
transfer-dominated workload, kernel-only prediction metadata mispicks
and also *narrows away* the true winner; only fully dynamic composition,
learning transfer-inclusive behaviour, recovers — the quantified case
for PEPPHER's default.
"""

from repro.experiments import ablations


def test_ablation_multistage(benchmark, report):
    result = benchmark.pedantic(
        ablations.multistage_study, rounds=1, iterations=1
    )
    report("ablation_multistage", ablations.format_multistage_study(result))
    # the static table (kernel-only predictions) picked the GPU variant
    assert result.static_pick == "spmv_cuda_cusp"
    # narrowing dropped the OpenMP variant that wins with transfers
    assert "spmv_openmp" not in result.narrowed_to
    # fully dynamic composition beats both static-informed modes
    assert result.pure_dynamic_s < result.pure_static_s
    assert result.pure_dynamic_s < result.multistage_s
