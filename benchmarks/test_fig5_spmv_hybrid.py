"""Figure 5: hybrid SpMV vs direct CUDA on the six UF-class matrices.

Full-scale matrices (nnz per the paper's table).  Expected shape: hybrid
execution (4 CPUs + C2050) beats GPU-only on every matrix because the
partitioned run ships less data over PCIe; the paper reports speedups up
to ~2.2x.
"""

from repro.experiments import fig5


def test_fig5_spmv_hybrid(benchmark, report):
    rows = benchmark.pedantic(
        fig5.run, kwargs={"scale": 1.0, "verify": False}, rounds=1, iterations=1
    )
    report("fig5_spmv_hybrid", fig5.format_result(rows))
    from repro.report import fig5_chart, save_svg
    from pathlib import Path

    RESULTS_DIR = Path(__file__).parent / "results"
    save_svg(fig5_chart(rows).to_svg(), RESULTS_DIR / "fig5.svg")
    assert len(rows) == 6
    for row in rows:
        assert row.speedup > 1.0, f"{row.matrix}: {row.speedup:.2f}"
        assert row.gpu_chunks > 0 and row.cpu_chunks > 0
    assert max(r.speedup for r in rows) > 1.3
