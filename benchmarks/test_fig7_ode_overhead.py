"""Figure 7: composition-tool overhead on the Runge-Kutta ODE solver.

Problem sizes 250..1000, ~10600 component invocations per run with tight
data dependencies (almost sequential execution).  Expected shape:
Direct-CPU far above Direct-CUDA; Tool-CUDA hugs Direct-CUDA (the
generated composition code's overhead is negligible).
"""

from repro.experiments import fig7


def test_fig7_ode_overhead(benchmark, report):
    points = benchmark.pedantic(
        fig7.run, kwargs={"steps": 588}, rounds=1, iterations=1
    )
    report("fig7_ode_overhead", fig7.format_result(points))
    from repro.report import fig7_chart, save_svg
    from pathlib import Path

    RESULTS_DIR = Path(__file__).parent / "results"
    save_svg(fig7_chart(points).to_svg(), RESULTS_DIR / "fig7.svg")
    assert [p.size for p in points] == [250, 500, 750, 1000]
    for p in points:
        assert p.invocations > 10_000  # the paper's 10613-call scale
        assert p.direct_cpu_s > 3 * p.direct_cuda_s
        assert abs(p.tool_overhead_percent) < 10.0
    # monotone growth with problem size on every curve
    for attr in ("direct_cpu_s", "direct_cuda_s", "tool_cuda_s"):
        series = [getattr(p, attr) for p in points]
        assert series == sorted(series), attr
