"""ABL3: user-guided static narrowing vs full dynamic composition (IV-A)."""

from repro.experiments import ablations


def test_ablation_narrowing(benchmark, report):
    result = benchmark.pedantic(
        ablations.narrowing_study,
        kwargs={"size": 1024, "calls": 12},
        rounds=1,
        iterations=1,
    )
    report("ablation_narrowing", ablations.format_narrowing_study(result))
    # when the winner is statically known, narrowing removes both the
    # dynamic-selection calibration cost and the risk of wrong picks
    assert result.narrowed_s < result.dynamic_s
    assert result.dynamic_wrong_picks > 0
