"""ABL4: optimization goal — min_exec_time vs min_energy.

The PEPPHER main descriptor states an overall optimization goal; this
ablation quantifies what switching it changes on a workload where the
GPU's speed advantage is smaller than its power disadvantage.
"""

from repro.experiments import ablations


def test_ablation_energy_goal(benchmark, report):
    result = benchmark.pedantic(
        ablations.energy_study, rounds=1, iterations=1
    )
    report("ablation_energy", ablations.format_energy_study(result))
    assert result.energy_goal_energy_j < result.time_goal_energy_j
    assert result.energy_goal_makespan_s >= result.time_goal_makespan_s
    assert result.energy_saving_percent > 10.0
