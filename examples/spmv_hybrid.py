"""Hybrid SpMV across CPUs and GPU (the paper's Figure 5 scenario).

One spmv component invocation is partitioned into row chunks
(intra-component parallelism); the performance-aware runtime spreads
chunks over four CPU cores and the simulated C2050, reducing both
computation time and PCIe traffic versus GPU-only execution.

Run:  python examples/spmv_hybrid.py [matrix] [scale]
      matrix in {Chemistry, Convex, HB, Network, Simulation, Structural}
"""

import sys

import numpy as np

from repro.apps import spmv
from repro.experiments import fig5
from repro.workloads.sparse import make_matrix, matrix_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Simulation"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    if name not in matrix_names():
        raise SystemExit(f"unknown matrix {name!r}; pick from {matrix_names()}")

    mat = make_matrix(name, scale=scale)
    print(
        f"{mat.name}: {mat.nrows} rows, {mat.nnz} nonzeros "
        f"({mat.nbytes / 1e6:.1f} MB)"
    )

    t_direct, y_direct = fig5.run_direct_cuda(mat)
    print(f"direct CUDA (transfers included): {t_direct * 1e3:8.3f} ms")

    # warm-up trains the performance model; second run measures
    _, _, _, model = fig5.run_hybrid(mat, run_kernels=False)
    t_hybrid, y_hybrid, by_arch, _ = fig5.run_hybrid(mat, seed=1, perfmodel=model)
    print(
        f"hybrid (4 CPUs + GPU)           : {t_hybrid * 1e3:8.3f} ms "
        f"(chunks: {by_arch})"
    )
    print(f"speedup: {t_direct / t_hybrid:.2f}x")

    x = np.ones(mat.ncols, dtype=np.float32)
    ref = spmv.reference(mat.values, mat.colidxs, mat.rowptr, x, mat.nrows)
    assert np.allclose(y_direct, ref, rtol=1e-4)
    assert np.allclose(y_hybrid, ref, rtol=1e-4)
    print("results verified against the NumPy oracle")


if __name__ == "__main__":
    main()
