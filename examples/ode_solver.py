"""The LibSolve-style Runge-Kutta ODE solver through the composition tool.

Composes the nine solver components, runs a (shortened) integration with
~1100 component invocations through the generated entry-wrappers, and
compares against the hand-written runtime version and the pure NumPy
oracle — the paper's Figure 7 in miniature.

Run:  python examples/ode_solver.py [size] [steps]
"""

import sys

import numpy as np

from repro.apps import mains
from repro.apps import odesolver as ode
from repro.direct import odesolver_direct


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    n = 2 * size * 4  # shrunk system dimension for a quick demo

    print(f"ODE system dimension {n}, {steps} steps, 9 components")

    y_tool, t_tool, calls = mains.odesolver_main(n=n, steps=steps)
    print(f"composition tool : {t_tool:9.5f} s virtual, {calls} invocations")

    y_cpu, t_cpu, _ = odesolver_direct.main(
        n=n, steps=steps, variants=("cpu",), scheduler="eager"
    )
    print(f"direct CPU       : {t_cpu:9.5f} s virtual")

    y_cuda, t_cuda, _ = odesolver_direct.main(
        n=n, steps=steps, variants=("cuda",), scheduler="eager"
    )
    print(f"direct CUDA      : {t_cuda:9.5f} s virtual")
    print(
        f"tool-vs-direct-CUDA overhead: "
        f"{100 * (t_tool - t_cuda) / t_cuda:+.2f}% "
        "(expected: negligible, Figure 7)"
    )

    ref = ode.reference_solution(n, steps)
    for label, y in (("tool", y_tool), ("cpu", y_cpu), ("cuda", y_cuda)):
        assert np.allclose(y, ref, rtol=1e-3, atol=1e-4), label
    print("all three executions match the NumPy oracle")


if __name__ == "__main__":
    main()
