"""Quickstart: PEPPHERize one function end to end.

Walks the paper's workflow on a fresh component:

1. declare the functionality as a plain C signature;
2. generate descriptor/implementation skeletons (utility mode);
3. provide the implementation variants (CPU / OpenMP / CUDA) and their
   cost models;
4. compose the application (``compose main.xml`` equivalent);
5. run it through the generated entry-wrapper on smart containers.

Run:  python examples/quickstart.py
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

# the "component implementation" module the descriptors reference: for a
# script we register it under a known module name
import types

from repro.apps.costkit import gpu_time, ncores_of, openmp_time, serial_time
from repro.components import (
    ContextParamDecl,
    ImplementationDescriptor,
    MainDescriptor,
    Repository,
)
from repro.components.cdecl import parse_declaration, to_interface
from repro.composer import Composer, Recipe, generate_from_decls
from repro.containers import Vector
from repro.hw.devices import AccessPattern


# -- 1. the functionality, as the C declaration a legacy app would have ----
DECL = "void axpy(float a, const float* x, float* y, int n);"


# -- 2. utility mode: show the generated skeleton files ----------------------
def show_utility_mode() -> None:
    decl = parse_declaration(DECL)
    with tempfile.TemporaryDirectory() as tmp:
        created = generate_from_decls([decl], tmp, app_name="axpy_app")
        print("utility mode generated:")
        for path in created:
            print("  ", Path(path).relative_to(tmp))


# -- 3. implementation variants + cost models -------------------------------
def axpy_cpu(a, x, y, n):
    y += a * x


def axpy_openmp(a, x, y, n):
    y += a * x


def axpy_cuda(a, x, y, n):
    y += a * x


def cost_cpu(ctx, device):
    n = float(ctx["n"])
    return serial_time(device, 2 * n, 12 * n, AccessPattern.REGULAR)


def cost_openmp(ctx, device):
    n = float(ctx["n"])
    return openmp_time(device, ncores_of(ctx), 2 * n, 12 * n, AccessPattern.REGULAR)


def cost_cuda(ctx, device):
    n = float(ctx["n"])
    return gpu_time(device, 2 * n, 12 * n, AccessPattern.REGULAR)


def install_kernel_module() -> None:
    """Expose this script's kernels under an importable module name so
    descriptor references (`quickstart_axpy:axpy_cpu`) resolve."""
    module = types.ModuleType("quickstart_axpy")
    for fn in (axpy_cpu, axpy_openmp, axpy_cuda, cost_cpu, cost_openmp, cost_cuda):
        setattr(module, fn.__name__, fn)
    sys.modules["quickstart_axpy"] = module


def main() -> None:
    show_utility_mode()
    install_kernel_module()

    # -- the filled-in descriptors (normally XML on disk) -----------------
    interface = to_interface(parse_declaration(DECL))
    from dataclasses import replace

    interface = replace(
        interface,
        context_params=(ContextParamDecl("n", "int", minimum=1, maximum=1 << 24),),
    )
    repo = Repository()
    repo.add_interface(interface)
    for platform, suffix in (("cpu_serial", "cpu"), ("openmp", "openmp"), ("cuda", "cuda")):
        repo.add_implementation(
            ImplementationDescriptor(
                name=f"axpy_{suffix}",
                provides="axpy",
                platform=platform,
                sources=(f"axpy_{suffix}.cpp",),
                kernel_ref=f"quickstart_axpy:axpy_{suffix}",
                cost_ref=f"quickstart_axpy:cost_{suffix}",
                prediction_ref=f"quickstart_axpy:cost_{suffix}",
            )
        )
    main_desc = MainDescriptor(name="axpy_app", components=("axpy",))
    repo.add_main(main_desc)

    # -- 4. compose ---------------------------------------------------------
    out = tempfile.mkdtemp(prefix="peppher_quickstart_")
    app = Composer(repo, Recipe()).compose(main_desc, out)
    print(f"\ncomposed {app.name!r}; artefacts: {app.artefact_files()}")

    # -- 5. run through the generated code -----------------------------------
    pep = app.peppher
    rt = pep.PEPPHER_INITIALIZE(seed=1)
    n = 1_000_000
    x = Vector(np.ones(n, dtype=np.float32), runtime=rt, name="x")
    y = Vector.zeros(n, runtime=rt, name="y")
    for _ in range(8):
        pep.axpy(2.0, x, y, n)  # asynchronous component invocations
    print("y[0] after 8 async axpy calls:", y[0])  # blocking host read
    print("runtime trace:", rt.trace.summary())
    print("variant selection:", rt.trace.tasks_by_variant())
    pep.PEPPHER_SHUTDOWN()


if __name__ == "__main__":
    main()
