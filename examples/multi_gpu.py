"""Hybrid SpMV on a dual-GPU machine, with an execution-trace Gantt.

Runs the partitioned SpMV on 4 CPUs + one C2050, then on 4 CPUs + two
C2050s, prints the makespans and a terminal Gantt chart of the dual-GPU
schedule, and writes a Chrome trace (open in chrome://tracing or
https://ui.perfetto.dev).

Run:  python examples/multi_gpu.py [scale]
"""

import sys
import tempfile

import numpy as np

from repro.apps import spmv
from repro.composer.glue import lower_component
from repro.hw.presets import platform_c2050, platform_dual_c2050
from repro.runtime import Runtime, gantt_text, save_chrome_trace
from repro.runtime.perfmodel import PerfModel
from repro.workloads.sparse import make_matrix


def run_hybrid(machine_factory, mat, n_chunks=32, seed=0):
    perf = PerfModel()
    last = None
    for rep in range(2):  # first run calibrates, second measures
        rt = Runtime(
            machine_factory(), scheduler="dmda", seed=seed + rep,
            perfmodel=perf, run_kernels=False,
        )
        codelet = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS).without(
            ["spmv_openmp"]
        )
        hv = rt.register(mat.values, "values")
        hc = rt.register(mat.colidxs, "colidxs")
        hp = rt.register(mat.rowptr, "rowptr")
        hx = rt.register(np.ones(mat.ncols, dtype=np.float32), "x")
        hy = rt.register(np.zeros(mat.nrows, dtype=np.float32), "y")
        spmv.submit_partitioned(
            rt, codelet, hv, hc, hp, hx, hy, mat.rowptr, mat.ncols, n_chunks
        )
        rt.unpartition(hy)
        elapsed = rt.now
        last = (elapsed, rt.trace, rt.machine)
        rt.shutdown()
    return last


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    mat = make_matrix("Simulation", scale=scale)
    print(f"{mat.name}: {mat.nrows} rows, {mat.nnz} nnz\n")

    t1, _, _ = run_hybrid(lambda: platform_c2050(n_cpu_cores=5), mat)
    t2, trace, machine = run_hybrid(lambda: platform_dual_c2050(n_cpu_cores=6), mat)
    print(f"4 CPUs + 1 GPU : {t1 * 1e3:8.3f} ms")
    print(f"4 CPUs + 2 GPU : {t2 * 1e3:8.3f} ms   ({t1 / t2:.2f}x)\n")

    print(gantt_text(trace, machine))

    out = tempfile.mktemp(prefix="peppher_trace_", suffix=".json")
    save_chrome_trace(trace, machine, out)
    print(f"\nChrome trace written to {out}")


if __name__ == "__main__":
    main()
