"""Hybrid SpMV on a dual-GPU machine, with an execution-trace Gantt.

Runs the partitioned SpMV on 4 CPUs + one C2050, then on 4 CPUs + two
C2050s, prints the makespans and a terminal Gantt chart of the dual-GPU
schedule, and writes a Chrome trace (open in chrome://tracing or
https://ui.perfetto.dev).

Uses the unified :class:`repro.Session` facade: the session wires the
machine, the dmda runtime and trace export, and ``restart()`` carries
the learned performance model across repetitions (first run calibrates,
second measures warm).

Run:  python examples/multi_gpu.py [scale]
"""

import sys
import tempfile

import numpy as np

from repro import Session
from repro.apps import spmv
from repro.composer.glue import lower_component
from repro.hw.presets import platform_c2050, platform_dual_c2050
from repro.workloads.sparse import make_matrix


def run_hybrid(machine_factory, mat, n_chunks=32, seed=0):
    session = Session(
        machine_factory, scheduler="dmda", seed=seed, run_kernels=False
    )
    codelet = lower_component(spmv.INTERFACE, spmv.IMPLEMENTATIONS).without(
        ["spmv_openmp"]
    )
    last = None
    for rep in range(2):  # first run calibrates, second measures warm
        if rep:
            session.restart()
        hv = session.register(mat.values, "values")
        hc = session.register(mat.colidxs, "colidxs")
        hp = session.register(mat.rowptr, "rowptr")
        hx = session.register(np.ones(mat.ncols, dtype=np.float32), "x")
        hy = session.register(np.zeros(mat.nrows, dtype=np.float32), "y")
        spmv.submit_partitioned(
            session.runtime, codelet, hv, hc, hp, hx, hy,
            mat.rowptr, mat.ncols, n_chunks,
        )
        session.unpartition(hy)
        last = (session.now, session)
    return last


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    mat = make_matrix("Simulation", scale=scale)
    print(f"{mat.name}: {mat.nrows} rows, {mat.nnz} nnz\n")

    t1, s1 = run_hybrid(lambda: platform_c2050(n_cpu_cores=5), mat)
    s1.shutdown()
    t2, session = run_hybrid(lambda: platform_dual_c2050(n_cpu_cores=6), mat)
    print(f"4 CPUs + 1 GPU : {t1 * 1e3:8.3f} ms")
    print(f"4 CPUs + 2 GPU : {t2 * 1e3:8.3f} ms   ({t1 / t2:.2f}x)\n")

    print(session.gantt())

    out = tempfile.mktemp(prefix="peppher_trace_", suffix=".json")
    session.save_trace(out)
    session.shutdown()
    print(f"\nChrome trace written to {out}")


if __name__ == "__main__":
    main()
