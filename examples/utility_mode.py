"""Utility mode: component skeleton generation (the paper's Figure 4).

Generates the directory structure of XML descriptors and implementation
skeletons for the spmv component from its plain C declaration — the
``compose --generateCompFiles="spmv.h"`` workflow — and prints the
resulting tree and one generated descriptor.

Run:  python examples/utility_mode.py
"""

import tempfile
from pathlib import Path

from repro.composer.cli import main as compose_cli

SPMV_HEADER = """\
/* spmv.h — sparse matrix-vector product, CSR format */
void spmv(const float* values, int nnz, int nrows, int ncols, int first,
          const size_t* colidxs, const size_t* rowPtr, const float* x,
          float* y);
"""


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="peppher_utility_"))
    header = workdir / "spmv.h"
    header.write_text(SPMV_HEADER)

    # the actual CLI entry point, exactly as the paper invokes it
    rc = compose_cli(
        [f"--generateCompFiles={header}", "--out", str(workdir / "components")]
    )
    assert rc == 0

    print("\ndirectory structure (paper Figure 4):")
    for path in sorted((workdir / "components").rglob("*")):
        depth = len(path.relative_to(workdir / "components").parts) - 1
        print("  " + "    " * depth + path.name)

    iface = workdir / "components" / "spmv" / "interface.xml"
    print("\ngenerated interface descriptor (access patterns inferred from")
    print("const semantics; the programmer fills in the rest):\n")
    print(iface.read_text())


if __name__ == "__main__":
    main()
