"""Reproduce the paper's full evaluation in one command.

Runs every experiment harness (Table I, Figures 3/5/6/7, the §V-E
overhead micro-benchmark and the five ablations) and writes a combined
report to ``reproduction_report.txt`` (or the path given as argv[1]).

Equivalent to ``pytest benchmarks/ --benchmark-only`` but as a plain
script, with a ``--quick`` mode for small-scale smoke runs.

Run:  python examples/reproduce_all.py [output.txt] [--quick]
"""

import sys
import time
from pathlib import Path

from repro.experiments import ablations, fig3, fig5, fig6, fig7, overhead, table1
from repro.report import render_all


def main() -> None:
    args = [a for a in sys.argv[1:]]
    quick = "--quick" in args
    args = [a for a in args if a != "--quick"]
    out_path = args[0] if args else "reproduction_report.txt"
    scale = 0.2 if quick else 1.0
    fig6_scale = 0.25 if quick else 1.0
    fig7_steps = 60 if quick else 588

    sections: list[str] = []
    t0 = time.time()

    def section(title, text):
        print(f"== {title} ({time.time() - t0:.1f}s elapsed)")
        sections.append(f"{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")

    section("Table I — programmer LOC", table1.format_table(table1.run()))
    section("Figure 3 — smart-container copy elision", fig3.format_result(fig3.run()))
    fig5_rows = fig5.run(scale=scale, verify=quick)
    section("Figure 5 — hybrid SpMV vs direct CUDA", fig5.format_result(fig5_rows))
    fig6_results = []
    for platform in ("c2050", "c1060"):
        result = fig6.run(platform, size_scale=fig6_scale)
        fig6_results.append(result)
        section(
            f"Figure 6 — dynamic scheduling ({platform})",
            fig6.format_result(result),
        )
    fig7_points = fig7.run(steps=fig7_steps, verify=quick)
    section("Figure 7 — ODE solver overhead", fig7.format_result(fig7_points))
    section(
        "Section V-E — per-task runtime overhead",
        overhead.format_result(overhead.run()),
    )
    section(
        "ABL1 — scheduling policies",
        ablations.format_scheduler_study(
            ablations.scheduler_study(scale=min(scale, 0.5))
        ),
    )
    section(
        "ABL2 — smart containers vs raw parameters",
        ablations.format_container_study(ablations.container_study()),
    )
    section(
        "ABL3 — user-guided static narrowing",
        ablations.format_narrowing_study(ablations.narrowing_study()),
    )
    section(
        "ABL4 — optimization goal (time vs energy)",
        ablations.format_energy_study(ablations.energy_study()),
    )
    section(
        "ABL5 — multi-GPU scaling",
        ablations.format_multigpu_study(ablations.multigpu_study(scale=min(scale, 0.5))),
    )
    section(
        "ABL6 — composition stages (static / multi-stage / dynamic)",
        ablations.format_multistage_study(
            ablations.multistage_study(calls=20 if quick else 80)
        ),
    )

    report = "\n".join(sections)
    with open(out_path, "w") as fh:
        fh.write(report)
    figures = render_all(
        Path(out_path).parent / "figures",
        fig5_rows=fig5_rows,
        fig6_results=fig6_results,
        fig7_points=fig7_points,
    )
    print(f"\nfull report written to {out_path} ({time.time() - t0:.1f}s total)")
    print("figures: " + ", ".join(str(p) for p in figures))


if __name__ == "__main__":
    main()
