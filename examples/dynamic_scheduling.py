"""Performance-aware dynamic composition across two platforms (Figure 6).

For a few applications, compares static OpenMP-only and CUDA-only builds
against the tool-generated performance-aware code (TGPA, dmda scheduler)
on the C2050 and C1060 machines.  Watch the OpenMP/CUDA winner flip
between platforms for irregular workloads while TGPA tracks (or beats)
the best without any code change.

Run:  python examples/dynamic_scheduling.py [app ...]
"""

import sys

from repro.experiments import fig6


def main() -> None:
    apps = tuple(sys.argv[1:]) or ("bfs", "sgemm", "nw", "particlefilter")
    unknown = set(apps) - set(fig6.SCENARIOS)
    if unknown:
        raise SystemExit(
            f"unknown apps {sorted(unknown)}; pick from {sorted(fig6.SCENARIOS)}"
        )
    for platform in ("c2050", "c1060"):
        result = fig6.run(platform, apps=apps, size_scale=0.25)
        print(fig6.format_result(result))
        print()


if __name__ == "__main__":
    main()
